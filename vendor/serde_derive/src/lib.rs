//! Offline drop-in subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses — named-field structs, tuple structs, and
//! unit-variant enums, all non-generic — by walking the raw
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline) and emitting impls of the value-tree traits in the vendored
//! `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `enum E { A, B }` — unit variant names.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip a `#` punct plus its following bracketed group (an attribute).
/// Returns true if `tokens[i]` started an attribute.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            *i += 1;
            // Inner attributes have a `!` between `#` and `[...]`.
            if let Some(TokenTree::Punct(q)) = tokens.get(*i) {
                if q.as_char() == '!' {
                    *i += 1;
                }
            }
            if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                *i += 1;
            }
            return true;
        }
    }
    false
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` etc.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Count top-level comma-separated entries in a field/variant list,
/// treating `<...>` angle runs as nested (their commas don't split).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stub does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field in split_top_level(&inner) {
                    let mut j = 0;
                    while skip_attr(&field, &mut j) {}
                    skip_visibility(&field, &mut j);
                    match field.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        None => continue, // trailing comma
                        other => panic!("serde derive: expected field name, got {other:?}"),
                    }
                }
                Item {
                    name,
                    shape: Shape::NamedStruct(fields),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let n = split_top_level(&inner)
                    .into_iter()
                    .filter(|f| !f.is_empty())
                    .count();
                Item {
                    name,
                    shape: Shape::TupleStruct(n),
                }
            }
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for variant in split_top_level(&inner) {
                    let mut j = 0;
                    while skip_attr(&variant, &mut j) {}
                    match variant.get(j) {
                        Some(TokenTree::Ident(id)) => {
                            let vname = id.to_string();
                            if variant.len() > j + 1 {
                                panic!(
                                    "serde derive stub supports only unit enum variants \
                                     ({name}::{vname} has data)"
                                );
                            }
                            variants.push(vname);
                        }
                        None => continue,
                        other => panic!("serde derive: expected variant name, got {other:?}"),
                    }
                }
                Item {
                    name,
                    shape: Shape::UnitEnum(variants),
                }
            }
            other => panic!("serde derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, got `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Map(vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(vec![{entries}])")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!("match *self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(v, \"{f}\")?)?,")
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         format!(\"expected array of {n} elements, got {{other:?}}\"))),\n\
                 }}"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         format!(\"expected string variant for {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("derived Deserialize impl parses")
}
