//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's non-poisoning
//! API: `lock()` / `read()` / `write()` return guards directly instead
//! of `Result`s. A poisoned std lock (a panic while held) recovers the
//! inner guard, matching parking_lot's "no poisoning" semantics.

use std::sync;

/// Mutual exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read`/`write` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
