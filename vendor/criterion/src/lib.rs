//! Offline drop-in subset of `criterion`.
//!
//! Implements the benchmark-definition API the workspace's bench
//! targets use (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros) with
//! a plain wall-clock harness: per sample it auto-calibrates an
//! iteration count, then reports min/median/mean nanoseconds per
//! iteration. Run under `cargo bench` for real measurements; under
//! `cargo test` (no `--bench` flag) every routine executes exactly once
//! as a smoke check, like real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; the stub times each routine call individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// Whether we're under `cargo bench` (which passes `--bench`) or a
/// plain test build.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        mode: if bench_mode() {
            Mode::Measure {
                sample_size,
                samples_ns: Vec::new(),
            }
        } else {
            Mode::Smoke
        },
    };
    f(&mut b);
    if let Mode::Measure { samples_ns, .. } = &mut b.mode {
        if samples_ns.is_empty() {
            return;
        }
        samples_ns.sort_unstable();
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
        println!(
            "{id:<45} time: [min {} median {} mean {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

enum Mode {
    /// Execute the routine once, untimed (cargo test).
    Smoke,
    /// Calibrate and record per-iteration nanoseconds.
    Measure {
        sample_size: usize,
        samples_ns: Vec<u128>,
    },
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Time `routine` (the whole closure body is the measured unit).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match &mut self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure {
                sample_size,
                samples_ns,
            } => {
                // Calibrate: find an iteration count taking ≥ ~5 ms.
                let mut iters: u64 = 1;
                let per_iter = loop {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = t.elapsed();
                    if elapsed >= Duration::from_millis(5) || iters >= 1 << 22 {
                        break elapsed.as_nanos() / iters as u128;
                    }
                    iters *= 2;
                };
                // Aim for ~10 ms per sample.
                let per_sample = ((10_000_000 / per_iter.max(1)) as u64).clamp(1, 1 << 22);
                for _ in 0..*sample_size {
                    let t = Instant::now();
                    for _ in 0..per_sample {
                        black_box(routine());
                    }
                    samples_ns.push(t.elapsed().as_nanos() / per_sample as u128);
                }
            }
        }
    }

    /// Time `routine` over inputs produced by an untimed `setup`.
    pub fn iter_batched<S, R, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> R,
    {
        match &mut self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
            }
            Mode::Measure {
                sample_size,
                samples_ns,
            } => {
                let sample_size = *sample_size;
                for _ in 0..sample_size {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    samples_ns.push(t.elapsed().as_nanos());
                }
            }
        }
    }
}

/// Collect benchmark functions into a runner (stub keeps the names).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        compile_error!("criterion stub supports only criterion_group!(name, fn, ...)");
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
