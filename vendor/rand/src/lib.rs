//! Offline drop-in subset of `rand` 0.8.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, the same family the real
//! `small_rng` feature uses), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods this workspace calls: `gen_range` over integer and
//! float ranges (half-open and inclusive) and `gen_bool`. Streams
//! differ from the real crate, so generated corpora are reproducible
//! per-build but not bit-identical to crates.io rand.

use std::ops::{Range, RangeInclusive};

/// A random number generator yielding `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a generator from a single `u64` (SplitMix64 expansion,
    /// as the real rand does for seeding).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value type can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let x = (rng.next_u64() as u128) % span;
                (self.start as u128 + x) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let x = (rng.next_u64() as u128) % span;
                (start as u128 + x) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = next_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let unit = next_f64(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn distribution_is_not_obviously_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
