//! Offline drop-in subset of `serde_json`.
//!
//! Serializes the vendored `serde` crate's [`Value`] tree to standard
//! JSON text (compact and pretty) and parses JSON text back, covering
//! exactly the API the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`], and [`Error`].

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error raised when JSON parsing or value decoding fails.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset the parser stopped at (0 for decode errors).
    offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.0, 0)
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty JSON (two-space indent, like the real
/// serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    T::from_value(&v).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point on integral floats
                // (1.0 → "1.0"), matching serde_json's round-trip form.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input", self.pos)),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{kw}`"), self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // Surrogate pair: expect a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(Error::new("expected low surrogate", self.pos));
                                    }
                                    self.pos += 1;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| Error::new("invalid unicode escape", self.pos))?,
                            );
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => return Err(Error::new("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters up to the
                    // next delimiter in one slice. `"` and `\` are ASCII,
                    // so they can never occur inside a multi-byte UTF-8
                    // sequence — stopping at either always lands on a char
                    // boundary, and validating just the segment keeps the
                    // string parse linear in input size.
                    let start = self.pos;
                    let mut end = self.pos;
                    while end < self.bytes.len() && !matches!(self.bytes[end], b'"' | b'\\') {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8", start))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::new("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number", start));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(7)),
            ("b".to_string(), Value::Float(0.5)),
            (
                "c".to_string(),
                Value::Seq(vec![Value::Str("x\n\"y\"".to_string()), Value::Null]),
            ),
            ("d".to_string(), Value::Bool(true)),
            ("e".to_string(), Value::Int(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn string_segments_round_trip() {
        // Exercises the batched plain-segment scan: long runs between
        // escapes, multi-byte UTF-8 adjacent to delimiters, and strings
        // that start/end on escapes.
        let cases = [
            "plain ascii with no escapes at all".to_string(),
            "héllo → wörld …直到结束".to_string(),
            "\\starts and ends on an escape\"".to_string(),
            "a\"b\\c\nd\te日".to_string(),
            "\u{0008}\u{000c}edge".to_string(),
            "x".repeat(10_000),
            format!("{}\"{}", "л".repeat(500), "ё".repeat(500)),
        ];
        for case in cases {
            let text = to_string(&Value::Str(case.clone())).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, Value::Str(case));
        }
    }

    #[test]
    fn long_document_parse_is_linear() {
        // Regression guard for the O(n²) parse_string: a document whose
        // size is dominated by string payload must parse in linear-ish
        // time. 4 MB of strings parsed per-char against the remaining
        // input took tens of seconds before the fix; now it's
        // milliseconds. Bound generously for slow CI runners.
        let items: Vec<Value> = (0..4_000)
            .map(|i| Value::Str(format!("{i:04}-{}", "payload".repeat(150))))
            .collect();
        let text = to_string(&Value::Seq(items)).unwrap();
        assert!(text.len() > 4_000_000);
        let start = std::time::Instant::now();
        let back: Value = from_str(&text).unwrap();
        assert!(matches!(back, Value::Seq(ref v) if v.len() == 4_000));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string-heavy parse took {:?} — superlinear regression?",
            start.elapsed()
        );
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u32, Vec<(u32, f64)>)> = vec![(1, vec![(2, 0.5), (3, 1.0)]), (4, vec![])];
        let text = to_string(&pairs).unwrap();
        let back: Vec<(u32, Vec<(u32, f64)>)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }
}
