//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy generating `Vec`s of an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, size)`: vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.rng().gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
