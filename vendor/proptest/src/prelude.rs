//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::collection;
pub use crate::{prop_assert, prop_assert_eq, proptest};
pub use crate::{ProptestConfig, Strategy, TestRng};

/// `prop::collection::...` paths, as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
}
