//! Offline drop-in subset of `proptest`.
//!
//! Supports the strategy surface this workspace uses — integer and
//! float ranges (half-open and inclusive), simple `[class]{m,n}` /
//! `\PC{m,n}` string patterns, strategy tuples, and
//! [`collection::vec`] — plus the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header and [`prop_assert!`] /
//! [`prop_assert_eq!`]. Cases are generated deterministically from the
//! test name; there is no shrinking (failures report the raw inputs).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod prelude;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the heavier engine-building
        // properties fast while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one (test, case) pair: stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);

/// String-pattern strategy: a `&str` used as a strategy generates
/// strings matching a small regex subset — `[class]{m,n}` (classes with
/// literal chars and `a-z` ranges) and `\PC{m,n}` (printable chars).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (choices, min, max) = parse_pattern(self);
        let len = if min == max {
            min
        } else {
            rng.rng().gen_range(min..=max)
        };
        (0..len)
            .map(|_| choices[rng.rng().gen_range(0..choices.len())])
            .collect()
    }
}

/// Printable sample set for `\PC`: ASCII printable plus a few multibyte
/// characters so unicode handling gets exercised.
fn printable_chars() -> Vec<char> {
    let mut v: Vec<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    v.extend(['é', 'ß', 'λ', 'Ж', '中', '🦀']);
    v
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pat.chars().collect();
    let mut i;
    let choices: Vec<char> = if pat.starts_with("\\PC") {
        i = 3;
        printable_chars()
    } else if chars.first() == Some(&'[') {
        i = 1;
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            // `a-z` range (a `-` that is not first/last in the class).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (c as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad range in pattern {pat:?}");
                for cp in lo..=hi {
                    if let Some(ch) = char::from_u32(cp) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(
            chars.get(i) == Some(&']'),
            "unterminated class in pattern {pat:?}"
        );
        i += 1;
        set
    } else {
        panic!("unsupported string pattern {pat:?} (stub supports [class]{{m,n}} and \\PC{{m,n}})");
    };
    // Optional {m,n} / {m} counter; default exactly one.
    let (min, max) = if chars.get(i) == Some(&'{') {
        let rest: String = chars[i + 1..].iter().collect();
        let close = rest.find('}').expect("unterminated counter");
        let counter = &rest[..close];
        assert!(
            i + 2 + close == chars.len(),
            "trailing junk in pattern {pat:?}"
        );
        match counter.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad counter"),
                n.trim().parse().expect("bad counter"),
            ),
            None => {
                let m = counter.trim().parse().expect("bad counter");
                (m, m)
            }
        }
    } else {
        assert!(i == chars.len(), "trailing junk in pattern {pat:?}");
        (1, 1)
    };
    assert!(min <= max, "bad counter in pattern {pat:?}");
    (choices, min, max)
}

/// The core macro: run each embedded test function over many generated
/// cases. Mirrors real proptest's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}: {}\n  inputs: {}",
                        stringify!($name), __case, e, __inputs
                    );
                }
            }
        }
    )*};
}

/// Assert inside a [`proptest!`] body; failures report the generated
/// inputs instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::Strategy;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("range", 0);
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = crate::TestRng::for_case("strings", 1);
        for _ in 0..200 {
            let s = "[a-z ]{1,30}".generate(&mut rng);
            assert!((1..=30).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = "[\x20-\x7e\n]{0,40}".generate(&mut rng);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let u = "\\PC{0,20}".generate(&mut rng);
            assert!(u.chars().count() <= 20);
        }
    }

    #[test]
    fn vec_strategy_obeys_size_and_elements() {
        let mut rng = crate::TestRng::for_case("vecs", 2);
        for _ in 0..200 {
            let v = crate::collection::vec((0u32..5, 0.0f64..1.0), 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            for &(a, b) in &v {
                assert!(a < 5 && (0.0..1.0).contains(&b));
            }
        }
    }

    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(
            x in 0u32..10,
            v in crate::collection::vec(0u32..10, 0..5),
        ) {
            crate::prop_assert!(x < 10);
            crate::prop_assert_eq!(v.len(), v.iter().copied().count());
        }
    }
}
