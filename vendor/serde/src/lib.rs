//! Offline drop-in subset of `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment,
//! so this crate provides the small slice of its API the workspace
//! actually uses: `Serialize` / `Deserialize` traits (modelled as
//! conversions to and from a JSON-like [`Value`] tree rather than the
//! full visitor architecture) and the matching derive macros from the
//! sibling `serde_derive` stub. `serde_json` (also vendored) speaks the
//! same [`Value`] tree, so the wire format is ordinary JSON and matches
//! what the real serde + serde_json pair would produce for the types
//! in this workspace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data tree: the intermediate representation every
/// [`Serialize`] impl produces and every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is a sequence.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == *other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Error raised when a [`Deserialize`] impl rejects a [`Value`].
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a required struct field from a map value (helper for derived
/// impls).
pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(_) => v
            .get(name)
            .ok_or_else(|| Error(format!("missing field `{name}`"))),
        other => Err(Error(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    ref other => return Err(Error(format!(
                        "expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match *v {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error(format!("integer {u} out of range")))?,
                    Value::Int(i) => i,
                    ref other => return Err(Error(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error(format!("expected number, got {v:?}")))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected array of length {}, got {other:?}", $len))),
                }
            }
        }
    };
}
impl_tuple!(2 => A:0, B:1);
impl_tuple!(3 => A:0, B:1, C:2);
impl_tuple!(4 => A:0, B:1, C:2, D:3);

impl<K: fmt::Display + Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: fmt::Display + Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
