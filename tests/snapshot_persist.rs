//! Snapshot persistence round trip: a warm-loaded snapshot must
//! reproduce the in-memory build's `SearchResult` lists exactly, and a
//! damaged snapshot directory must fail with a clean [`PersistError`],
//! never a panic.

use litsearch::context_search::persist::{
    load_snapshot, save_snapshot, PersistError, SNAPSHOT_VERSION,
};
use litsearch::context_search::{ContextSetKind, EngineConfig, ScoreFunction};
use litsearch::demo::{snapshot, Scale};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("litsearch_snap_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_loaded_snapshot_reproduces_search_results_exactly() {
    let snap = snapshot(Scale::Tiny, 9);
    let dir = scratch_dir("roundtrip");
    save_snapshot(&snap, &dir).expect("save");
    let loaded = load_snapshot(&dir, EngineConfig::default()).expect("load");

    assert_eq!(loaded.pairs(), snap.pairs());
    assert!(
        loaded.patterns().is_none(),
        "mined patterns are a build intermediate, not persisted"
    );

    let queries: Vec<String> = snap
        .ontology()
        .term_ids()
        .map(|t| snap.ontology().term(t).name.clone())
        .take(12)
        .collect();
    let (cold, warm) = (snap.searcher(), loaded.searcher());
    for (kind, function) in snap.pairs() {
        for q in &queries {
            let a = cold.query(q, kind, function, 0).expect("prepared");
            let b = warm.query(q, kind, function, 0).expect("persisted");
            assert_eq!(
                a.len(),
                b.len(),
                "{q:?} {}/{}",
                kind.name(),
                function.name()
            );
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.paper, y.paper);
                assert_eq!(x.relevancy, y.relevancy);
                assert_eq!(x.matching, y.matching);
                assert_eq!(x.prestige, y.prestige);
                assert_eq!(x.context, y.context);
            }
        }
        // The baseline path agrees too (vocabulary round-tripped).
        assert_eq!(
            cold.keyword_search(&queries[0], 0.05),
            warm.keyword_search(&queries[0], 0.05)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_snapshots_fail_cleanly_not_loudly() {
    let snap = snapshot(Scale::Tiny, 9);
    let dir = scratch_dir("damage");
    save_snapshot(&snap, &dir).expect("save");
    let header_path = dir.join("snapshot.json");
    let pristine = std::fs::read_to_string(&header_path).unwrap();

    // A future format version is refused, not misread.
    let tampered = pristine.replace(
        &format!("\"version\": {SNAPSHOT_VERSION}"),
        "\"version\": 99",
    );
    assert_ne!(tampered, pristine, "header must carry the current version");
    std::fs::write(&header_path, tampered).unwrap();
    let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
    assert!(
        matches!(err, PersistError::VersionMismatch { found: 99, .. }),
        "{err}"
    );

    // A foreign file is recognized as not-a-snapshot.
    std::fs::write(
        &header_path,
        pristine.replace("litsearch-snapshot", "something-else"),
    )
    .unwrap();
    let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
    assert!(matches!(err, PersistError::BadMagic(_)), "{err}");

    // Garbled payload JSON surfaces as a parse error, not a panic.
    std::fs::write(&header_path, &pristine).unwrap();
    std::fs::write(dir.join("corpus.json"), "{ definitely not a corpus").unwrap();
    let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
    assert!(matches!(err, PersistError::Json(_)), "{err}");

    // A missing payload file surfaces as an I/O error naming the path.
    let sets_path = dir.join("sets_text.json");
    std::fs::remove_file(&sets_path).unwrap();
    save_header_and_corpus(&dir, &pristine, &snap);
    let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
    match err {
        PersistError::Io { path, .. } => assert_eq!(path, sets_path),
        other => panic!("expected Io, got {other}"),
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Restore the header and corpus after the tampering steps above.
fn save_header_and_corpus(
    dir: &std::path::Path,
    pristine_header: &str,
    snap: &litsearch::context_search::EngineSnapshot,
) {
    std::fs::write(dir.join("snapshot.json"), pristine_header).unwrap();
    let ontology = snap.ontology();
    let term_names: Vec<String> = ontology
        .term_ids()
        .map(|t| ontology.term(t).name.clone())
        .collect();
    std::fs::write(dir.join("corpus.json"), snap.corpus().to_json(&term_names)).unwrap();
}

#[test]
fn serving_a_missing_pair_from_a_warm_snapshot_is_a_clean_error() {
    // Persist only what was prepared: a subset snapshot round-trips its
    // subset, and asking for more is an error, not a recompute.
    use litsearch::context_search::{EngineSnapshot, PrepareOptions};
    let (ocfg, ccfg) = litsearch::demo::configs(Scale::Tiny, 9);
    let onto = litsearch::ontology::generate_ontology(&ocfg);
    let corp = litsearch::corpus::generate_corpus(&onto, &ccfg);
    let snap = EngineSnapshot::prepare_with(
        onto,
        corp,
        EngineConfig::default(),
        PrepareOptions {
            pairs: vec![(ContextSetKind::TextBased, ScoreFunction::Citation)],
        },
    );
    let dir = scratch_dir("subset");
    save_snapshot(&snap, &dir).expect("save");
    let loaded = load_snapshot(&dir, EngineConfig::default()).expect("load");
    assert_eq!(
        loaded.pairs(),
        vec![(ContextSetKind::TextBased, ScoreFunction::Citation)]
    );
    let err = loaded
        .searcher()
        .query(
            "binding",
            ContextSetKind::PatternBased,
            ScoreFunction::Pattern,
            5,
        )
        .unwrap_err();
    assert!(err.to_string().contains("no prestige table"));
    std::fs::remove_dir_all(&dir).unwrap();
}
