//! End-to-end smoke test of the `litsearch` CLI binary: the full
//! offline→online pipeline through the actual executable.

use std::process::Command;

fn litsearch(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_litsearch"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn full_pipeline_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("litsearch_cli_test_{}", std::process::id()));
    let data = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // generate
    let out = litsearch(&[
        "generate", "--out", data, "--terms", "80", "--papers", "150", "--seed", "7",
    ]);
    assert!(
        out.status.success(),
        "generate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("ontology.obo").exists());
    assert!(dir.join("corpus.json").exists());

    // assign
    let out = litsearch(&["assign", "--data", data, "--kind", "pattern"]);
    assert!(
        out.status.success(),
        "assign: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("sets_pattern.json").exists());

    // prestige
    let out = litsearch(&[
        "prestige",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "pattern",
    ]);
    assert!(
        out.status.success(),
        "prestige: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("prestige_pattern_pattern.json").exists());

    // search
    let out = litsearch(&[
        "search",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "pattern",
        "--query",
        "biological process",
        "--limit",
        "3",
    ]);
    assert!(
        out.status.success(),
        "search: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected contexts"), "{stdout}");
    assert!(stdout.contains("results"), "{stdout}");

    // stats
    let out = litsearch(&["stats", "--data", data]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("papers   : 150"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--metrics <path>` makes prestige and search write telemetry
/// snapshots with the per-stage spans and PageRank convergence stats.
#[test]
fn metrics_flag_writes_telemetry_snapshots() {
    let dir = std::env::temp_dir().join(format!("litsearch_metrics_test_{}", std::process::id()));
    let data = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let out = litsearch(&[
        "generate", "--out", data, "--terms", "80", "--papers", "150", "--seed", "7",
    ]);
    assert!(
        out.status.success(),
        "generate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = litsearch(&["assign", "--data", data, "--kind", "pattern"]);
    assert!(
        out.status.success(),
        "assign: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // prestige --metrics: engine build + prestige spans, PageRank stats.
    let prestige_metrics = dir.join("prestige_metrics.json");
    let out = litsearch(&[
        "prestige",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "citation",
        "--metrics",
        prestige_metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "prestige: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("metrics written"),
        "stderr should announce the metrics file"
    );
    let json = std::fs::read_to_string(&prestige_metrics).expect("metrics file written");
    let snap = obs::MetricsSnapshot::from_json(&json).expect("metrics file parses");
    for name in [
        "engine.build",
        "index.build",
        "engine.prestige",
        "prestige.citation",
    ] {
        let span = snap
            .span(name)
            .unwrap_or_else(|| panic!("span {name} missing"));
        assert!(span.count >= 1, "span {name} never closed");
        assert!(span.total_ns > 0, "span {name} has no recorded time");
    }
    // Citation prestige runs PageRank per context: iterations accumulate.
    assert!(
        snap.counter("citegraph.pagerank.iterations").unwrap_or(0) >= 1,
        "pagerank iterations should be >= 1: {json}"
    );
    assert!(snap.counter("citegraph.pagerank.runs").unwrap_or(0) >= 1);

    // search --metrics: the online-phase breakdown.
    let search_metrics = dir.join("search_metrics.json");
    let out = litsearch(&[
        "search",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "citation",
        "--query",
        "biological process",
        "--limit",
        "3",
        "--repeat",
        "3",
        "--metrics",
        search_metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "search: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("latency breakdown"),
        "expected breakdown, got: {stderr}"
    );
    let json = std::fs::read_to_string(&search_metrics).expect("metrics file written");
    let snap = obs::MetricsSnapshot::from_json(&json).expect("metrics file parses");
    for name in [
        "engine.search",
        "search.select_contexts",
        "search.candidates",
        "search.rank",
    ] {
        let span = snap
            .span(name)
            .unwrap_or_else(|| panic!("span {name} missing"));
        assert!(
            span.count >= 3,
            "span {name} should cover all --repeat runs"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace <path>` writes a valid Chrome-trace JSON file: balanced
/// begin/end events per thread, a stable trace ID across the file and
/// the CLI announcement, and the explain instants of the query path.
/// `litsearch trace --file <path>` then summarizes it.
#[test]
fn trace_flag_writes_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("litsearch_trace_test_{}", std::process::id()));
    let data = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    for args in [
        vec![
            "generate", "--out", data, "--terms", "60", "--papers", "120", "--seed", "7",
        ],
        vec!["assign", "--data", data, "--kind", "pattern"],
        vec![
            "prestige",
            "--data",
            data,
            "--kind",
            "pattern",
            "--function",
            "citation",
        ],
    ] {
        let out = litsearch(&args);
        assert!(
            out.status.success(),
            "{:?}: {}",
            args[0],
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let trace_path = dir.join("trace.json");
    let jsonl_path = dir.join("trace.jsonl");
    let out = litsearch(&[
        "search",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "citation",
        "--query",
        "biological process",
        "--limit",
        "3",
        "--trace",
        trace_path.to_str().unwrap(),
        "--trace-jsonl",
        jsonl_path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "search: {stderr}");

    // The announced trace ID is the one in the file.
    let announced = stderr
        .lines()
        .find_map(|l| l.strip_prefix("tracing enabled (trace id "))
        .and_then(|rest| rest.strip_suffix(')'))
        .expect("CLI announces the trace id");
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let data = obs::TraceData::from_chrome_json(&text).expect("valid Chrome trace JSON");
    assert_eq!(data.trace_id.to_string(), announced, "stable trace id");
    assert_eq!(data.dropped, 0);
    assert!(!data.events.is_empty());

    // Begin/end events balance per thread, and ends never precede
    // their begins (a stack suffices because events are in order).
    let tids: std::collections::HashSet<u64> = data.events.iter().map(|e| e.tid).collect();
    for tid in tids {
        let mut depth = 0i64;
        for e in data.events.iter().filter(|e| e.tid == tid) {
            match e.phase {
                obs::TracePhase::Begin => depth += 1,
                obs::TracePhase::End => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced end on tid {tid}");
                }
                obs::TracePhase::Instant => {}
            }
        }
        assert_eq!(depth, 0, "unclosed spans on tid {tid}");
    }

    // The query path and its explain instants are in the trace.
    for name in [
        "engine.search",
        "search.candidates",
        "search.contexts_selected",
        "search.keyword_candidates",
        "search.relevancy_candidates",
    ] {
        assert!(
            data.events.iter().any(|e| e.name == name),
            "missing {name} in trace"
        );
    }

    // Every JSONL line is an object carrying the same trace id.
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("jsonl written");
    for line in jsonl.lines() {
        assert!(
            line.contains(announced),
            "jsonl line lost the trace id: {line}"
        );
    }

    // The summary subcommand renders a self-time tree from the file.
    let out = litsearch(&["trace", "--file", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "trace summary: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine.search"), "{stdout}");
    assert!(stdout.contains(announced), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `prepare` + `search --snapshot`: the warm-start pipeline through the
/// executable. The warm search must print the same ranked results as
/// the piecemeal cold path, and the metrics snapshot must show the
/// prepare plan's stage spans (cold) vs. the loader span with no
/// per-context prestige work (warm).
#[test]
fn prepare_then_snapshot_search_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("litsearch_prepare_test_{}", std::process::id()));
    let data = dir.to_str().unwrap();
    let snap_dir = dir.join("snap");
    let snap = snap_dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let out = litsearch(&[
        "generate", "--out", data, "--terms", "80", "--papers", "150", "--seed", "7",
    ]);
    assert!(
        out.status.success(),
        "generate: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // prepare --metrics: the stage plan runs under prepare.total.
    let prepare_metrics = dir.join("prepare_metrics.json");
    let out = litsearch(&[
        "prepare",
        "--data",
        data,
        "--out",
        snap,
        "--build-threads",
        "2",
        "--metrics",
        prepare_metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "prepare: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for file in [
        "snapshot.json",
        "ontology.obo",
        "corpus.json",
        "sets_text.json",
        "sets_pattern.json",
        "prestige_pattern_pattern.json",
        "prestige_text_citation.json",
    ] {
        assert!(snap_dir.join(file).exists(), "snapshot missing {file}");
    }
    let json = std::fs::read_to_string(&prepare_metrics).unwrap();
    let m = obs::MetricsSnapshot::from_json(&json).unwrap();
    for name in [
        "prepare.total",
        "prepare.index",
        "prepare.text_sets",
        "prepare.pattern_sets",
        "prepare.prestige.pattern_pattern",
        "prepare.propagate.text_citation",
        "persist.save_snapshot",
    ] {
        assert!(m.span(name).is_some(), "span {name} missing: {json}");
    }

    // Cold reference via the piecemeal path.
    for args in [
        vec!["assign", "--data", data, "--kind", "pattern"],
        vec![
            "prestige",
            "--data",
            data,
            "--kind",
            "pattern",
            "--function",
            "pattern",
        ],
    ] {
        let out = litsearch(&args);
        assert!(out.status.success(), "{:?}", args[0]);
    }
    let cold = litsearch(&[
        "search",
        "--data",
        data,
        "--kind",
        "pattern",
        "--function",
        "pattern",
        "--query",
        "biological process",
        "--limit",
        "5",
    ]);
    assert!(
        cold.status.success(),
        "cold search: {}",
        String::from_utf8_lossy(&cold.stderr)
    );

    // Warm search from the snapshot: same ranked output, and the
    // metrics show the load path did no per-context prestige work.
    let warm_metrics = dir.join("warm_metrics.json");
    let warm = litsearch(&[
        "search",
        "--snapshot",
        snap,
        "--kind",
        "pattern",
        "--function",
        "pattern",
        "--query",
        "biological process",
        "--limit",
        "5",
        "--metrics",
        warm_metrics.to_str().unwrap(),
    ]);
    assert!(
        warm.status.success(),
        "warm search: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout),
        "warm-start results must match the cold path exactly"
    );
    let json = std::fs::read_to_string(&warm_metrics).unwrap();
    let m = obs::MetricsSnapshot::from_json(&json).unwrap();
    assert!(m.span("persist.load_snapshot").is_some(), "{json}");
    assert!(m.span("engine.search").is_some(), "{json}");
    for skipped in [
        "engine.prestige",
        "prepare.total",
        "prestige.context_pagerank",
        "engine.build",
    ] {
        assert!(
            m.span(skipped).is_none(),
            "warm start must not run {skipped}: {json}"
        );
    }

    // A snapshot lacking the requested pair fails with guidance.
    let out = litsearch(&[
        "search",
        "--snapshot",
        "/definitely/not/here",
        "--kind",
        "pattern",
        "--function",
        "pattern",
        "--query",
        "x",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// `top --once --json` under `--sim`: one deterministic simulated
/// batch over the in-process demo snapshot, with the machine-readable
/// dashboard report (the CI artifact form) on stdout.
#[test]
fn top_once_json_sim_emits_the_dashboard_report() {
    let out = litsearch(&[
        "top",
        "--sim",
        "--once",
        "--json",
        "--threads",
        "2",
        "--queries",
        "20",
    ]);
    assert!(
        out.status.success(),
        "top: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(stdout.trim()).expect("report is valid JSON");
    let windows = v
        .get("windows")
        .and_then(|w| w.as_array())
        .expect("report carries windowed stats");
    assert!(!windows.is_empty(), "no window stats: {stdout}");
    assert!(v.get("slo").is_some(), "report carries the SLO block");
    // Quality sampling is opt-in; without --quality there is no panel.
    assert!(v.get("quality").is_none(), "{stdout}");

    // --quality N adds the ranking-quality block: sampled queries,
    // pairwise overlaps, and per-function score distributions. In sim
    // mode the submitter blocks instead of dropping, so every sampled
    // query is evaluated.
    let out = litsearch(&[
        "top",
        "--sim",
        "--once",
        "--json",
        "--threads",
        "2",
        "--queries",
        "20",
        "--quality",
        "4",
    ]);
    assert!(
        out.status.success(),
        "top --quality: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(stdout.trim()).expect("report is valid JSON");
    let quality = v.get("quality").expect("quality panel present");
    let sampled = quality.get("sampled").and_then(|s| s.as_f64()).unwrap();
    assert!(sampled >= 1.0, "no shadow-scored queries: {stdout}");
    let dropped = quality.get("dropped").and_then(|d| d.as_f64()).unwrap();
    assert_eq!(dropped, 0.0, "sim mode must not drop samples: {stdout}");
    assert!(
        quality
            .get("overlaps")
            .and_then(|o| o.as_array())
            .is_some_and(|o| !o.is_empty()),
        "{stdout}"
    );
}

/// The `quality` subcommand: deterministic report bytes across runs,
/// and a baseline written by one run judges the next run clean.
#[test]
fn quality_subcommand_is_deterministic_and_round_trips_its_baseline() {
    let dir = std::env::temp_dir().join(format!("litsearch_quality_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("quality_baseline.json");

    let args = [
        "quality",
        "--threads",
        "2",
        "--queries",
        "24",
        "--sample-every",
        "2",
        "--report",
        "json",
    ];
    let first = litsearch(&args);
    assert!(
        first.status.success(),
        "quality: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = litsearch(&args);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "quality report must be byte-stable across runs"
    );
    let v: serde_json::Value = serde_json::from_str(String::from_utf8_lossy(&first.stdout).trim())
        .expect("report is valid JSON");
    assert!(v.get("sampled").and_then(|s| s.as_f64()).unwrap() >= 1.0);

    // Derive a baseline, then judge an identical run against it with
    // the gate armed: same workload, so the verdict must be clean.
    let out = litsearch(&[
        "quality",
        "--threads",
        "2",
        "--queries",
        "24",
        "--sample-every",
        "2",
        "--write-baseline",
        baseline.to_str().unwrap(),
        "--out",
        dir.join("report.md").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "write-baseline: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let judged = litsearch(&[
        "quality",
        "--threads",
        "2",
        "--queries",
        "24",
        "--sample-every",
        "2",
        "--baseline",
        baseline.to_str().unwrap(),
        "--fail-on-drift",
        "--out",
        dir.join("judged.md").to_str().unwrap(),
    ]);
    assert!(
        judged.status.success(),
        "identical workload must not drift: {}",
        String::from_utf8_lossy(&judged.stderr)
    );
    let report = std::fs::read_to_string(dir.join("judged.md")).unwrap();
    assert!(report.contains("# Ranking-quality report"), "{report}");
    assert!(
        report.contains("Drift"),
        "judged report has a verdict: {report}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors_for_bad_usage() {
    // Unknown command.
    let out = litsearch(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = litsearch(&["assign", "--kind", "pattern"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));

    // Bad enum value.
    let out = litsearch(&["assign", "--data", "/nonexistent", "--kind", "nope"]);
    assert!(!out.status.success());

    // Missing data directory.
    let out = litsearch(&["stats", "--data", "/definitely/not/here"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Help succeeds.
    let out = litsearch(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
