//! End-to-end smoke test of the `litsearch` CLI binary: the full
//! offline→online pipeline through the actual executable.

use std::process::Command;

fn litsearch(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_litsearch"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn full_pipeline_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("litsearch_cli_test_{}", std::process::id()));
    let data = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // generate
    let out = litsearch(&[
        "generate", "--out", data, "--terms", "80", "--papers", "150", "--seed", "7",
    ]);
    assert!(out.status.success(), "generate: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("ontology.obo").exists());
    assert!(dir.join("corpus.json").exists());

    // assign
    let out = litsearch(&["assign", "--data", data, "--kind", "pattern"]);
    assert!(out.status.success(), "assign: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("sets_pattern.json").exists());

    // prestige
    let out = litsearch(&[
        "prestige", "--data", data, "--kind", "pattern", "--function", "pattern",
    ]);
    assert!(out.status.success(), "prestige: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("prestige_pattern_pattern.json").exists());

    // search
    let out = litsearch(&[
        "search", "--data", data, "--kind", "pattern", "--function", "pattern",
        "--query", "biological process", "--limit", "3",
    ]);
    assert!(out.status.success(), "search: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected contexts"), "{stdout}");
    assert!(stdout.contains("results"), "{stdout}");

    // stats
    let out = litsearch(&["stats", "--data", data]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("papers   : 150"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors_for_bad_usage() {
    // Unknown command.
    let out = litsearch(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = litsearch(&["assign", "--kind", "pattern"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));

    // Bad enum value.
    let out = litsearch(&["assign", "--data", "/nonexistent", "--kind", "nope"]);
    assert!(!out.status.success());

    // Missing data directory.
    let out = litsearch(&["stats", "--data", "/definitely/not/here"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Help succeeds.
    let out = litsearch(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
