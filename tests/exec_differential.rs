//! Differential proof for the columnar execution core: the dense-ID
//! scratch + merge-intersection + bounded top-k path must reproduce the
//! old map-shaped algorithm **byte for byte** — same papers, same
//! float bits, same winning contexts — cold-built, warm-loaded from a
//! snapshot (both current and version-1 layouts), single-threaded and
//! across 8 concurrent threads.
//!
//! The reference implementation below is the pre-columnar algorithm
//! kept verbatim: keyword scores collected into a `HashMap`, a nested
//! context × prestige-pair loop with first-wins best tracking, a full
//! sort, then truncate.

use litsearch::context_search::persist::{
    load_snapshot, prestige_from_json, save_snapshot, PrestigeFile,
};
use litsearch::context_search::search::{relevancy, select_contexts};
use litsearch::context_search::{
    ContextPaperSets, ContextSearchEngine, EngineConfig, PrestigeScores, ScoreFunction,
    SearchResult,
};
use litsearch::corpus::PaperId;
use litsearch::demo::{configs, engine, snapshot, Scale};
use proptest::prelude::*;
use std::collections::HashMap;

/// The pre-columnar execution algorithm, reference copy.
fn reference_search(
    e: &ContextSearchEngine,
    sets: &ContextPaperSets,
    prestige: &PrestigeScores,
    query: &str,
    limit: usize,
) -> Vec<SearchResult> {
    let tokens = e.corpus().analyze_known(query);
    let contexts = select_contexts(&tokens, e.index(), sets, &e.config().selection);
    let matching: HashMap<PaperId, f64> = e.keyword_search(query, 0.0).into_iter().collect();
    let mut best: HashMap<PaperId, SearchResult> = HashMap::new();
    for (context, _ctx_score) in contexts {
        for &(paper, pscore) in prestige.scores(context).iter() {
            let Some(&m) = matching.get(&paper) else {
                continue;
            };
            let r = relevancy(pscore, m, &e.config().relevancy);
            let candidate = SearchResult {
                paper,
                relevancy: r,
                matching: m,
                prestige: pscore,
                context,
            };
            best.entry(paper)
                .and_modify(|cur| {
                    if r > cur.relevancy {
                        *cur = candidate;
                    }
                })
                .or_insert(candidate);
        }
    }
    let mut out: Vec<SearchResult> = best.into_values().collect();
    out.sort_by(|a, b| {
        b.relevancy
            .total_cmp(&a.relevancy)
            .then(a.paper.cmp(&b.paper))
    });
    if limit > 0 {
        out.truncate(limit);
    }
    out
}

fn assert_bitwise_eq(a: &[SearchResult], b: &[SearchResult], tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: result counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.paper, y.paper, "{tag}: paper at rank {i}");
        assert_eq!(
            x.relevancy.to_bits(),
            y.relevancy.to_bits(),
            "{tag}: relevancy bits at rank {i} ({} vs {})",
            x.relevancy,
            y.relevancy
        );
        assert_eq!(
            x.matching.to_bits(),
            y.matching.to_bits(),
            "{tag}: matching bits at rank {i}"
        );
        assert_eq!(
            x.prestige.to_bits(),
            y.prestige.to_bits(),
            "{tag}: prestige bits at rank {i}"
        );
        assert_eq!(x.context, y.context, "{tag}: winning context at rank {i}");
    }
}

/// A query mix that exercises every execution shape: exact term names
/// (dense candidate overlap), multi-term paraphrases, an unknown word,
/// and the empty query.
fn query_mix(e: &ContextSearchEngine) -> Vec<String> {
    let onto = e.ontology();
    let mut queries: Vec<String> = onto
        .term_ids()
        .take(8)
        .map(|t| onto.term(t).name.clone())
        .collect();
    let paired: Vec<String> = queries
        .chunks(2)
        .map(|pair| pair.join(" "))
        .take(4)
        .collect();
    queries.extend(paired);
    queries.push("membrane transport regulation".to_string());
    queries.push("zzzzz unknown words only".to_string());
    queries.push(String::new());
    queries
}

const LIMITS: [usize; 5] = [0, 1, 3, 10, 100];

#[test]
fn columnar_execution_matches_reference_bit_for_bit() {
    for seed in [9, 40] {
        let e = engine(Scale::Tiny, seed);
        let psets = e.pattern_context_sets();
        let tsets = e.text_context_sets();
        for (sets, function, tag) in [
            (&psets, ScoreFunction::Pattern, "pattern/pattern"),
            (&psets, ScoreFunction::Citation, "pattern/citation"),
            (&tsets, ScoreFunction::Text, "text/text"),
        ] {
            let prestige = e.prestige(sets, function);
            for q in query_mix(&e) {
                for limit in LIMITS {
                    let columnar = e.search(&q, sets, &prestige, limit);
                    let reference = reference_search(&e, sets, &prestige, &q, limit);
                    assert_bitwise_eq(
                        &columnar,
                        &reference,
                        &format!("seed {seed} {tag} limit {limit} query {q:?}"),
                    );
                }
            }
        }
    }
}

#[test]
fn columnar_execution_is_identical_across_8_threads() {
    // Each thread has its own scratch pool; results must not depend on
    // which thread (or how warm a scratch) executes the query.
    let e = engine(Scale::Tiny, 9);
    let sets = e.pattern_context_sets();
    let prestige = e.prestige(&sets, ScoreFunction::Pattern);
    let queries = query_mix(&e);
    let reference: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference_search(&e, &sets, &prestige, q, 10))
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let (e, sets, prestige, queries, reference) =
                (&e, &sets, &prestige, &queries, &reference);
            scope.spawn(move || {
                // Interleave repeats so scratch reuse (epoch bumping)
                // is exercised against every query shape.
                for round in 0..3 {
                    for (q, want) in queries.iter().zip(reference) {
                        let got = e.search(q, sets, prestige, 10);
                        assert_bitwise_eq(
                            &got,
                            want,
                            &format!("worker {worker} round {round} query {q:?}"),
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn warm_snapshots_v2_and_v1_match_the_cold_reference() {
    let seed = 9;
    let snap = snapshot(Scale::Tiny, seed);
    let dir = std::env::temp_dir().join(format!("litsearch_execdiff_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_snapshot(&snap, &dir).expect("save");

    // The same (ontology, corpus, config) built cold drives the
    // reference implementation.
    let (ocfg, ccfg) = configs(Scale::Tiny, seed);
    let onto = litsearch::ontology::generate_ontology(&ocfg);
    let corp = litsearch::corpus::generate_corpus(&onto, &ccfg);
    let e = ContextSearchEngine::build(onto, corp, EngineConfig::default());

    let v2 = load_snapshot(&dir, EngineConfig::default()).expect("v2 load");

    // Downgrade the directory to the version-1 layout: pair-shaped
    // prestige files and a version-1 header — what an old deployment's
    // snapshots look like on disk.
    for (kind, function) in snap.pairs() {
        let path = dir.join(format!("prestige_{}_{}.json", kind.name(), function.name()));
        let table = prestige_from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let v1_file = PrestigeFile {
            function: table.function.name().to_string(),
            scores: table
                .contexts()
                .map(|c| {
                    (
                        c.0,
                        table.scores(c).iter().map(|&(p, s)| (p.0, s)).collect(),
                    )
                })
                .collect(),
        };
        std::fs::write(&path, serde_json::to_string(&v1_file).unwrap()).unwrap();
    }
    let header_path = dir.join("snapshot.json");
    let header = std::fs::read_to_string(&header_path).unwrap();
    assert!(header.contains("\"version\": 2"), "{header}");
    std::fs::write(
        &header_path,
        header.replace("\"version\": 2", "\"version\": 1"),
    )
    .unwrap();
    let v1 = load_snapshot(&dir, EngineConfig::default()).expect("v1 load");

    let (sv2, sv1) = (v2.searcher(), v1.searcher());
    let text_sets = e.text_context_sets();
    for (kind, function) in snap.pairs() {
        let sets = match kind {
            litsearch::context_search::ContextSetKind::TextBased => e.text_context_sets(),
            litsearch::context_search::ContextSetKind::PatternBased => e.pattern_context_sets(),
        };
        // Mirror the prepare plan: the (pattern, text) table is scored
        // over a view of the pattern sets carrying the text set's
        // representatives (membership is identical, so propagation over
        // the view matches prepare's propagation over the plain set).
        let prestige = if (kind, function)
            == (
                litsearch::context_search::ContextSetKind::PatternBased,
                ScoreFunction::Text,
            ) {
            let mut view = sets.clone();
            view.representatives = text_sets.representatives.clone();
            e.prestige(&view, function)
        } else {
            e.prestige(&sets, function)
        };
        for q in query_mix(&e) {
            for limit in [0usize, 10] {
                let want = reference_search(&e, &sets, &prestige, &q, limit);
                let got_v2 = sv2.query(&q, kind, function, limit).expect("v2 query");
                let got_v1 = sv1.query(&q, kind, function, limit).expect("v1 query");
                let tag = format!(
                    "{}/{} limit {limit} query {q:?}",
                    kind.name(),
                    function.name()
                );
                assert_bitwise_eq(&got_v2, &want, &format!("v2 snapshot vs reference: {tag}"));
                assert_bitwise_eq(&got_v1, &got_v2, &format!("v1 snapshot vs v2: {tag}"));
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

fn shared_engine() -> &'static (ContextSearchEngine, ContextPaperSets, PrestigeScores) {
    static CELL: std::sync::OnceLock<(ContextSearchEngine, ContextPaperSets, PrestigeScores)> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let e = engine(Scale::Tiny, 17);
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        (e, sets, prestige)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bounded top-k heap is exactly full-sort-then-truncate, for
    /// arbitrary queries and limits. Real corpora make relevancy ties
    /// common (shared prestige values × identical match scores), so
    /// this continually exercises the PaperId tie-break through the
    /// heap's eviction decisions.
    #[test]
    fn bounded_top_k_equals_sort_then_truncate(
        query in "[a-z ]{2,30}",
        limit in 1usize..40,
    ) {
        let (e, sets, prestige) = shared_engine();
        let full = e.search(&query, sets, prestige, 0);
        let bounded = e.search(&query, sets, prestige, limit);
        prop_assert_eq!(bounded.len(), full.len().min(limit));
        for (i, (x, y)) in bounded.iter().zip(&full).enumerate() {
            prop_assert_eq!(x.paper, y.paper, "rank {} of query {:?}", i, &query);
            prop_assert_eq!(x.relevancy.to_bits(), y.relevancy.to_bits());
            prop_assert_eq!(x.context, y.context);
        }
    }
}
