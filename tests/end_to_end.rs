//! Integration tests spanning every crate: the full pipeline from
//! ontology generation to ranked context-based search output.

use litsearch::context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
use litsearch::corpus::queries::{generate_queries, QueryConfig};
use litsearch::demo::{configs, engine, Scale};

fn tiny_engine(seed: u64) -> ContextSearchEngine {
    engine(Scale::Tiny, seed)
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let (ocfg, ccfg) = configs(Scale::Tiny, 5);
    let build = || {
        let onto = litsearch::ontology::generate_ontology(&ocfg);
        let corp = litsearch::corpus::generate_corpus(&onto, &ccfg);
        ContextSearchEngine::build(onto, corp, EngineConfig::default())
    };
    let (e1, e2) = (build(), build());
    let s1 = e1.pattern_context_sets();
    let s2 = e2.pattern_context_sets();
    assert_eq!(s1.n_contexts(), s2.n_contexts());
    let p1 = e1.prestige(&s1, ScoreFunction::Pattern);
    let p2 = e2.prestige(&s2, ScoreFunction::Pattern);
    for c in s1.contexts() {
        assert_eq!(p1.scores(c), p2.scores(c), "context {c}");
    }
    let q = "membrane transport regulation";
    let h1 = e1.search(q, &s1, &p1, 10);
    let h2 = e2.search(q, &s2, &p2, 10);
    assert_eq!(h1.len(), h2.len());
    for (a, b) in h1.iter().zip(&h2) {
        assert_eq!(a.paper, b.paper);
        assert!((a.relevancy - b.relevancy).abs() < 1e-12);
    }
}

#[test]
fn all_three_score_functions_produce_valid_scores() {
    let e = tiny_engine(9);
    let psets = e.pattern_context_sets();
    let tsets = e.text_context_sets();
    for (sets, function) in [
        (&psets, ScoreFunction::Citation),
        (&psets, ScoreFunction::Pattern),
        (&tsets, ScoreFunction::Text),
    ] {
        let prestige = e.prestige(sets, function);
        let mut n_scores = 0usize;
        for c in prestige.contexts() {
            for &(p, s) in prestige.scores(c).iter() {
                assert!(
                    s.is_finite() && (0.0..=1.0 + 1e-9).contains(&s),
                    "{function:?} score {s} for {p:?} in {c}"
                );
                n_scores += 1;
            }
        }
        assert!(n_scores > 0, "{function:?} produced no scores");
    }
}

#[test]
fn hierarchy_propagation_gives_ancestors_at_least_descendant_scores() {
    let e = tiny_engine(13);
    let sets = e.pattern_context_sets();
    let prestige = e.prestige(&sets, ScoreFunction::Pattern);
    let onto = e.ontology();
    for c in sets.contexts() {
        for &child in onto.children(c) {
            for &(p, s_child) in prestige.scores(child).iter() {
                if sets.is_member(c, p) {
                    let s_parent = prestige
                        .get(c, p)
                        .expect("member papers have scores after propagation");
                    assert!(
                        s_parent >= s_child - 1e-9,
                        "paper {p:?}: parent {c} has {s_parent}, child {child} has {s_child}"
                    );
                }
            }
        }
    }
}

#[test]
fn citation_scores_tie_more_than_text_scores() {
    // The mechanism behind the paper's separability result: sparse
    // in-context citation graphs produce masses of identical scores.
    let e = tiny_engine(21);
    let tsets = e.text_context_sets();
    let citation = e.prestige(&tsets, ScoreFunction::Citation);
    let text = e.prestige(&tsets, ScoreFunction::Text);
    let tie_fraction = |p: &litsearch::context_search::PrestigeScores| {
        let (mut total, mut distinct) = (0usize, 0usize);
        for c in tsets.contexts_with_min_size(10) {
            let values = p.score_values(c);
            let set: std::collections::HashSet<u64> = values.iter().map(|v| v.to_bits()).collect();
            total += values.len();
            distinct += set.len();
        }
        1.0 - distinct as f64 / total.max(1) as f64
    };
    let cit_ties = tie_fraction(&citation);
    let text_ties = tie_fraction(&text);
    assert!(
        cit_ties > text_ties,
        "citation tie fraction {cit_ties:.3} should exceed text {text_ties:.3}"
    );
}

#[test]
fn queries_find_their_ground_truth_contexts() {
    let e = tiny_engine(33);
    let sets = e.pattern_context_sets();
    let queries = generate_queries(
        e.ontology(),
        e.corpus(),
        &QueryConfig {
            n_queries: 10,
            min_level: 2,
            ..Default::default()
        },
    );
    assert!(!queries.is_empty());
    let mut hits = 0;
    for q in &queries {
        let selected = e.select_contexts(&q.text, &sets);
        let found = selected.iter().any(|&(c, _)| {
            c == q.mapped_term
                || e.ontology().is_descendant(c, q.mapped_term)
                || e.ontology().is_descendant(q.mapped_term, c)
        });
        if found {
            hits += 1;
        }
    }
    assert!(
        hits * 2 >= queries.len(),
        "selection should find the mapped term family for most queries: {hits}/{}",
        queries.len()
    );
}

#[test]
fn ac_answer_sets_are_reasonable_ground_truth() {
    let e = tiny_engine(44);
    let queries = generate_queries(
        e.ontology(),
        e.corpus(),
        &QueryConfig {
            n_queries: 8,
            min_level: 2,
            ..Default::default()
        },
    );
    let mut non_empty = 0;
    for q in &queries {
        let ac = e.ac_answer_set(&q.text);
        if !ac.is_empty() {
            non_empty += 1;
            assert!(
                ac.len() < e.corpus().len(),
                "AC set must not be the whole corpus"
            );
        }
    }
    assert!(non_empty * 2 >= queries.len());
}

#[test]
fn search_relevancy_ranks_above_pure_matching_for_prestigious_papers() {
    let e = tiny_engine(55);
    let sets = e.pattern_context_sets();
    let prestige = e.prestige(&sets, ScoreFunction::Pattern);
    let term = e
        .ontology()
        .term_ids()
        .find(|&t| e.ontology().level(t) == 3)
        .unwrap();
    let q = e.ontology().term(term).name.clone();
    let hits = e.search(&q, &sets, &prestige, 0);
    if hits.len() >= 2 {
        // Relevancy must not equal pure matching order when prestige
        // varies — check that the components actually combine.
        for h in &hits {
            let expected = 0.5 * h.prestige + 0.5 * h.matching;
            assert!((h.relevancy - expected).abs() < 1e-9);
        }
    }
}
