//! End-to-end tests of the network serving subsystem (`crates/serve`).
//!
//! Three contracts from the PR:
//! 1. **Wire byte-identity**: the `/v1/search` response body over a real
//!    TCP connection is byte-for-byte what [`serve::encode_results`]
//!    produces for the equivalent in-process [`Searcher::query`] call,
//!    from 8 concurrent keep-alive connections at once.
//! 2. **Graceful drain**: every connection accepted before (or by the
//!    backlog sweep during) drain gets a complete response; afterwards
//!    the listener is closed.
//! 3. **CLI SIGTERM**: `litsearch serve` drains and exits cleanly on
//!    SIGTERM, leaving the port closed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use litsearch::context_search::{ContextSetKind, ScoreFunction};
use litsearch::demo::{snapshot, Scale};
use litsearch::serve::{self, SearchDefaults, ServerConfig};

/// The five standard prepared (paper set, function) pairs.
const PAIRS: [(ContextSetKind, ScoreFunction); 5] = [
    (ContextSetKind::TextBased, ScoreFunction::Text),
    (ContextSetKind::TextBased, ScoreFunction::Citation),
    (ContextSetKind::PatternBased, ScoreFunction::Pattern),
    (ContextSetKind::PatternBased, ScoreFunction::Citation),
    (ContextSetKind::PatternBased, ScoreFunction::Text),
];

/// Read one `Content-Length`-framed response from `stream`, carrying
/// leftover pipelined bytes across calls in `buf`.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let status: u16 = head
                .lines()
                .next()
                .and_then(|line| line.split(' ').nth(1))
                .and_then(|code| code.parse().ok())
                .expect("status line");
            let content_length: usize = head
                .lines()
                .find_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    if name.eq_ignore_ascii_case("content-length") {
                        value.trim().parse().ok()
                    } else {
                        None
                    }
                })
                .expect("content-length header");
            let total = head_end + 4 + content_length;
            while buf.len() < total {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "EOF mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = buf[head_end + 4..total].to_vec();
            buf.drain(..total);
            return (status, body);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn search_request(query: &str, kind: ContextSetKind, function: ScoreFunction) -> Vec<u8> {
    let body = format!(
        "{{\"query\":{query:?},\"kind\":\"{}\",\"function\":\"{}\",\"limit\":5}}",
        kind.name(),
        function.name(),
    );
    format!(
        "POST /v1/search HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn wire_results_are_byte_identical_across_eight_concurrent_connections() {
    let snap = snapshot(Scale::Tiny, 21);
    let searcher = snap.searcher();
    let queries: Vec<String> = snap
        .ontology()
        .term_ids()
        .map(|t| snap.ontology().term(t).name.clone())
        .take(16)
        .collect();

    let handle = serve::start(
        searcher.clone(),
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            deadline_ns: 0, // never shed: every request must execute
            defaults: SearchDefaults::default(),
            ..Default::default()
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        for i in 0..8 {
            let searcher = searcher.clone();
            let queries = &queries;
            scope.spawn(move || {
                let (kind, function) = PAIRS[i % PAIRS.len()];
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("read timeout");
                let mut buf = Vec::new();
                for query in queries {
                    stream
                        .write_all(&search_request(query, kind, function))
                        .expect("write request");
                    let (status, wire_body) = read_response(&mut stream, &mut buf);
                    assert_eq!(status, 200, "query {query:?} on conn {i}");
                    let expect = serve::encode_results(
                        &searcher
                            .query(query, kind, function, 5)
                            .expect("pair is prepared"),
                    );
                    assert_eq!(
                        wire_body,
                        expect.into_bytes(),
                        "wire bytes diverge from in-process results for {query:?} \
                         ({kind:?}/{function:?}) on conn {i}"
                    );
                }
            });
        }
    });

    let summary = handle.await_drained();
    assert_eq!(summary.requests, 8 * 16);
    assert_eq!(summary.responses_ok, 8 * 16);
    assert_eq!(summary.http_errors, 0);
    assert_eq!(summary.parse_errors, 0);
}

#[test]
fn graceful_drain_answers_all_admitted_requests_then_closes_listener() {
    let snap = snapshot(Scale::Tiny, 33);
    let searcher = snap.searcher();
    let query = snap
        .ontology()
        .term_ids()
        .map(|t| snap.ontology().term(t).name.clone())
        .next()
        .expect("non-empty ontology");

    // One worker so connections genuinely queue behind each other.
    let handle = serve::start(
        searcher,
        ServerConfig {
            workers: 1,
            queue_depth: 16,
            deadline_ns: 0,
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = handle.local_addr();

    // Establish 4 connections and push a full request down each before
    // drain begins: whatever the acceptor has not yet dequeued sits in
    // the kernel backlog and must be served by the drain sweep.
    let mut streams: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            let body = format!("{{\"query\":{query:?},\"limit\":3}}");
            let req = format!(
                "POST /v1/search HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            s.write_all(req.as_bytes()).expect("write request");
            s
        })
        .collect();

    handle.initiate_drain();

    // Every admitted request still gets a complete 200.
    for stream in &mut streams {
        let mut buf = Vec::new();
        let (status, body) = read_response(stream, &mut buf);
        assert_eq!(status, 200, "in-flight request dropped during drain");
        assert!(body.starts_with(b"{\"count\":"), "truncated drain response");
    }
    drop(streams);

    let summary = handle.await_drained();
    assert_eq!(summary.accepted, 4);
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.responses_ok, 4);
    assert_eq!(summary.parse_errors, 0);

    // Listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after drain"
    );
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

#[test]
fn cli_serve_drains_on_sigterm_and_closes_the_port() {
    let dir = std::env::temp_dir().join(format!("litsearch_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let port_file = dir.join("port.txt");
    let _ = std::fs::remove_file(&port_file);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_litsearch"))
        .args([
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--queue-depth",
            "16",
            "--deadline-ms",
            "5000",
            "--port-file",
        ])
        .arg(&port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn litsearch serve");

    // The demo snapshot builds before the listener comes up.
    let mut port: Option<u16> = None;
    for _ in 0..600 {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = text.trim().parse() {
                port = Some(p);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let port = port.expect("server never wrote its port file");
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));

    // One health check and one search must complete before the signal.
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("write healthz");
    let (status, body) = read_response(&mut stream, &mut buf);
    assert_eq!(status, 200);
    assert!(body.starts_with(b"{\"status\":\"ok\""));

    let body = "{\"query\":\"process\"}";
    let search = format!(
        "POST /v1/search HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(search.as_bytes()).expect("write search");
    let (status, body) = read_response(&mut stream, &mut buf);
    assert_eq!(status, 200);
    assert!(
        body.starts_with(b"{\"count\":"),
        "incomplete search response"
    );
    drop(stream);

    let rc = unsafe { kill(child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");

    let mut exit = None;
    for _ in 0..300 {
        if let Some(st) = child.try_wait().expect("try_wait") {
            exit = Some(st);
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let exit = exit.unwrap_or_else(|| {
        let _ = child.kill();
        panic!("serve process did not exit within 30s of SIGTERM");
    });
    assert!(exit.success(), "serve exited with {exit:?}");

    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "port still open after SIGTERM drain"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
