//! The serve-side guarantee of the snapshot architecture: one immutable
//! [`EngineSnapshot`] served by cheap [`Searcher`] clones gives
//! bit-identical results from any number of threads, because the hot
//! path holds zero locks and reads only frozen state.

use litsearch::context_search::{ContextSetKind, ScoreFunction, SearchResult};
use litsearch::demo::{snapshot, Scale};

/// All five standard (paper set, function) pairs.
const PAIRS: [(ContextSetKind, ScoreFunction); 5] = [
    (ContextSetKind::TextBased, ScoreFunction::Text),
    (ContextSetKind::TextBased, ScoreFunction::Citation),
    (ContextSetKind::PatternBased, ScoreFunction::Pattern),
    (ContextSetKind::PatternBased, ScoreFunction::Citation),
    (ContextSetKind::PatternBased, ScoreFunction::Text),
];

fn assert_same(query: &str, got: &[SearchResult], expect: &[SearchResult]) {
    assert_eq!(got.len(), expect.len(), "result count for {query:?}");
    for (a, b) in got.iter().zip(expect) {
        assert_eq!(a.paper, b.paper, "paper order for {query:?}");
        assert_eq!(a.relevancy, b.relevancy, "relevancy for {query:?}");
        assert_eq!(a.matching, b.matching, "matching for {query:?}");
        assert_eq!(a.prestige, b.prestige, "prestige for {query:?}");
        assert_eq!(a.context, b.context, "context for {query:?}");
    }
}

#[test]
fn eight_threads_reproduce_the_single_threaded_reference_exactly() {
    let snap = snapshot(Scale::Tiny, 21);
    let searcher = snap.searcher();

    // ≥32 distinct queries drawn from ontology term names.
    let queries: Vec<String> = snap
        .ontology()
        .term_ids()
        .map(|t| snap.ontology().term(t).name.clone())
        .take(32)
        .collect();
    assert!(queries.len() >= 32, "testbed too small for 32 queries");

    // Single-threaded reference, every pair × every query.
    let reference: Vec<Vec<Vec<SearchResult>>> = PAIRS
        .iter()
        .map(|&(kind, function)| {
            queries
                .iter()
                .map(|q| searcher.query(q, kind, function, 0).expect("pair prepared"))
                .collect()
        })
        .collect();

    // 8 threads hammer the same snapshot concurrently; thread i serves
    // pair i % 5, so every table is read from multiple threads at once.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = searcher.clone();
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    let (kind, function) = PAIRS[i % PAIRS.len()];
                    for (q, expect) in queries.iter().zip(&reference[i % PAIRS.len()]) {
                        let got = s.query(q, kind, function, 0).expect("pair prepared");
                        assert_same(q, &got, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("serving thread panicked");
        }
    });
}
