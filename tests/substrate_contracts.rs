//! Cross-crate contract tests: generated artifacts must survive the
//! exchange formats (OBO, MEDLINE, JSON) and still drive the engine.

use litsearch::context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
use litsearch::corpus::medline::{parse_medline, write_medline};
use litsearch::corpus::{generate_corpus, Corpus, CorpusConfig};
use litsearch::ontology::export::subontology;
use litsearch::ontology::obo::{parse_obo, write_obo};
use litsearch::ontology::{generate_ontology, GeneratorConfig};

fn small_ontology() -> litsearch::ontology::Ontology {
    generate_ontology(&GeneratorConfig {
        n_terms: 120,
        seed: 17,
        ..Default::default()
    })
}

fn small_corpus(onto: &litsearch::ontology::Ontology) -> Corpus {
    generate_corpus(
        onto,
        &CorpusConfig {
            n_papers: 180,
            seed: 18,
            body_len: (40, 70),
            abstract_len: (20, 40),
            ..Default::default()
        },
    )
}

#[test]
fn generated_ontology_round_trips_through_obo() {
    let onto = small_ontology();
    let text = write_obo(&onto);
    let again = parse_obo(&text).expect("generated OBO parses");
    assert_eq!(again.len(), onto.len());
    for t in onto.term_ids() {
        let orig = onto.term(t);
        let t2 = again
            .find_by_accession(&orig.accession)
            .expect("accession kept");
        assert_eq!(again.term(t2).name, orig.name);
        assert_eq!(again.level(t2), onto.level(t));
        assert_eq!(again.parents(t2).len(), onto.parents(t).len());
    }
}

#[test]
fn generated_corpus_round_trips_through_medline() {
    let onto = small_ontology();
    let corpus = small_corpus(&onto);
    let names: Vec<String> = (0..corpus.n_authors())
        .map(|i| {
            corpus
                .author_name(litsearch::corpus::AuthorId(i as u32))
                .to_string()
        })
        .collect();
    let text = write_medline(corpus.papers(), |a| names[a.index()].clone());
    let imported = parse_medline(&text).expect("generated MEDLINE parses");
    assert_eq!(imported.papers.len(), corpus.len());
    assert_eq!(imported.dangling_references, 0);
    for (a, b) in corpus.papers().iter().zip(&imported.papers) {
        assert_eq!(a.title, b.title);
        assert_eq!(a.references, b.references);
        assert_eq!(a.index_terms, b.index_terms);
        assert_eq!(a.year, b.year);
        assert_eq!(a.authors.len(), b.authors.len());
    }
}

#[test]
fn engine_runs_on_medline_imported_corpus() {
    // Full circle: generate → export MEDLINE → import → rebuild corpus
    // (losing the generator's ground truth, like real data) → engine.
    let onto = small_ontology();
    let corpus = small_corpus(&onto);
    let names: Vec<String> = (0..corpus.n_authors())
        .map(|i| {
            corpus
                .author_name(litsearch::corpus::AuthorId(i as u32))
                .to_string()
        })
        .collect();
    let text = write_medline(corpus.papers(), |a| names[a.index()].clone());
    let imported = parse_medline(&text).unwrap();
    let term_names: Vec<String> = onto.term_ids().map(|t| onto.term(t).name.clone()).collect();
    // Imported data has no annotation evidence: like GoPubMed's input.
    let rebuilt = Corpus::new(
        imported.papers,
        imported.author_names,
        Default::default(),
        &term_names,
    );
    let engine = ContextSearchEngine::build(onto, rebuilt, EngineConfig::default());
    // Text sets need evidence → none; pattern sets still work from the
    // term names alone.
    let tsets = engine.text_context_sets();
    assert_eq!(tsets.n_contexts(), 0, "no evidence ⇒ no text contexts");
    let psets = engine.pattern_context_sets();
    assert!(psets.n_contexts() > 0, "patterns need no evidence");
    let prestige = engine.prestige(&psets, ScoreFunction::Pattern);
    let term = engine
        .ontology()
        .term_ids()
        .find(|&t| engine.ontology().level(t) == 3)
        .unwrap();
    let q = engine.ontology().term(term).name.clone();
    let hits = engine.search(&q, &psets, &prestige, 5);
    assert!(!hits.is_empty(), "search works on imported data");
}

#[test]
fn corpus_json_round_trip_preserves_search_behavior() {
    let onto = small_ontology();
    let corpus = small_corpus(&onto);
    let term_names: Vec<String> = onto.term_ids().map(|t| onto.term(t).name.clone()).collect();
    let json = corpus.to_json(&term_names);
    let reloaded = Corpus::from_json(&json).unwrap();

    let e1 = ContextSearchEngine::build(onto.clone(), corpus, EngineConfig::default());
    let e2 = ContextSearchEngine::build(onto, reloaded, EngineConfig::default());
    let s1 = e1.pattern_context_sets();
    let s2 = e2.pattern_context_sets();
    assert_eq!(s1.n_contexts(), s2.n_contexts());
    for c in s1.contexts() {
        assert_eq!(s1.members(c), s2.members(c), "context {c}");
    }
}

#[test]
fn subontology_supports_branch_scale_experiments() {
    let onto = small_ontology();
    // Take one level-2 branch and rebuild everything inside it.
    let branch_root = onto
        .term_ids()
        .find(|&t| onto.level(t) == 2 && !onto.children(t).is_empty())
        .expect("a level-2 branch");
    let (sub, mapping) = subontology(&onto, branch_root);
    assert!(sub.len() > 1);
    assert_eq!(sub.roots().len(), 1);
    // Generate a corpus over the branch only.
    let corpus = generate_corpus(
        &sub,
        &CorpusConfig {
            n_papers: 80,
            seed: 4,
            body_len: (30, 50),
            abstract_len: (15, 25),
            ..Default::default()
        },
    );
    let engine = ContextSearchEngine::build(sub, corpus, EngineConfig::default());
    let sets = engine.pattern_context_sets();
    assert!(sets.n_contexts() > 0);
    // Every mapped id round-trips to a valid original term.
    for &old in &mapping {
        assert!(old.index() < onto.len());
    }
}
