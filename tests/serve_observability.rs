//! The live-observability acceptance bar: a simulated 8-thread load
//! run produces **bit-identical** windowed percentiles and SLO
//! burn-rate output across runs, and every threshold-crossing slow
//! query carries a captured explain trace.

use litsearch::bench::load::{LoadConfig, LoadHarness, LoadReport, LoopMode};
use litsearch::context_search::Searcher;
use litsearch::corpus::queries::{generate_queries, QueryConfig};
use litsearch::demo::{snapshot, Scale};
use std::sync::OnceLock;

fn testbed() -> &'static (Searcher, Vec<String>) {
    static TESTBED: OnceLock<(Searcher, Vec<String>)> = OnceLock::new();
    TESTBED.get_or_init(|| {
        let snap = snapshot(Scale::Tiny, 42);
        let queries = generate_queries(
            snap.ontology(),
            snap.corpus(),
            &QueryConfig {
                n_queries: 24,
                seed: 42,
                ..Default::default()
            },
        );
        let queries = queries.into_iter().map(|q| q.text).collect();
        (snap.searcher(), queries)
    })
}

fn sim_config(threads: usize) -> LoadConfig {
    LoadConfig {
        threads,
        queries_per_thread: 50,
        sim: true,
        slow_threshold_ns: 400_000,
        slow_capacity: 8,
        error_every: 40,
        ..Default::default()
    }
}

#[test]
fn eight_thread_simulated_runs_are_bit_identical() {
    let (searcher, queries) = testbed();
    let run = || {
        let harness = LoadHarness::new(sim_config(8));
        harness.run(searcher, queries).to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "windowed p50/p95/p99 and SLO burn must reproduce");
    // The report actually carries the serving series and burn rates.
    assert!(a.contains("\"serve.query\""));
    assert!(a.contains("\"burn_rate\""));
    assert!(a.contains("\"p99_ns\""));
}

#[test]
fn every_slow_query_carries_a_captured_explain_trace() {
    let (searcher, queries) = testbed();
    let harness = LoadHarness::new(LoadConfig {
        slow_threshold_ns: 1, // everything crosses the bar
        ..sim_config(4)
    });
    let report = harness.run(searcher, queries);
    assert!(!report.slow.is_empty(), "threshold 1 ns must catch queries");
    for slow in &report.slow {
        assert!(
            slow.duration_ns >= harness.slowlog().threshold_ns(),
            "leaderboard only holds threshold-crossers"
        );
        let trace = slow
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("slow query {:?} lost its trace", slow.query));
        assert!(
            trace.events.iter().any(|e| e.name == "engine.search"),
            "trace spans the search pipeline"
        );
        assert!(
            trace.events.iter().any(|e| e.name == "explain.hit"),
            "trace carries the score decomposition instants"
        );
    }
}

#[test]
fn open_loop_overload_shows_queueing_latency() {
    let (searcher, queries) = testbed();
    let p99 = |r: &LoadReport| {
        r.windows
            .iter()
            .find(|w| w.name == "serve.query")
            .expect("serve series present")
            .p99_ns
    };
    let closed = LoadHarness::new(sim_config(2)).run(searcher, queries);
    let open = LoadHarness::new(LoadConfig {
        mode: LoopMode::Open {
            qps_per_worker: 1e6, // arrivals far above service capacity
        },
        ..sim_config(2)
    })
    .run(searcher, queries);
    assert!(
        p99(&open) > p99(&closed),
        "open-loop latency includes queue wait: open {} vs closed {}",
        p99(&open),
        p99(&closed)
    );
}

#[test]
fn dashboard_and_slo_report_render_from_one_run() {
    let (searcher, queries) = testbed();
    let report = LoadHarness::new(LoadConfig {
        error_every: 2, // hard availability violation
        capture_traces: false,
        ..sim_config(2)
    })
    .run(searcher, queries);
    assert!(report.has_hard_violation());
    let dash = report.render_dashboard();
    assert!(dash.contains("serving dashboard"));
    assert!(dash.contains("CRITICAL"));
    let md = report.slo.to_markdown();
    assert!(md.contains("serve-availability"));
    assert!(md.contains("critical"));
}
