//! Property-based integration tests: random small ontologies and
//! corpora must always produce valid engines, scores, and metrics.

use litsearch::context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
use litsearch::corpus::{generate_corpus, CorpusConfig};
use litsearch::eval::{separability_sd, top_k_percent_overlap};
use litsearch::ontology::{generate_ontology, GeneratorConfig};
use proptest::prelude::*;

fn tiny_engine(
    ont_seed: u64,
    corp_seed: u64,
    n_terms: usize,
    n_papers: usize,
) -> ContextSearchEngine {
    let onto = generate_ontology(&GeneratorConfig {
        n_terms,
        seed: ont_seed,
        ..Default::default()
    });
    let corp = generate_corpus(
        &onto,
        &CorpusConfig {
            n_papers,
            seed: corp_seed,
            body_len: (20, 40),
            abstract_len: (10, 20),
            ..Default::default()
        },
    );
    ContextSearchEngine::build(onto, corp, EngineConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_engines_always_produce_valid_state(
        ont_seed in 0u64..1000,
        corp_seed in 0u64..1000,
        n_terms in 20usize..60,
        n_papers in 30usize..80,
    ) {
        let e = tiny_engine(ont_seed, corp_seed, n_terms, n_papers);
        let sets = e.pattern_context_sets();
        // Every member id is a real paper; sets are sorted and deduped.
        for c in sets.contexts() {
            let members = sets.members(c);
            for w in members.windows(2) {
                prop_assert!(w[0] < w[1], "sorted, deduped");
            }
            for &p in members {
                prop_assert!(p.index() < e.corpus().len());
            }
        }
        // All prestige functions bounded.
        for f in [ScoreFunction::Citation, ScoreFunction::Pattern] {
            let prestige = e.prestige(&sets, f);
            for c in prestige.contexts() {
                for &(_, s) in prestige.scores(c).iter() {
                    prop_assert!(s.is_finite() && (0.0..=1.0 + 1e-9).contains(&s));
                }
                let sd = separability_sd(prestige.score_values(c), 10);
                prop_assert!(sd.is_finite() && sd >= 0.0);
            }
        }
    }

    #[test]
    fn overlap_ratio_of_any_two_functions_is_bounded(
        seed in 0u64..500,
    ) {
        let e = tiny_engine(seed, seed + 1, 30, 50);
        let sets = e.pattern_context_sets();
        let a = e.prestige(&sets, ScoreFunction::Citation);
        let b = e.prestige(&sets, ScoreFunction::Pattern);
        for c in sets.contexts_with_min_size(5) {
            let pa: Vec<(u32, f64)> = a.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            let pb: Vec<(u32, f64)> = b.scores(c).iter().map(|&(p, s)| (p.0, s)).collect();
            for pct in [0.05, 0.10, 0.20] {
                let r = top_k_percent_overlap(&pa, &pb, pct);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&r), "overlap {r}");
            }
        }
    }

    #[test]
    fn search_never_panics_on_arbitrary_queries(
        seed in 0u64..300,
        query in "[a-z ]{0,40}",
    ) {
        let e = tiny_engine(seed, seed + 7, 25, 40);
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let hits = e.search(&query, &sets, &prestige, 10);
        for w in hits.windows(2) {
            prop_assert!(w[0].relevancy >= w[1].relevancy);
        }
        let _ = e.ac_answer_set(&query);
        let _ = e.keyword_search(&query, 0.0);
    }
}
