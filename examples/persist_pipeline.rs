//! The deployment shape the paper's architecture implies: an *offline*
//! job assigns papers to contexts and computes prestige scores, writes
//! them to disk; an *online* service loads them at startup and serves
//! queries without redoing any heavy work.
//!
//! Run with: `cargo run --release --example persist_pipeline`

use litsearch::context_search::persist::{
    context_sets_from_json, context_sets_to_json, prestige_from_json, prestige_to_json,
};
use litsearch::context_search::ScoreFunction;
use litsearch::demo::{engine, Scale};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("litsearch_persist_demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // ---- offline job --------------------------------------------------
    println!("[offline] building engine and computing prestige…");
    let t = Instant::now();
    let engine = engine(Scale::Tiny, 7);
    let sets = engine.pattern_context_sets();
    let prestige = engine.prestige(&sets, ScoreFunction::Pattern);
    println!("[offline] computed in {:.1?}", t.elapsed());

    let sets_path = dir.join("context_sets.json");
    let prestige_path = dir.join("prestige_pattern.json");
    std::fs::write(&sets_path, context_sets_to_json(&sets)).expect("write sets");
    std::fs::write(&prestige_path, prestige_to_json(&prestige)).expect("write prestige");
    println!(
        "[offline] wrote {} ({} bytes) and {} ({} bytes)",
        sets_path.display(),
        std::fs::metadata(&sets_path).unwrap().len(),
        prestige_path.display(),
        std::fs::metadata(&prestige_path).unwrap().len(),
    );

    // ---- online service -----------------------------------------------
    println!("\n[online] loading precomputed state…");
    let t = Instant::now();
    let loaded_sets =
        context_sets_from_json(&std::fs::read_to_string(&sets_path).unwrap()).unwrap();
    let loaded_prestige =
        prestige_from_json(&std::fs::read_to_string(&prestige_path).unwrap()).unwrap();
    println!(
        "[online] loaded {} contexts in {:.1?}",
        loaded_sets.n_contexts(),
        t.elapsed()
    );

    let term = engine
        .ontology()
        .term_ids()
        .find(|&t| engine.ontology().level(t) == 3)
        .expect("level-3 term");
    let query = engine.ontology().term(term).name.clone();
    println!("[online] query: {query:?}");
    let t = Instant::now();
    let hits = engine.search(&query, &loaded_sets, &loaded_prestige, 5);
    println!("[online] {} hits in {:.1?}:", hits.len(), t.elapsed());
    for h in &hits {
        println!(
            "  R={:.3}  {}",
            h.relevancy,
            &engine.corpus().paper(h.paper).title
                [..60.min(engine.corpus().paper(h.paper).title.len())]
        );
    }

    // Sanity: identical to searching with the in-memory state.
    let fresh = engine.search(&query, &sets, &prestige, 5);
    assert_eq!(fresh.len(), hits.len());
    for (a, b) in fresh.iter().zip(&hits) {
        assert_eq!(a.paper, b.paper);
        assert!((a.relevancy - b.relevancy).abs() < 1e-12);
    }
    println!("\nloaded state reproduces in-memory results exactly ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
