//! The deployment shape the paper's architecture implies: an *offline*
//! job assigns papers to contexts and computes prestige scores, writes
//! a versioned snapshot directory; an *online* service warm-starts from
//! it and serves queries lock-free without redoing any heavy work.
//!
//! Run with: `cargo run --release --example persist_pipeline`

use litsearch::context_search::persist::{load_snapshot, save_snapshot};
use litsearch::context_search::{ContextSetKind, EngineConfig, ScoreFunction};
use litsearch::demo::{snapshot, Scale};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("litsearch_persist_demo");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- offline job --------------------------------------------------
    println!("[offline] preparing snapshot (context sets + 5 prestige tables)…");
    let t = Instant::now();
    let snap = snapshot(Scale::Tiny, 7);
    println!("[offline] prepared in {:.1?}", t.elapsed());
    save_snapshot(&snap, &dir).expect("write snapshot");
    let bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "[offline] wrote snapshot directory {} ({} files, {bytes} bytes)",
        dir.display(),
        std::fs::read_dir(&dir).unwrap().count(),
    );

    // ---- online service -----------------------------------------------
    println!("\n[online] warm-starting from the snapshot…");
    let t = Instant::now();
    let loaded = load_snapshot(&dir, EngineConfig::default()).expect("load snapshot");
    let searcher = loaded.searcher();
    println!(
        "[online] loaded {} prestige tables over {} papers in {:.1?} \
         (no context assignment, no pattern mining, no per-context PageRank)",
        loaded.pairs().len(),
        loaded.corpus().len(),
        t.elapsed()
    );

    let term = searcher
        .ontology()
        .term_ids()
        .find(|&t| searcher.ontology().level(t) == 3)
        .expect("level-3 term");
    let query = searcher.ontology().term(term).name.clone();
    println!("[online] query: {query:?}");
    let t = Instant::now();
    let hits = searcher
        .query(
            &query,
            ContextSetKind::PatternBased,
            ScoreFunction::Pattern,
            5,
        )
        .expect("pair was prepared");
    println!("[online] {} hits in {:.1?}:", hits.len(), t.elapsed());
    for h in &hits {
        println!(
            "  R={:.3}  {}",
            h.relevancy,
            &searcher.corpus().paper(h.paper).title
                [..60.min(searcher.corpus().paper(h.paper).title.len())]
        );
    }

    // Sanity: identical to searching with the freshly prepared state.
    let fresh = snap
        .searcher()
        .query(
            &query,
            ContextSetKind::PatternBased,
            ScoreFunction::Pattern,
            5,
        )
        .expect("pair was prepared");
    assert_eq!(fresh.len(), hits.len());
    for (a, b) in fresh.iter().zip(&hits) {
        assert_eq!(a.paper, b.paper);
        assert!((a.relevancy - b.relevancy).abs() < 1e-12);
    }
    println!("\nwarm-started snapshot reproduces in-memory results exactly ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
