//! Side-by-side comparison of the paper's three prestige score
//! functions on one context: top papers under each function, their
//! pairwise top-k overlapping ratios (§2), and their separability (§5.2).
//!
//! Run with: `cargo run --release --example ranking_comparison`

use litsearch::context_search::ScoreFunction;
use litsearch::demo::{engine, Scale};
use litsearch::eval::{separability_sd, top_k_percent_overlap};

fn main() {
    println!("building demo engine (tiny scale)...");
    let engine = engine(Scale::Tiny, 11);
    let sets = engine.pattern_context_sets();

    // Pick the largest direct (non-inherited) context.
    let context = sets
        .contexts()
        .filter(|c| !sets.inherited_from.contains_key(c))
        .max_by_key(|&c| sets.members(c).len())
        .expect("some context");
    let term = engine.ontology().term(context);
    println!(
        "context: {:?} (level {}, {} papers)\n",
        term.name,
        engine.ontology().level(context),
        sets.members(context).len()
    );

    let citation = engine.prestige(&sets, ScoreFunction::Citation);
    let pattern = engine.prestige(&sets, ScoreFunction::Pattern);

    // Text scores need a representative; use the text-based sets for it.
    let tsets = engine.text_context_sets();
    let text = engine.prestige(&tsets, ScoreFunction::Text);

    for (name, scores) in [("citation", &citation), ("pattern", &pattern)] {
        println!("top 5 by {name}-based prestige:");
        let mut ranked: Vec<_> = scores.scores(context);
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (p, s) in ranked.iter().take(5) {
            println!(
                "  {:.3}  {}",
                s,
                truncate(&engine.corpus().paper(*p).title, 64)
            );
        }
        let sd = separability_sd(scores.score_values(context), 10);
        println!("  separability SD (0 = perfectly uniform): {sd:.1}\n");
    }

    // Pairwise agreement on this context.
    let as_pairs = |s: &litsearch::context_search::PrestigeScores| {
        s.scores(context)
            .iter()
            .map(|&(p, v)| (p.0, v))
            .collect::<Vec<_>>()
    };
    let cp = top_k_percent_overlap(&as_pairs(&citation), &as_pairs(&pattern), 0.10);
    println!("top-10% overlapping ratio citation↔pattern: {cp:.2}");
    if text.scores(context).len() > 1 {
        let tc = top_k_percent_overlap(&as_pairs(&text), &as_pairs(&citation), 0.10);
        let tp = top_k_percent_overlap(&as_pairs(&text), &as_pairs(&pattern), 0.10);
        println!("top-10% overlapping ratio text↔citation:    {tc:.2}");
        println!("top-10% overlapping ratio text↔pattern:     {tp:.2}");
    }
    println!("\n(the paper finds low agreement overall, and lower agreement");
    println!(" with the citation-based function in deeper contexts — its");
    println!(" in-context citation graphs are too sparse to rank reliably)");
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
