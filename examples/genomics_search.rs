//! The paper's motivating scenario: a researcher searches a genomics
//! literature collection where plain keyword search drowns relevant
//! work in topically diffuse output. Context-based search restricts the
//! search to ontology contexts matching the query and ranks by
//! prestige-combined relevancy.
//!
//! Reproduces, qualitatively, the claims of the paper's §1: output-size
//! reduction and better precision against the AC-answer ground truth.
//!
//! Run with: `cargo run --release --example genomics_search`

use litsearch::context_search::ScoreFunction;
use litsearch::corpus::queries::{generate_queries, QueryConfig};
use litsearch::demo::{engine, Scale};
use litsearch::eval::precision;
use std::collections::HashSet;

fn main() {
    println!("building demo engine (small scale — a minute or so)...");
    let engine = engine(Scale::Small, 7);
    let sets = engine.pattern_context_sets();
    let prestige = engine.prestige(&sets, ScoreFunction::Pattern);

    let queries = generate_queries(
        engine.ontology(),
        engine.corpus(),
        &QueryConfig {
            n_queries: 12,
            ..Default::default()
        },
    );
    println!("running {} synthesized queries\n", queries.len());
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>9}",
        "query", "keyword", "context", "prec(kw)", "prec(ctx)"
    );

    let mut total_reduction = 0.0;
    let mut n = 0;
    for q in &queries {
        let truth = engine.ac_answer_set(&q.text);
        if truth.is_empty() {
            continue;
        }
        // Same text-matching cut on both sides; the context side is
        // additionally restricted to members of the selected contexts —
        // that membership restriction is where the paper's output-size
        // reduction comes from.
        let keyword = engine.keyword_search(&q.text, 0.10);
        let context: Vec<_> = engine
            .search(&q.text, &sets, &prestige, 0)
            .into_iter()
            .filter(|h| h.matching > 0.10)
            .collect();

        let kw_set: HashSet<u32> = keyword.iter().map(|&(p, _)| p.0).collect();
        let ctx_set: HashSet<u32> = context.iter().map(|h| h.paper.0).collect();
        let truth_ids: HashSet<u32> = truth.iter().map(|p| p.0).collect();

        let p_kw = precision(&kw_set, &truth_ids);
        let p_ctx = precision(&ctx_set, &truth_ids);
        if !keyword.is_empty() {
            total_reduction += 1.0 - ctx_set.len() as f64 / kw_set.len().max(1) as f64;
            n += 1;
        }
        println!(
            "{:<44} {:>8} {:>8} {:>9.3} {:>9.3}",
            truncate(&q.text, 42),
            kw_set.len(),
            ctx_set.len(),
            p_kw,
            p_ctx
        );
    }
    if n > 0 {
        println!(
            "\naverage output-size reduction vs keyword search: {:.0}%",
            100.0 * total_reduction / n as f64
        );
        println!("(the paper reports up to 70% on PubMed; the effect grows with");
        println!(" ontology depth — at this demo scale contexts are broad, at the");
        println!(" 8k-paper bench scale `baseline_vs_context` measures ~28%)");
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
