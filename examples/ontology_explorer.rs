//! Tour of the ontology substrate: parse a hand-written OBO fragment
//! (the Gene Ontology distribution format), inspect levels, information
//! content, and the RateOfDecay used by the §4 ancestor fallback; then
//! do the same on a generated GO-like ontology.
//!
//! Run with: `cargo run --release --example ontology_explorer`

use litsearch::ontology::ic::{information_content, rate_of_decay};
use litsearch::ontology::obo::{parse_obo, write_obo};
use litsearch::ontology::{generate_ontology, GeneratorConfig};

const OBO_FRAGMENT: &str = "\
format-version: 1.2

[Term]
id: GO:0003674
name: molecular function
namespace: molecular_function

[Term]
id: GO:0005488
name: binding
namespace: molecular_function
is_a: GO:0003674 ! molecular function

[Term]
id: GO:0003676
name: nucleic acid binding
namespace: molecular_function
is_a: GO:0005488 ! binding

[Term]
id: GO:0003677
name: dna binding
namespace: molecular_function
is_a: GO:0003676 ! nucleic acid binding

[Term]
id: GO:0003700
name: transcription factor activity
namespace: molecular_function
is_a: GO:0003677 ! dna binding
";

fn main() {
    println!("== parsing an OBO fragment ==");
    let onto = parse_obo(OBO_FRAGMENT).expect("valid OBO");
    println!("parsed {} terms\n", onto.len());
    println!("{:<34} {:>5} {:>6} {:>8}", "term", "level", "desc", "IC");
    for t in onto.term_ids() {
        let term = onto.term(t);
        println!(
            "{:<34} {:>5} {:>6} {:>8.3}",
            term.name,
            onto.level(t),
            onto.descendants(t).len(),
            information_content(&onto, t)
        );
    }

    let binding = onto.find_by_accession("GO:0005488").unwrap();
    let tf = onto.find_by_accession("GO:0003700").unwrap();
    let dna = onto.find_by_accession("GO:0003677").unwrap();
    println!(
        "\nRateOfDecay(binding → transcription factor activity) = {:.3}",
        rate_of_decay(&onto, binding, tf)
    );
    println!(
        "RateOfDecay(dna binding → transcription factor activity) = {:.3}",
        rate_of_decay(&onto, dna, tf)
    );
    println!("(a closer ancestor loses less information — §4 of the paper)");

    println!("\n== round-trip through the OBO writer ==");
    let reparsed = parse_obo(&write_obo(&onto)).expect("round-trip");
    println!(
        "round-tripped {} terms, identical levels: {}",
        reparsed.len(),
        {
            onto.term_ids().all(|t| {
                let acc = &onto.term(t).accession;
                reparsed
                    .find_by_accession(acc)
                    .is_some_and(|t2| reparsed.level(t2) == onto.level(t))
            })
        }
    );

    println!("\n== generated GO-like ontology ==");
    let synth = generate_ontology(&GeneratorConfig {
        n_terms: 300,
        seed: 2007,
        ..Default::default()
    });
    println!(
        "{} terms, {} roots, max level {}",
        synth.len(),
        synth.roots().len(),
        synth.max_level()
    );
    for level in 1..=synth.max_level().min(5) {
        let terms = synth.terms_at_level(level);
        let sample = terms
            .first()
            .map(|&t| synth.term(t).name.clone())
            .unwrap_or_default();
        println!(
            "  level {level}: {:>4} terms   e.g. {sample:?}",
            terms.len()
        );
    }
}
