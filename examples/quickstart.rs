//! Quickstart: build a synthetic literature collection, assign papers
//! to ontology contexts, compute prestige scores, and run one
//! context-based search.
//!
//! Run with: `cargo run --release --example quickstart`

use litsearch::context_search::ScoreFunction;
use litsearch::demo::{engine, Scale};

fn main() {
    println!("building demo engine (tiny scale)...");
    let engine = engine(Scale::Tiny, 42);
    println!(
        "  ontology: {} terms (max level {})",
        engine.ontology().len(),
        engine.ontology().max_level()
    );
    println!("  corpus:   {} papers", engine.corpus().len());

    // Task 1: assign papers to contexts (pattern-based paper set covers
    // every context; the text-based set needs annotation evidence).
    let sets = engine.pattern_context_sets();
    println!(
        "  contexts: {} non-empty (mean size {:.1})",
        sets.n_contexts(),
        sets.mean_size()
    );

    // Task 2: pre-compute prestige scores.
    let prestige = engine.prestige(&sets, ScoreFunction::Pattern);

    // Tasks 3-5: search. Use a mid-level term's name as the query.
    let term = engine
        .ontology()
        .term_ids()
        .find(|&t| engine.ontology().level(t) == 3)
        .expect("a level-3 term exists");
    let query = engine.ontology().term(term).name.clone();
    println!("\nquery: {query:?}");

    let hits = engine.search(&query, &sets, &prestige, 10);
    println!(
        "top {} results (relevancy = 0.5·prestige + 0.5·match):",
        hits.len()
    );
    for (rank, h) in hits.iter().enumerate() {
        let paper = engine.corpus().paper(h.paper);
        let context = engine.ontology().term(h.context);
        println!(
            "  {:>2}. R={:.3} (prestige {:.3}, match {:.3})  [{}]  {}",
            rank + 1,
            h.relevancy,
            h.prestige,
            h.matching,
            context.name,
            truncate(&paper.title, 60),
        );
    }

    // Compare with the keyword baseline.
    let baseline = engine.keyword_search(&query, 0.0);
    println!(
        "\nkeyword baseline returned {} papers; context-based search returned {}",
        baseline.len(),
        engine.search(&query, &sets, &prestige, 0).len()
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
