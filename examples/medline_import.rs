//! Ingesting real-world-shaped data: a MEDLINE flat file plus an OBO
//! ontology, straight into the search engine — the path a user with
//! actual PubMed exports and the real Gene Ontology would take.
//!
//! Run with: `cargo run --release --example medline_import`

use litsearch::context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
use litsearch::corpus::medline::parse_medline;
use litsearch::corpus::Corpus;
use litsearch::ontology::obo::parse_obo;

const OBO: &str = "\
[Term]
id: GO:0006325
name: chromatin organization
namespace: biological_process

[Term]
id: GO:0006333
name: chromatin assembly
namespace: biological_process
is_a: GO:0006325

[Term]
id: GO:0016570
name: histone modification
namespace: biological_process
is_a: GO:0006325

[Term]
id: GO:0016301
name: kinase activity
namespace: molecular_function
";

const MEDLINE: &str = "\
PMID- 1
TI  - Chromatin assembly factors and histone deposition
AB  - We characterize chromatin assembly in vitro. Histone deposition
      requires assembly factors acting on nucleosomes.
FT  - Chromatin assembly proceeds stepwise. Assembly factors deposit
      histone tetramers onto dna, and nucleosome spacing follows.
AU  - Smith J
AU  - Kim H
MH  - chromatin assembly
MH  - histone
DP  - 2001

PMID- 2
TI  - Histone modification landscapes in yeast chromatin
AB  - A survey of histone modification states across the yeast genome
      reveals modification patterns tied to chromatin organization.
FT  - We mapped histone modification marks genome wide. Modification
      enzymes target chromatin regions with distinct organization.
AU  - Kim H
MH  - histone modification
CR  - 1
DP  - 2003

PMID- 3
TI  - Kinase activity assays for signaling studies
AB  - Improved kinase activity assays measure phosphorylation rates in
      signaling cascades.
FT  - The kinase activity assay uses labelled substrates. Kinase
      preparations show linear activity ranges.
AU  - Garcia M
MH  - kinase activity
CR  - 1
DP  - 2005
";

fn main() {
    let ontology = parse_obo(OBO).expect("valid OBO");
    println!(
        "parsed ontology: {} terms, {} roots",
        ontology.len(),
        ontology.roots().len()
    );

    let import = parse_medline(MEDLINE).expect("valid MEDLINE");
    println!(
        "parsed MEDLINE: {} papers, {} authors, {} dangling references",
        import.papers.len(),
        import.author_names.len(),
        import.dangling_references
    );

    // Real imports carry no GO annotation evidence; the pattern-based
    // paper set works regardless (patterns come from term names).
    let term_names: Vec<String> = ontology
        .term_ids()
        .map(|t| ontology.term(t).name.clone())
        .collect();
    let corpus = Corpus::new(
        import.papers,
        import.author_names,
        Default::default(),
        &term_names,
    );
    let engine = ContextSearchEngine::build(ontology, corpus, EngineConfig::default());
    let sets = engine.pattern_context_sets();
    println!("\ncontext paper sets:");
    for c in sets.contexts() {
        println!(
            "  {:<28} {:?}",
            engine.ontology().term(c).name,
            sets.members(c)
                .iter()
                .map(|p| engine.corpus().paper(*p).title.split(' ').next().unwrap())
                .collect::<Vec<_>>()
        );
    }

    let prestige = engine.prestige(&sets, ScoreFunction::Pattern);
    for query in ["histone modification chromatin", "kinase phosphorylation"] {
        println!("\nquery: {query:?}");
        for h in engine.search(query, &sets, &prestige, 3) {
            println!(
                "  R={:.3}  [{}]  {}",
                h.relevancy,
                engine.ontology().term(h.context).name,
                engine.corpus().paper(h.paper).title
            );
        }
    }
}
