//! Bounded slow-query log: the worst offenders, each with its explain
//! trace.
//!
//! Windowed percentiles ([`crate::rolling`]) say *that* the tail is
//! slow; the slow-query log says *which queries* and — because each
//! entry can carry a full captured [`TraceData`] — *why*: the per-stage
//! spans and `explain.*` score-decomposition instants of the offending
//! execution ride along.
//!
//! The log is a bounded leaderboard, not a stream: it keeps the
//! `capacity` slowest entries seen so far, evicting by a **total**
//! order (duration desc, then timestamp, then query text) so the
//! retained set is a pure function of what was pushed — identical
//! across runs and thread interleavings. Everything else (count of
//! evictions, JSONL dump order) follows from that order.

use crate::trace::TraceData;
use parking_lot::Mutex;
use serde::Value;
use std::cmp::Ordering;

/// One slow query: what ran, how long it took, and why.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query text.
    pub query: String,
    /// End-to-end duration, nanoseconds.
    pub duration_ns: u64,
    /// Clock reading when the query completed, nanoseconds.
    pub ts_ns: u64,
    /// Work counters for the execution (`scored_pairs`, ...), in a
    /// fixed caller-chosen order.
    pub stats: Vec<(String, u64)>,
    /// Captured explain trace of a re-execution, when capture was on.
    pub trace: Option<TraceData>,
}

impl SlowQuery {
    /// Leaderboard order: slowest first; ties broken by timestamp then
    /// query text so the order (and therefore eviction) is total.
    fn cmp_rank(&self, other: &Self) -> Ordering {
        other
            .duration_ns
            .cmp(&self.duration_ns)
            .then_with(|| self.ts_ns.cmp(&other.ts_ns))
            .then_with(|| self.query.cmp(&other.query))
    }

    /// JSON object form (trace embedded as an event array when
    /// present).
    pub fn to_value(&self) -> Value {
        let stats: Vec<(String, Value)> = self
            .stats
            .iter()
            .map(|(k, v)| (k.clone(), Value::UInt(*v)))
            .collect();
        let mut map = vec![
            ("query".to_string(), Value::Str(self.query.clone())),
            ("duration_ns".to_string(), Value::UInt(self.duration_ns)),
            ("ts_ns".to_string(), Value::UInt(self.ts_ns)),
            ("stats".to_string(), Value::Map(stats)),
        ];
        match &self.trace {
            Some(trace) => {
                map.push((
                    "trace_id".to_string(),
                    Value::Str(trace.trace_id.to_string()),
                ));
                map.push(("trace".to_string(), Value::Seq(trace.event_values())));
            }
            None => {
                map.push(("trace".to_string(), Value::Seq(Vec::new())));
            }
        }
        Value::Map(map)
    }
}

struct LogState {
    /// Kept sorted by [`SlowQuery::cmp_rank`] (slowest first).
    entries: Vec<SlowQuery>,
    evicted: u64,
}

/// The bounded slow-query leaderboard. One process-global instance
/// lives in the [`Registry`](crate::Registry)'s orbit (see
/// [`crate::slow_log`]); independent logs exist for tests and embedded
/// harnesses.
pub struct SlowQueryLog {
    threshold_ns: u64,
    capacity: usize,
    state: Mutex<LogState>,
}

impl SlowQueryLog {
    /// A log keeping the `capacity` slowest queries at or over
    /// `threshold_ns`.
    pub fn new(threshold_ns: u64, capacity: usize) -> Self {
        Self {
            threshold_ns,
            capacity: capacity.max(1),
            state: Mutex::new(LogState {
                entries: Vec::new(),
                evicted: 0,
            }),
        }
    }

    /// The slowness threshold, nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a duration qualifies for the log.
    #[inline]
    pub fn is_slow(&self, duration_ns: u64) -> bool {
        duration_ns >= self.threshold_ns
    }

    /// Push an entry, keeping the `capacity` slowest. Entries under the
    /// threshold are ignored (callers may check [`is_slow`](Self::is_slow)
    /// first to skip building the entry at all).
    pub fn push(&self, entry: SlowQuery) {
        if !self.is_slow(entry.duration_ns) {
            return;
        }
        let mut state = self.state.lock();
        let pos = state
            .entries
            .binary_search_by(|e| e.cmp_rank(&entry))
            .unwrap_or_else(|p| p);
        if pos >= self.capacity {
            state.evicted += 1;
            return;
        }
        state.entries.insert(pos, entry);
        if state.entries.len() > self.capacity {
            state.entries.truncate(self.capacity);
            state.evicted += 1;
        }
    }

    /// The current leaderboard, slowest first.
    pub fn leaderboard(&self) -> Vec<SlowQuery> {
        self.state.lock().entries.clone()
    }

    /// Retained entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether nothing qualified yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Qualifying entries that did not fit (or were pushed out).
    pub fn evicted(&self) -> u64 {
        self.state.lock().evicted
    }

    /// Drop every entry and the eviction count. Part of the
    /// [`Registry::reset`](crate::Registry::reset) contract.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.entries.clear();
        state.evicted = 0;
    }

    /// JSON array of the leaderboard, slowest first.
    pub fn to_value(&self) -> Value {
        Value::Seq(
            self.state
                .lock()
                .entries
                .iter()
                .map(SlowQuery::to_value)
                .collect(),
        )
    }

    /// One compact JSON object per slow query per line, slowest first —
    /// each line embeds the entry's captured trace events.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.state.lock().entries.iter() {
            out.push_str(&serde_json::to_string(&e.to_value()).expect("entry serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(query: &str, duration_ns: u64, ts_ns: u64) -> SlowQuery {
        SlowQuery {
            query: query.to_string(),
            duration_ns,
            ts_ns,
            stats: vec![("scored_pairs".to_string(), 7)],
            trace: None,
        }
    }

    #[test]
    fn keeps_the_slowest_and_counts_evictions() {
        let log = SlowQueryLog::new(100, 3);
        log.push(q("under-threshold", 99, 0));
        assert!(log.is_empty(), "below threshold never enters");
        for (i, d) in [150u64, 120, 400, 300, 110].iter().enumerate() {
            log.push(q(&format!("q{i}"), *d, i as u64));
        }
        let board = log.leaderboard();
        let durations: Vec<u64> = board.iter().map(|e| e.duration_ns).collect();
        assert_eq!(durations, vec![400, 300, 150]);
        assert_eq!(log.evicted(), 2);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn order_is_total_under_duration_ties() {
        let log = SlowQueryLog::new(0, 10);
        log.push(q("b", 100, 5));
        log.push(q("a", 100, 5));
        log.push(q("c", 100, 2));
        let names: Vec<String> = log.leaderboard().iter().map(|e| e.query.clone()).collect();
        assert_eq!(names, vec!["c", "a", "b"], "ts then query breaks ties");
    }

    #[test]
    fn dump_jsonl_is_one_object_per_line_with_stats() {
        let log = SlowQueryLog::new(0, 10);
        log.push(q("kinase", 500, 1));
        log.push(q("p53", 900, 2));
        let dump = log.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).expect("line parses");
        assert_eq!(first["query"].as_str(), Some("p53"), "slowest first");
        assert_eq!(first["stats"]["scored_pairs"].as_f64(), Some(7.0));
    }

    #[test]
    fn clear_resets_entries_and_evictions() {
        let log = SlowQueryLog::new(0, 1);
        log.push(q("a", 10, 0));
        log.push(q("b", 20, 1));
        assert_eq!(log.evicted(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 0);
    }
}
