//! Continuous ranking-quality observability: aggregation, drift
//! detection, and reporting over shadow-scoring events.
//!
//! The paper's evaluation chapter compares the three prestige functions
//! offline — top-k% overlapping ratio between their rankings (Fig 5.3)
//! and separability of per-context score distributions (Figs 5.4–5.7).
//! This module runs the same statistics *continuously* against sampled
//! live queries: the core crate's shadow scorer re-ranks a sampled
//! query under every prepared prestige function and emits one
//! [`QualityEvent`]; the [`QualityAggregator`] folds events into
//!
//! * **rolling series** (via the attached [`RollingRecorder`], so the
//!   dashboard windows pick them up like any latency series) — ratios
//!   are recorded as fixed-point nanosecond-slot values scaled by
//!   [`RATIO_SCALE`],
//! * **run-level accumulators** — integer bin counts and scaled-integer
//!   sums only, so the summary is independent of event arrival order
//!   (worker interleaving) and byte-stable under the deterministic
//!   load harness,
//! * **score sketches** per prestige function ([`ScoreSketch`]) —
//!   streaming bin histograms over the normalized score range [0, 1]
//!   reusing [`eval::StreamingSeparability`], from which the summary
//!   derives separability SD and quantiles.
//!
//! Drift is judged against a checked-in [`QualityBaseline`]
//! (`results/quality_baseline.json`): overlap bands in both directions
//! (functions diverging *or* collapsing into one ranking), winning-
//! context agreement, separability uniformity, and median-score shift.
//! The [`QualityTracker`] latches the worst status ever observed,
//! mirroring [`SloTracker`](crate::SloTracker), and is cleared by
//! [`Registry::reset`](crate::Registry::reset) under the same contract
//! as the SLO latch.
//!
//! Every series name below is a `'static` literal so the
//! `span-name-drift` lint can anchor the names in
//! `results/quality_baseline.json` to the source.

use crate::rolling::RollingRecorder;
use crate::slo::SloStatus;
use eval::StreamingSeparability;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-point scale for ratios recorded into rolling series: a ratio
/// in [0, 1] is stored as `(ratio * RATIO_SCALE) as u64`, so windowed
/// percentiles read back as millionths.
pub const RATIO_SCALE: u64 = 1_000_000;

/// Pairwise top-k% overlap series between prestige-function rankings.
pub const OVERLAP_CITATION_TEXT: &str = "quality.overlap.citation_text";
/// See [`OVERLAP_CITATION_TEXT`].
pub const OVERLAP_CITATION_PATTERN: &str = "quality.overlap.citation_pattern";
/// See [`OVERLAP_CITATION_TEXT`].
pub const OVERLAP_TEXT_PATTERN: &str = "quality.overlap.text_pattern";
/// Winning-context agreement series: value 1 when every function picks
/// the same winning context, and the error flag carries disagreement,
/// so the window's `error_rate` is the disagreement rate.
pub const AGREEMENT: &str = "quality.agreement";
/// Top1−top2 relevancy margin series, one per prestige function.
pub const MARGIN_CITATION: &str = "quality.margin.citation";
/// See [`MARGIN_CITATION`].
pub const MARGIN_TEXT: &str = "quality.margin.text";
/// See [`MARGIN_CITATION`].
pub const MARGIN_PATTERN: &str = "quality.margin.pattern";
/// Separability-sketch identifiers (not rolling series — they name the
/// per-function score sketches in summaries, baselines, and reports).
pub const SEPARABILITY_CITATION: &str = "quality.separability.citation";
/// See [`SEPARABILITY_CITATION`].
pub const SEPARABILITY_TEXT: &str = "quality.separability.text";
/// See [`SEPARABILITY_CITATION`].
pub const SEPARABILITY_PATTERN: &str = "quality.separability.pattern";
/// Span name the shadow evaluator runs under (off the serve path).
pub const SHADOW_EVAL_SPAN: &str = "quality.shadow_eval";

/// Every quality series/sketch name, in report order.
pub fn all_series() -> [&'static str; 10] {
    [
        OVERLAP_CITATION_TEXT,
        OVERLAP_CITATION_PATTERN,
        OVERLAP_TEXT_PATTERN,
        AGREEMENT,
        MARGIN_CITATION,
        MARGIN_TEXT,
        MARGIN_PATTERN,
        SEPARABILITY_CITATION,
        SEPARABILITY_TEXT,
        SEPARABILITY_PATTERN,
    ]
}

/// The rolling series for a pair of prestige-function names
/// (order-insensitive); `None` for unknown names.
pub fn overlap_series(a: &str, b: &str) -> Option<&'static str> {
    match (a, b) {
        ("citation", "text") | ("text", "citation") => Some(OVERLAP_CITATION_TEXT),
        ("citation", "pattern") | ("pattern", "citation") => Some(OVERLAP_CITATION_PATTERN),
        ("text", "pattern") | ("pattern", "text") => Some(OVERLAP_TEXT_PATTERN),
        _ => None,
    }
}

/// The margin series for one prestige-function name.
pub fn margin_series(function: &str) -> Option<&'static str> {
    match function {
        "citation" => Some(MARGIN_CITATION),
        "text" => Some(MARGIN_TEXT),
        "pattern" => Some(MARGIN_PATTERN),
        _ => None,
    }
}

/// The separability-sketch name for one prestige-function name.
pub fn separability_series(function: &str) -> Option<&'static str> {
    match function {
        "citation" => Some(SEPARABILITY_CITATION),
        "text" => Some(SEPARABILITY_TEXT),
        "pattern" => Some(SEPARABILITY_PATTERN),
        _ => None,
    }
}

fn scale_ratio(r: f64) -> u64 {
    (r.clamp(0.0, 1.0) * RATIO_SCALE as f64).round() as u64
}

fn unscale(sum_scaled: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        (sum_scaled as f64 / RATIO_SCALE as f64) / count as f64
    }
}

/// One shadow-scored query, as emitted by the core crate's shadow
/// evaluator. Function names are the `ScoreFunction::name()` literals
/// (`"citation"` / `"text"` / `"pattern"`); the obs crate stays
/// ignorant of core types.
#[derive(Debug, Clone)]
pub struct QualityEvent {
    /// Rolling-recorder shard the originating worker owns.
    pub shard: usize,
    /// Completion timestamp of the originating query (virtual under
    /// the sim harness), nanoseconds.
    pub ts_ns: u64,
    /// Pairwise top-k% overlap between function rankings.
    pub overlaps: Vec<(&'static str, &'static str, f64)>,
    /// Did every evaluated function pick the same winning context?
    /// `None` when fewer than two functions produced results.
    pub agreement: Option<bool>,
    /// Per-function top1−top2 relevancy margin, clamped to [0, 1].
    pub margins: Vec<(&'static str, f64)>,
    /// Per-function normalized prestige scores of the winning context
    /// (feeds the separability sketches).
    pub scores: Vec<(&'static str, Vec<f64>)>,
}

/// Streaming sketch of one score distribution over [0, 1]: bin counts
/// (shared with the separability statistic), a fixed-point sum for the
/// mean, and min/max. Everything derivable from it is independent of
/// push order.
#[derive(Debug, Clone)]
pub struct ScoreSketch {
    sep: StreamingSeparability,
    sum_scaled: u64,
    min: f64,
    max: f64,
}

impl ScoreSketch {
    /// An empty sketch with `n_bins` ranges.
    pub fn new(n_bins: usize) -> Self {
        Self {
            sep: StreamingSeparability::new(n_bins),
            sum_scaled: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one score (clamped to [0, 1]).
    pub fn push(&mut self, score: f64) {
        let s = score.clamp(0.0, 1.0);
        self.sep.push(s);
        self.sum_scaled += scale_ratio(s);
        self.min = self.min.min(s);
        self.max = self.max.max(s);
    }

    /// Scores observed.
    pub fn count(&self) -> u64 {
        self.sep.total()
    }

    /// Mean score (0 when empty), from the fixed-point sum.
    pub fn mean(&self) -> f64 {
        unscale(self.sum_scaled, self.count())
    }

    /// Smallest score observed (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest score observed (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The paper's separability SD over everything pushed.
    pub fn separability_sd(&self) -> f64 {
        self.sep.sd()
    }

    /// Bin-midpoint quantile: the midpoint of the bin holding the
    /// `ceil(q·count)`-th score. Coarse (bin-width resolution) but
    /// exactly reproducible from counts alone.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let n_bins = self.sep.counts().len();
        let mut seen = 0u64;
        for (i, &c) in self.sep.counts().iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as f64 + 0.5) / n_bins as f64;
            }
        }
        (n_bins as f64 - 0.5) / n_bins as f64
    }

    /// Raw bin counts (ascending score ranges).
    pub fn bins(&self) -> &[u64] {
        self.sep.counts()
    }
}

/// Fixed-point mean accumulator for one ratio series.
#[derive(Debug, Default, Clone)]
struct RatioAcc {
    count: u64,
    sum_scaled: u64,
}

impl RatioAcc {
    fn push(&mut self, r: f64) {
        self.count += 1;
        self.sum_scaled += scale_ratio(r);
    }

    fn mean(&self) -> f64 {
        unscale(self.sum_scaled, self.count)
    }
}

#[derive(Debug)]
struct AggState {
    events: u64,
    agree_true: u64,
    agree_total: u64,
    overlaps: BTreeMap<&'static str, RatioAcc>,
    margins: BTreeMap<&'static str, RatioAcc>,
    sketches: BTreeMap<&'static str, ScoreSketch>,
}

impl AggState {
    fn new() -> Self {
        Self {
            events: 0,
            agree_true: 0,
            agree_total: 0,
            overlaps: BTreeMap::new(),
            margins: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }
}

/// Folds [`QualityEvent`]s into rolling series and order-independent
/// run accumulators. One instance is shared between the shadow worker
/// (writer) and report builders (readers); all state is commutative,
/// so any arrival interleaving yields the same summary.
pub struct QualityAggregator {
    rolling: Arc<RollingRecorder>,
    n_bins: usize,
    state: Mutex<AggState>,
    dropped: AtomicU64,
}

impl QualityAggregator {
    /// An aggregator feeding `rolling` (typically the recorder already
    /// attached to the registry, so quality series appear alongside
    /// latency series in every dashboard window), sketching scores
    /// into `n_bins` separability bins.
    pub fn new(rolling: Arc<RollingRecorder>, n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one sketch bin");
        Self {
            rolling,
            n_bins,
            state: Mutex::new(AggState::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The recorder quality series land in.
    pub fn rolling(&self) -> &Arc<RollingRecorder> {
        &self.rolling
    }

    /// Separability bin count used by the sketches.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Fold one event in.
    pub fn record(&self, event: &QualityEvent) {
        let mut state = self.state.lock();
        state.events += 1;
        for &(a, b, v) in &event.overlaps {
            if let Some(series) = overlap_series(a, b) {
                self.rolling
                    .record_at(event.shard, series, event.ts_ns, scale_ratio(v), false);
                state.overlaps.entry(series).or_default().push(v);
            }
        }
        if let Some(agree) = event.agreement {
            state.agree_total += 1;
            if agree {
                state.agree_true += 1;
            }
            self.rolling.record_at(
                event.shard,
                AGREEMENT,
                event.ts_ns,
                scale_ratio(if agree { 1.0 } else { 0.0 }),
                !agree,
            );
        }
        for &(function, m) in &event.margins {
            if let Some(series) = margin_series(function) {
                self.rolling
                    .record_at(event.shard, series, event.ts_ns, scale_ratio(m), false);
                state.margins.entry(series).or_default().push(m);
            }
        }
        let n_bins = self.n_bins;
        for (function, scores) in &event.scores {
            if let Some(series) = separability_series(function) {
                let sketch = state
                    .sketches
                    .entry(series)
                    .or_insert_with(|| ScoreSketch::new(n_bins));
                for &s in scores {
                    sketch.push(s);
                }
            }
        }
    }

    /// Count shadow submissions dropped before evaluation (bounded
    /// queue full). Recorded by the shadow, surfaced in the summary.
    pub fn add_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Events aggregated so far.
    pub fn events(&self) -> u64 {
        self.state.lock().events
    }

    /// Build the run-level summary at clock reading `at_ns`.
    pub fn summary_at(&self, at_ns: u64) -> QualitySummary {
        let state = self.state.lock();
        let overlaps = state
            .overlaps
            .iter()
            .map(|(series, acc)| SeriesMean {
                series: series.to_string(),
                count: acc.count,
                mean: acc.mean(),
            })
            .collect();
        let margins = state
            .margins
            .iter()
            .map(|(series, acc)| SeriesMean {
                series: series.to_string(),
                count: acc.count,
                mean: acc.mean(),
            })
            .collect();
        let functions = state
            .sketches
            .iter()
            .map(|(series, sketch)| FunctionScores {
                series: series.to_string(),
                count: sketch.count(),
                mean: sketch.mean(),
                min: sketch.min(),
                max: sketch.max(),
                p10: sketch.quantile(0.10),
                p50: sketch.quantile(0.50),
                p90: sketch.quantile(0.90),
                separability_sd: sketch.separability_sd(),
                bins: sketch.bins().to_vec(),
            })
            .collect();
        QualitySummary {
            at_ns,
            sampled: state.events,
            dropped: self.dropped.load(Ordering::Relaxed),
            agreement_count: state.agree_total,
            agreement_rate: if state.agree_total == 0 {
                0.0
            } else {
                state.agree_true as f64 / state.agree_total as f64
            },
            overlaps,
            margins,
            functions,
        }
    }

    /// Summary at the rolling clock's current reading.
    pub fn summary(&self) -> QualitySummary {
        self.summary_at(self.rolling.clock().now_ns())
    }

    /// Drop all aggregated state (sketches, accumulators, drop count).
    /// Part of the [`Registry::reset`](crate::Registry::reset)
    /// contract; the rolling recorder is reset separately by the
    /// registry.
    pub fn reset(&self) {
        *self.state.lock() = AggState::new();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// Count + mean of one ratio series over the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesMean {
    /// Series name.
    pub series: String,
    /// Observations.
    pub count: u64,
    /// Mean ratio in [0, 1].
    pub mean: f64,
}

/// Run-level score-distribution digest for one prestige function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionScores {
    /// Sketch name (`quality.separability.<function>`).
    pub series: String,
    /// Scores observed.
    pub count: u64,
    /// Mean score.
    pub mean: f64,
    /// Smallest score.
    pub min: f64,
    /// Largest score.
    pub max: f64,
    /// 10th-percentile score (bin midpoint).
    pub p10: f64,
    /// Median score (bin midpoint).
    pub p50: f64,
    /// 90th-percentile score (bin midpoint).
    pub p90: f64,
    /// The paper's separability SD of the distribution.
    pub separability_sd: f64,
    /// Raw sketch bin counts.
    pub bins: Vec<u64>,
}

/// Everything the drift checks and reports consume: order-independent
/// run aggregates of every quality signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualitySummary {
    /// Clock reading the summary was taken at, nanoseconds.
    pub at_ns: u64,
    /// Shadow-scored queries aggregated.
    pub sampled: u64,
    /// Shadow submissions dropped (queue full) before evaluation.
    pub dropped: u64,
    /// Events that carried an agreement verdict.
    pub agreement_count: u64,
    /// Fraction of those where every function picked the same winning
    /// context.
    pub agreement_rate: f64,
    /// Pairwise overlap series, report order.
    pub overlaps: Vec<SeriesMean>,
    /// Margin series, report order.
    pub margins: Vec<SeriesMean>,
    /// Per-function score digests, report order.
    pub functions: Vec<FunctionScores>,
}

impl QualitySummary {
    fn overlap(&self, series: &str) -> Option<&SeriesMean> {
        self.overlaps.iter().find(|o| o.series == series)
    }

    fn function(&self, series: &str) -> Option<&FunctionScores> {
        self.functions.iter().find(|f| f.series == series)
    }
}

/// Acceptable band for one overlap series: drift is flagged when the
/// observed mean leaves `[min, max]` by more than the warn/critical
/// slack — functions diverging (below) or collapsing into one ranking
/// (above) are both anomalies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapBand {
    /// The overlap series this bounds.
    pub series: String,
    /// Warn when the mean drops below this.
    pub min_warn: f64,
    /// Critical when the mean drops below this.
    pub min_critical: f64,
    /// Warn when the mean rises above this.
    pub max_warn: f64,
    /// Critical when the mean rises above this.
    pub max_critical: f64,
}

/// Separability bound for one function's score distribution: SD above
/// the bound means scores piled into few bins (the citation function's
/// failure mode in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeparabilityBound {
    /// The sketch this bounds (`quality.separability.<function>`).
    pub series: String,
    /// Warn when SD exceeds this.
    pub max_sd_warn: f64,
    /// Critical when SD exceeds this.
    pub max_sd_critical: f64,
}

/// Median-shift bound for one function's score distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileBand {
    /// The sketch this bounds (`quality.separability.<function>`).
    pub series: String,
    /// The healthy run's median score.
    pub baseline_p50: f64,
    /// Warn when `|p50 − baseline|` exceeds this.
    pub warn_shift: f64,
    /// Critical when `|p50 − baseline|` exceeds this.
    pub critical_shift: f64,
}

/// Magic marker of a quality baseline document.
pub const BASELINE_MAGIC: &str = "litsearch-quality-baseline";
/// Current baseline schema version.
pub const BASELINE_VERSION: u32 = 1;

/// The checked-in drift reference (`results/quality_baseline.json`):
/// bands derived from a healthy deterministic run, plus the full
/// quality series list (anchored to source literals by the
/// `span-name-drift` lint so renames cannot silently detach the gate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityBaseline {
    /// Must equal [`BASELINE_MAGIC`].
    pub magic: String,
    /// Must equal [`BASELINE_VERSION`].
    pub version: u32,
    /// Every quality series/sketch name the layer emits.
    pub series: Vec<String>,
    /// Sketch bin count the bands assume.
    pub n_bins: usize,
    /// Below this many sampled events the drift verdict is a lone
    /// Warn ("insufficient samples") and no band is judged.
    pub min_sampled: u64,
    /// Warn when winning-context agreement drops below this.
    pub agreement_min_warn: f64,
    /// Critical when winning-context agreement drops below this.
    pub agreement_min_critical: f64,
    /// Per-pair overlap bands.
    pub overlap: Vec<OverlapBand>,
    /// Per-function separability bounds.
    pub separability: Vec<SeparabilityBound>,
    /// Per-function median-shift bands.
    pub score_p50: Vec<QuantileBand>,
}

/// Slacks used when deriving a baseline from a healthy summary.
#[derive(Debug, Clone)]
pub struct BaselineTolerances {
    /// Overlap band slack below/above the observed mean (warn).
    pub overlap_warn: f64,
    /// Overlap band slack below/above the observed mean (critical).
    pub overlap_critical: f64,
    /// Agreement slack below the observed rate (warn).
    pub agreement_warn: f64,
    /// Agreement slack below the observed rate (critical).
    pub agreement_critical: f64,
    /// Separability SD slack above the observed value (warn).
    pub separability_warn: f64,
    /// Separability SD slack above the observed value (critical).
    pub separability_critical: f64,
    /// Median shift tolerance (warn).
    pub p50_warn: f64,
    /// Median shift tolerance (critical).
    pub p50_critical: f64,
    /// Minimum sampled events for a judgeable run.
    pub min_sampled: u64,
}

impl Default for BaselineTolerances {
    fn default() -> Self {
        Self {
            overlap_warn: 0.10,
            overlap_critical: 0.20,
            agreement_warn: 0.10,
            agreement_critical: 0.25,
            separability_warn: 2.0,
            separability_critical: 5.0,
            p50_warn: 0.10,
            p50_critical: 0.20,
            min_sampled: 8,
        }
    }
}

impl QualityBaseline {
    /// Derive a baseline from a healthy run's summary.
    pub fn from_summary(summary: &QualitySummary, n_bins: usize, tol: &BaselineTolerances) -> Self {
        let overlap = summary
            .overlaps
            .iter()
            .map(|o| OverlapBand {
                series: o.series.clone(),
                min_warn: (o.mean - tol.overlap_warn).max(0.0),
                min_critical: (o.mean - tol.overlap_critical).max(0.0),
                max_warn: (o.mean + tol.overlap_warn).min(1.0),
                max_critical: (o.mean + tol.overlap_critical).min(1.0),
            })
            .collect();
        let separability = summary
            .functions
            .iter()
            .map(|f| SeparabilityBound {
                series: f.series.clone(),
                max_sd_warn: f.separability_sd + tol.separability_warn,
                max_sd_critical: f.separability_sd + tol.separability_critical,
            })
            .collect();
        let score_p50 = summary
            .functions
            .iter()
            .map(|f| QuantileBand {
                series: f.series.clone(),
                baseline_p50: f.p50,
                warn_shift: tol.p50_warn,
                critical_shift: tol.p50_critical,
            })
            .collect();
        Self {
            magic: BASELINE_MAGIC.to_string(),
            version: BASELINE_VERSION,
            series: all_series().iter().map(|s| s.to_string()).collect(),
            n_bins,
            min_sampled: tol.min_sampled,
            agreement_min_warn: (summary.agreement_rate - tol.agreement_warn).max(0.0),
            agreement_min_critical: (summary.agreement_rate - tol.agreement_critical).max(0.0),
            overlap,
            separability,
            score_p50,
        }
    }

    /// Parse and validate a baseline document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let baseline: QualityBaseline =
            serde_json::from_str(text).map_err(|e| format!("quality baseline: {e}"))?;
        if baseline.magic != BASELINE_MAGIC {
            return Err(format!(
                "quality baseline has magic {:?}, expected {BASELINE_MAGIC:?}",
                baseline.magic
            ));
        }
        if baseline.version != BASELINE_VERSION {
            return Err(format!(
                "quality baseline is version {}, expected {BASELINE_VERSION}",
                baseline.version
            ));
        }
        Ok(baseline)
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("quality baseline serializes")
    }

    /// Judge a summary against the bands. Insufficient samples produce
    /// a single Warn check; a band whose series is missing from the
    /// summary is a Critical check (the signal silently disappeared —
    /// exactly what a drift gate must catch).
    pub fn evaluate(&self, summary: &QualitySummary) -> QualityDriftReport {
        let mut checks = Vec::new();
        if summary.sampled < self.min_sampled {
            checks.push(DriftCheck {
                name: "sample-size".to_string(),
                subject: "sampled".to_string(),
                observed: summary.sampled as f64,
                bound: format!(">= {}", self.min_sampled),
                status: SloStatus::Warn,
            });
            let status = worst_of(&checks);
            return QualityDriftReport {
                at_ns: summary.at_ns,
                checks,
                status,
            };
        }
        for band in &self.overlap {
            match summary.overlap(&band.series) {
                None => checks.push(missing(&band.series, "overlap")),
                Some(o) => {
                    let status = if o.mean < band.min_critical || o.mean > band.max_critical {
                        SloStatus::Critical
                    } else if o.mean < band.min_warn || o.mean > band.max_warn {
                        SloStatus::Warn
                    } else {
                        SloStatus::Ok
                    };
                    checks.push(DriftCheck {
                        name: "overlap-band".to_string(),
                        subject: band.series.clone(),
                        observed: o.mean,
                        bound: format!(
                            "[{:.3}, {:.3}] warn / [{:.3}, {:.3}] critical",
                            band.min_warn, band.max_warn, band.min_critical, band.max_critical
                        ),
                        status,
                    });
                }
            }
        }
        {
            // No agreement samples means the signal vanished entirely.
            let status = if summary.agreement_count == 0
                || summary.agreement_rate < self.agreement_min_critical
            {
                SloStatus::Critical
            } else if summary.agreement_rate < self.agreement_min_warn {
                SloStatus::Warn
            } else {
                SloStatus::Ok
            };
            checks.push(DriftCheck {
                name: "agreement".to_string(),
                subject: AGREEMENT.to_string(),
                observed: summary.agreement_rate,
                bound: format!(
                    ">= {:.3} warn / >= {:.3} critical",
                    self.agreement_min_warn, self.agreement_min_critical
                ),
                status,
            });
        }
        for bound in &self.separability {
            match summary.function(&bound.series) {
                None => checks.push(missing(&bound.series, "separability")),
                Some(f) => {
                    let status = if f.separability_sd > bound.max_sd_critical {
                        SloStatus::Critical
                    } else if f.separability_sd > bound.max_sd_warn {
                        SloStatus::Warn
                    } else {
                        SloStatus::Ok
                    };
                    checks.push(DriftCheck {
                        name: "separability".to_string(),
                        subject: bound.series.clone(),
                        observed: f.separability_sd,
                        bound: format!(
                            "<= {:.2} warn / <= {:.2} critical",
                            bound.max_sd_warn, bound.max_sd_critical
                        ),
                        status,
                    });
                }
            }
        }
        for band in &self.score_p50 {
            match summary.function(&band.series) {
                None => checks.push(missing(&band.series, "score-p50")),
                Some(f) => {
                    let shift = (f.p50 - band.baseline_p50).abs();
                    let status = if shift > band.critical_shift {
                        SloStatus::Critical
                    } else if shift > band.warn_shift {
                        SloStatus::Warn
                    } else {
                        SloStatus::Ok
                    };
                    checks.push(DriftCheck {
                        name: "score-p50-shift".to_string(),
                        subject: band.series.clone(),
                        observed: shift,
                        bound: format!(
                            "<= {:.3} warn / <= {:.3} critical (baseline p50 {:.3})",
                            band.warn_shift, band.critical_shift, band.baseline_p50
                        ),
                        status,
                    });
                }
            }
        }
        let status = worst_of(&checks);
        QualityDriftReport {
            at_ns: summary.at_ns,
            checks,
            status,
        }
    }
}

fn missing(series: &str, kind: &str) -> DriftCheck {
    DriftCheck {
        name: format!("{kind}-missing"),
        subject: series.to_string(),
        observed: 0.0,
        bound: "series present in summary".to_string(),
        status: SloStatus::Critical,
    }
}

fn worst_of(checks: &[DriftCheck]) -> SloStatus {
    checks
        .iter()
        .map(|c| c.status)
        .max()
        .unwrap_or(SloStatus::Ok)
}

fn status_name(s: SloStatus) -> &'static str {
    match s {
        SloStatus::Ok => "ok",
        SloStatus::Warn => "warn",
        SloStatus::Critical => "critical",
    }
}

/// One drift judgment.
#[derive(Debug, Clone)]
pub struct DriftCheck {
    /// Check kind (`overlap-band`, `agreement`, `separability`,
    /// `score-p50-shift`, `sample-size`, `*-missing`).
    pub name: String,
    /// The series/sketch judged.
    pub subject: String,
    /// The observed statistic.
    pub observed: f64,
    /// Human-readable bound description.
    pub bound: String,
    /// Verdict.
    pub status: SloStatus,
}

/// Every drift check from one evaluation, plus the worst verdict.
#[derive(Debug, Clone)]
pub struct QualityDriftReport {
    /// Clock reading of the evaluated summary.
    pub at_ns: u64,
    /// One entry per band, baseline order.
    pub checks: Vec<DriftCheck>,
    /// Worst verdict across checks.
    pub status: SloStatus,
}

impl QualityDriftReport {
    /// True when any check is critical — the `--fail-on-drift` signal.
    pub fn has_hard_violation(&self) -> bool {
        self.status == SloStatus::Critical
    }

    /// JSON object form, field order fixed.
    pub fn to_value(&self) -> Value {
        let checks: Vec<Value> = self
            .checks
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("subject".to_string(), Value::Str(c.subject.clone())),
                    ("observed".to_string(), Value::Float(c.observed)),
                    ("bound".to_string(), Value::Str(c.bound.clone())),
                    (
                        "status".to_string(),
                        Value::Str(status_name(c.status).to_string()),
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("at_ns".to_string(), Value::UInt(self.at_ns)),
            (
                "status".to_string(),
                Value::Str(status_name(self.status).to_string()),
            ),
            ("checks".to_string(), Value::Seq(checks)),
        ])
    }
}

/// Baseline + latched worst status, mirroring
/// [`SloTracker`](crate::SloTracker): a drift that fired mid-run stays
/// visible in the end-of-run report.
pub struct QualityTracker {
    baseline: QualityBaseline,
    latched: Mutex<SloStatus>,
}

impl QualityTracker {
    /// A tracker judging against `baseline`.
    pub fn new(baseline: QualityBaseline) -> Self {
        Self {
            baseline,
            latched: Mutex::new(SloStatus::Ok),
        }
    }

    /// The baseline judged against.
    pub fn baseline(&self) -> &QualityBaseline {
        &self.baseline
    }

    /// Evaluate a summary and fold the verdict into the latch.
    pub fn evaluate(&self, summary: &QualitySummary) -> QualityDriftReport {
        let report = self.baseline.evaluate(summary);
        let mut latched = self.latched.lock();
        *latched = (*latched).max(report.status);
        report
    }

    /// The worst verdict any evaluation has seen since the last reset.
    pub fn latched(&self) -> SloStatus {
        *self.latched.lock()
    }

    /// Clear the latch back to `Ok`. Part of the
    /// [`Registry::reset`](crate::Registry::reset) contract.
    pub fn reset(&self) {
        *self.latched.lock() = SloStatus::Ok;
    }
}

/// Summary + optional drift verdict, rendered as JSON or markdown —
/// the payload of `litsearch quality --report` and the `--quality`
/// load reports.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// The run-level aggregates.
    pub summary: QualitySummary,
    /// Drift verdict, when a baseline was supplied.
    pub drift: Option<QualityDriftReport>,
}

impl QualityReport {
    /// JSON object form, field order fixed.
    pub fn to_value(&self) -> Value {
        let s = &self.summary;
        let overlaps: Vec<Value> = s.overlaps.iter().map(series_mean_value).collect();
        let margins: Vec<Value> = s.margins.iter().map(series_mean_value).collect();
        let functions: Vec<Value> = s
            .functions
            .iter()
            .map(|f| {
                Value::Map(vec![
                    ("series".to_string(), Value::Str(f.series.clone())),
                    ("count".to_string(), Value::UInt(f.count)),
                    ("mean".to_string(), Value::Float(f.mean)),
                    ("min".to_string(), Value::Float(f.min)),
                    ("max".to_string(), Value::Float(f.max)),
                    ("p10".to_string(), Value::Float(f.p10)),
                    ("p50".to_string(), Value::Float(f.p50)),
                    ("p90".to_string(), Value::Float(f.p90)),
                    (
                        "separability_sd".to_string(),
                        Value::Float(f.separability_sd),
                    ),
                    (
                        "bins".to_string(),
                        Value::Seq(f.bins.iter().map(|&b| Value::UInt(b)).collect()),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("at_ns".to_string(), Value::UInt(s.at_ns)),
            ("sampled".to_string(), Value::UInt(s.sampled)),
            ("dropped".to_string(), Value::UInt(s.dropped)),
            (
                "agreement_count".to_string(),
                Value::UInt(s.agreement_count),
            ),
            ("agreement_rate".to_string(), Value::Float(s.agreement_rate)),
            ("overlaps".to_string(), Value::Seq(overlaps)),
            ("margins".to_string(), Value::Seq(margins)),
            ("functions".to_string(), Value::Seq(functions)),
        ];
        if let Some(drift) = &self.drift {
            fields.push(("drift".to_string(), drift.to_value()));
        }
        Value::Map(fields)
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("quality report serializes")
    }

    /// Markdown report: sampling, overlap/margin tables, per-function
    /// score digests, and the drift verdict table.
    pub fn to_markdown(&self) -> String {
        let s = &self.summary;
        let mut out = String::from("# Ranking-quality report\n\n");
        out.push_str(&format!(
            "sampled: {} shadow-scored queries ({} dropped)\n\n",
            s.sampled, s.dropped
        ));
        out.push_str(&format!(
            "winning-context agreement: **{:.1}%** over {} queries\n\n",
            100.0 * s.agreement_rate,
            s.agreement_count
        ));
        out.push_str(
            "## Pairwise top-k% overlap\n\n| pair | queries | mean overlap |\n|---|---:|---:|\n",
        );
        for o in &s.overlaps {
            out.push_str(&format!("| {} | {} | {:.4} |\n", o.series, o.count, o.mean));
        }
        out.push_str("\n## Score margins (top1 − top2)\n\n| function | queries | mean margin |\n|---|---:|---:|\n");
        for m in &s.margins {
            out.push_str(&format!("| {} | {} | {:.4} |\n", m.series, m.count, m.mean));
        }
        out.push_str("\n## Score distributions\n\n| function | scores | mean | p10 | p50 | p90 | separability SD |\n|---|---:|---:|---:|---:|---:|---:|\n");
        for f in &s.functions {
            out.push_str(&format!(
                "| {} | {} | {:.4} | {:.3} | {:.3} | {:.3} | {:.2} |\n",
                f.series, f.count, f.mean, f.p10, f.p50, f.p90, f.separability_sd
            ));
        }
        if let Some(drift) = &self.drift {
            out.push_str(&format!(
                "\n## Drift vs baseline\n\nverdict: **{}**\n\n| check | subject | observed | bound | status |\n|---|---|---:|---|---|\n",
                status_name(drift.status)
            ));
            for c in &drift.checks {
                out.push_str(&format!(
                    "| {} | {} | {:.4} | {} | {} |\n",
                    c.name,
                    c.subject,
                    c.observed,
                    c.bound,
                    status_name(c.status)
                ));
            }
        }
        out
    }
}

fn series_mean_value(m: &SeriesMean) -> Value {
    Value::Map(vec![
        ("series".to_string(), Value::Str(m.series.clone())),
        ("count".to_string(), Value::UInt(m.count)),
        ("mean".to_string(), Value::Float(m.mean)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::rolling::{RollingConfig, SECOND_NS};

    fn recorder(shards: usize) -> Arc<RollingRecorder> {
        Arc::new(RollingRecorder::new(
            RollingConfig {
                bucket_secs: 1,
                window_secs: 120,
                shards,
            },
            Arc::new(ManualClock::new(0)) as Arc<dyn Clock>,
        ))
    }

    fn event(shard: usize, ts_ns: u64, agree: bool, overlap: f64) -> QualityEvent {
        QualityEvent {
            shard,
            ts_ns,
            overlaps: vec![
                ("citation", "text", overlap),
                ("citation", "pattern", 0.5),
                ("text", "pattern", 0.75),
            ],
            agreement: Some(agree),
            margins: vec![("citation", 0.2), ("text", 0.1), ("pattern", 0.3)],
            scores: vec![
                ("citation", vec![0.05, 0.95]),
                ("text", vec![0.25, 0.75]),
                ("pattern", vec![0.45, 0.55]),
            ],
        }
    }

    #[test]
    fn aggregator_feeds_rolling_series_and_summary() {
        let rec = recorder(2);
        let agg = QualityAggregator::new(Arc::clone(&rec), 10);
        for i in 0..10u64 {
            agg.record(&event((i % 2) as usize, i * SECOND_NS, i % 5 != 0, 0.6));
        }
        let stats = rec
            .window_at(OVERLAP_CITATION_TEXT, 60, 10 * SECOND_NS)
            .expect("overlap series recorded");
        assert_eq!(stats.count, 10);
        let agreement = rec
            .window_at(AGREEMENT, 60, 10 * SECOND_NS)
            .expect("agreement series recorded");
        assert_eq!(agreement.errors, 2, "disagreements carried as errors");

        let summary = agg.summary_at(10 * SECOND_NS);
        assert_eq!(summary.sampled, 10);
        assert_eq!(summary.agreement_count, 10);
        assert!((summary.agreement_rate - 0.8).abs() < 1e-12);
        assert_eq!(summary.overlaps.len(), 3);
        assert!((summary.overlap(OVERLAP_CITATION_TEXT).unwrap().mean - 0.6).abs() < 1e-9);
        let citation = summary.function(SEPARABILITY_CITATION).unwrap();
        assert_eq!(citation.count, 20);
        assert!(citation.separability_sd > 0.0);
    }

    #[test]
    fn summary_is_arrival_order_independent() {
        let events: Vec<QualityEvent> = (0..20u64)
            .map(|i| {
                event(
                    (i % 4) as usize,
                    i * SECOND_NS,
                    i % 3 == 0,
                    (i % 10) as f64 / 10.0,
                )
            })
            .collect();
        let rec_a = recorder(4);
        let agg_a = QualityAggregator::new(rec_a, 10);
        for e in &events {
            agg_a.record(e);
        }
        let rec_b = recorder(4);
        let agg_b = QualityAggregator::new(rec_b, 10);
        for e in events.iter().rev() {
            agg_b.record(e);
        }
        let (a, b) = (agg_a.summary_at(0), agg_b.summary_at(0));
        // Byte-stable: the rendered reports agree exactly.
        let ra = QualityReport {
            summary: a,
            drift: None,
        };
        let rb = QualityReport {
            summary: b,
            drift: None,
        };
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    fn sketch_quantiles_come_from_bins() {
        let mut sk = ScoreSketch::new(10);
        for i in 0..100 {
            sk.push(i as f64 / 100.0);
        }
        assert_eq!(sk.count(), 100);
        assert!((sk.quantile(0.5) - 0.45).abs() < 1e-12, "bin midpoint");
        assert!((sk.quantile(0.0) - 0.05).abs() < 1e-12);
        assert!((sk.quantile(1.0) - 0.95).abs() < 1e-12);
        assert!(sk.separability_sd() < 1e-9, "uniform scores separate");
    }

    #[test]
    fn baseline_round_trips_and_judges_itself_ok() {
        let rec = recorder(1);
        let agg = QualityAggregator::new(rec, 10);
        for i in 0..10u64 {
            agg.record(&event(0, i * SECOND_NS, true, 0.6));
        }
        let summary = agg.summary_at(0);
        let baseline = QualityBaseline::from_summary(&summary, 10, &BaselineTolerances::default());
        let parsed = QualityBaseline::from_json(&baseline.to_json()).unwrap();
        assert_eq!(parsed.series.len(), all_series().len());
        let report = parsed.evaluate(&summary);
        assert_eq!(report.status, SloStatus::Ok, "healthy run judges ok");
        assert!(!report.has_hard_violation());
    }

    #[test]
    fn drift_fires_on_overlap_collapse_and_latches() {
        let rec = recorder(1);
        let agg = QualityAggregator::new(Arc::clone(&rec), 10);
        for i in 0..10u64 {
            agg.record(&event(0, i * SECOND_NS, true, 0.5));
        }
        let healthy = agg.summary_at(0);
        let baseline = QualityBaseline::from_summary(&healthy, 10, &BaselineTolerances::default());
        let tracker = QualityTracker::new(baseline);
        assert_eq!(tracker.evaluate(&healthy).status, SloStatus::Ok);

        // A second run where the functions collapse into one ranking:
        // overlap 1.0 blows past max_critical = 0.7.
        let rec2 = recorder(1);
        let agg2 = QualityAggregator::new(rec2, 10);
        for i in 0..10u64 {
            agg2.record(&event(0, i * SECOND_NS, true, 1.0));
        }
        let drifted = tracker.evaluate(&agg2.summary_at(0));
        assert_eq!(drifted.status, SloStatus::Critical);
        assert!(drifted.has_hard_violation());
        assert!(drifted
            .checks
            .iter()
            .any(|c| c.name == "overlap-band" && c.status == SloStatus::Critical));
        assert_eq!(tracker.latched(), SloStatus::Critical, "latch keeps worst");
        tracker.reset();
        assert_eq!(tracker.latched(), SloStatus::Ok);
    }

    #[test]
    fn missing_series_is_a_hard_violation() {
        let rec = recorder(1);
        let agg = QualityAggregator::new(rec, 10);
        for i in 0..10u64 {
            agg.record(&event(0, i * SECOND_NS, true, 0.5));
        }
        let healthy = agg.summary_at(0);
        let baseline = QualityBaseline::from_summary(&healthy, 10, &BaselineTolerances::default());
        // A summary that stopped carrying the citation sketch entirely.
        let mut gutted = healthy.clone();
        gutted
            .functions
            .retain(|f| f.series != SEPARABILITY_CITATION);
        let report = baseline.evaluate(&gutted);
        assert_eq!(report.status, SloStatus::Critical);
        assert!(report
            .checks
            .iter()
            .any(|c| c.name.ends_with("-missing") && c.subject == SEPARABILITY_CITATION));
    }

    #[test]
    fn too_few_samples_is_a_lone_warn() {
        let rec = recorder(1);
        let agg = QualityAggregator::new(rec, 10);
        agg.record(&event(0, 0, true, 0.5));
        let summary = agg.summary_at(0);
        let mut baseline =
            QualityBaseline::from_summary(&summary, 10, &BaselineTolerances::default());
        baseline.min_sampled = 100;
        let report = baseline.evaluate(&summary);
        assert_eq!(report.status, SloStatus::Warn);
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].name, "sample-size");
    }

    #[test]
    fn reset_clears_aggregated_state() {
        let rec = recorder(1);
        let agg = QualityAggregator::new(rec, 10);
        agg.record(&event(0, 0, true, 0.5));
        agg.add_dropped(3);
        assert_eq!(agg.events(), 1);
        agg.reset();
        let summary = agg.summary_at(0);
        assert_eq!(summary.sampled, 0);
        assert_eq!(summary.dropped, 0);
        assert!(summary.overlaps.is_empty());
        assert!(summary.functions.is_empty());
    }

    #[test]
    fn bad_baseline_documents_are_rejected() {
        assert!(QualityBaseline::from_json("{").is_err());
        let rec = recorder(1);
        let agg = QualityAggregator::new(rec, 10);
        let baseline =
            QualityBaseline::from_summary(&agg.summary_at(0), 10, &BaselineTolerances::default());
        let mut wrong_magic = baseline.clone();
        wrong_magic.magic = "something-else".to_string();
        assert!(QualityBaseline::from_json(&wrong_magic.to_json())
            .unwrap_err()
            .contains("magic"));
        let mut wrong_version = baseline;
        wrong_version.version = 99;
        assert!(QualityBaseline::from_json(&wrong_version.to_json())
            .unwrap_err()
            .contains("version"));
    }
}
