//! Log-scale latency histogram.
//!
//! Values (nanoseconds, but any `u64` works) are bucketed on a
//! log₂ scale with 8 sub-buckets per octave, giving a worst-case
//! relative error of about 6% on extracted quantiles while keeping the
//! bucket table small (≤ 496 slots) and insertion O(1) with no
//! allocation after the first touch of a bucket range.

/// Values below this are stored exactly (one bucket per value).
const EXACT_LIMIT: u64 = 16;
/// Sub-buckets per power of two above [`EXACT_LIMIT`].
const SUBBUCKETS: usize = 8;

/// Bucket index for a value.
fn bucket_of(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 4
    let sub = ((v >> (octave - 3)) & 7) as usize; // top 3 bits after the leading 1
    EXACT_LIMIT as usize + (octave - 4) * SUBBUCKETS + sub
}

/// Inclusive lower bound of a bucket.
fn lower_bound(idx: usize) -> u64 {
    if idx < EXACT_LIMIT as usize {
        return idx as u64;
    }
    let rel = idx - EXACT_LIMIT as usize;
    let octave = 4 + rel / SUBBUCKETS;
    let sub = (rel % SUBBUCKETS) as u64;
    (8 + sub) << (octave - 3)
}

/// A fixed-resolution log-scale histogram with exact count/sum/min/max.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q`: the representative value of the bucket
    /// containing the `ceil(q·count)`-th smallest sample, clamped to
    /// the observed min/max so q=0/q=1 are exact. Out-of-range inputs
    /// clamp rather than misbehave: `q ≤ 0` (and NaN) → min, `q ≥ 1` →
    /// max, empty histogram → 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q.is_nan() || q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let lo = lower_bound(idx);
                let hi = lower_bound(idx + 1);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Approximate number of recorded values strictly greater than
    /// `v`, at bucket resolution: whole buckets above `v`'s bucket
    /// count fully, and `v`'s own bucket counts when `v` lies below
    /// its midpoint (the same representative [`quantile`](Self::quantile)
    /// uses). Exact at the extremes: `v < min` returns `count`,
    /// `v >= max` returns 0; elsewhere the relative error matches the
    /// bucket width (~6%).
    pub fn count_over(&self, v: u64) -> u64 {
        if self.count == 0 || v >= self.max {
            return 0;
        }
        if v < self.min {
            return self.count;
        }
        let b = bucket_of(v);
        let mut over = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate().skip(b) {
            if c == 0 {
                continue;
            }
            if idx > b {
                over += c;
            } else {
                let lo = lower_bound(idx);
                let hi = lower_bound(idx + 1);
                let mid = lo + (hi - lo) / 2;
                if v < mid {
                    over += c;
                }
            }
        }
        over
    }

    /// Merge another histogram into this one. `min`/`max` stay exact:
    /// an empty side contributes nothing (its zeroed extremes are never
    /// mixed in), and two non-empty sides take the true elementwise
    /// extremes.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for v in 1..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at {v}: {prev} -> {b}");
            assert!(lower_bound(b) <= v && v < lower_bound(b + 1), "v={v} b={b}");
            prev = b;
        }
    }

    #[test]
    fn quantiles_bounded_by_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 5000u64), (0.95, 9500), (0.99, 9900)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(err < 0.07, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.quantile(-1.0), 10);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 30);
        assert_eq!(h.quantile(2.0), 30);
        assert_eq!(h.quantile(f64::NAN), 10);
        assert_eq!(h.quantile(f64::INFINITY), 30);
        assert_eq!(h.quantile(f64::NEG_INFINITY), 10);
        // Empty histogram: every quantile is 0, no panic.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0);
        }
    }

    #[test]
    fn merge_preserves_exact_min_max() {
        let mut a = Histogram::new();
        for v in [500u64, 900] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [3u64, 1_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!((a.min(), a.max(), a.count()), (3, 1_000_000, 4));

        // Merging an empty histogram must not drag min toward 0.
        let before = (a.min(), a.max(), a.count());
        a.merge(&Histogram::new());
        assert_eq!((a.min(), a.max(), a.count()), before);

        // Merging into an empty histogram adopts the source exactly.
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!((empty.min(), empty.max(), empty.count()), before);
        assert_eq!(empty.sum(), a.sum());
    }

    #[test]
    fn count_over_is_exact_in_the_exact_range_and_clamped_outside() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v); // one bucket per value below EXACT_LIMIT
        }
        assert_eq!(h.count_over(0), 15);
        assert_eq!(h.count_over(7), 8);
        assert_eq!(h.count_over(15), 0, "v >= max is exactly zero");
        assert_eq!(h.count_over(100), 0);
        assert_eq!(Histogram::new().count_over(5), 0, "empty histogram");

        // Log-range: bounded relative error against the exact count.
        let mut big = Histogram::new();
        for v in 1..=10_000u64 {
            big.record(v);
        }
        for &threshold in &[100u64, 1_000, 5_000, 9_000] {
            let exact = 10_000 - threshold;
            let got = big.count_over(threshold);
            let err = (got as f64 - exact as f64).abs() / 10_000.0;
            assert!(
                err < 0.07,
                "threshold {threshold}: got {got}, exact {exact}"
            );
        }
        assert_eq!(big.count_over(0), 10_000, "below min counts everything");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 16.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
    }
}
