//! Sharded, time-bucketed rolling aggregation: "what are p99 and QPS
//! *right now*", not "what were they over the whole run".
//!
//! The metrics [`Registry`](crate::Registry) accumulates forever — the
//! right shape for end-of-run reports, the wrong one for live serving,
//! where a latency spike five minutes ago must not haunt the current
//! p99. A [`RollingRecorder`] instead buckets observations into
//! fixed-width time buckets (1 s by default) held in a ring whose
//! extent is the configured window; reading merges only the buckets
//! inside the requested window, so expired data vanishes without any
//! background sweeper.
//!
//! Design notes:
//!
//! - **Sharded**: observations land in one of N shards (picked by a
//!   dense per-thread number, or explicitly by the deterministic load
//!   generator), each behind its own short-critical-section mutex, so
//!   concurrent serving threads rarely contend. Reads merge shards;
//!   [`Histogram::merge`] and counter addition are commutative, so the
//!   merged result is independent of shard assignment.
//! - **Injectable time**: every timestamp comes from a [`Clock`] or is
//!   passed explicitly ([`RollingRecorder::record_at`]). Under a
//!   [`ManualClock`](crate::ManualClock) the entire window content is
//!   a pure function of the recorded (timestamp, value) pairs —
//!   bit-identical across runs and thread interleavings.
//! - **Clamped**: a shard never moves backwards in time. If a
//!   timestamp regresses (NTP-style clock trouble, or interleaved
//!   virtual times sharing a shard), the observation is recorded into
//!   the shard's latest bucket instead of resurrecting an old one.
//! - **Lazy expiry**: a ring slot is reset the moment a write lands in
//!   a newer epoch for that slot, and reads filter buckets by epoch —
//!   a series idle for longer than the window reports empty without
//!   anyone sweeping it.

use crate::clock::Clock;
use crate::histogram::Histogram;
use parking_lot::Mutex;
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Nanoseconds per second, the unit bridge used throughout.
pub const SECOND_NS: u64 = 1_000_000_000;

/// Epoch marker for a never-written ring slot.
const EMPTY_EPOCH: u64 = u64::MAX;

/// Shape of a [`RollingRecorder`].
#[derive(Debug, Clone)]
pub struct RollingConfig {
    /// Width of one time bucket, seconds (>= 1).
    pub bucket_secs: u64,
    /// Ring extent, seconds: the largest window a read can ask for.
    pub window_secs: u64,
    /// Number of shards (>= 1). More shards, less write contention.
    pub shards: usize,
}

impl Default for RollingConfig {
    fn default() -> Self {
        Self {
            bucket_secs: 1,
            window_secs: 60,
            shards: 8,
        }
    }
}

/// One time bucket of one series in one shard.
#[derive(Debug)]
struct Bucket {
    /// Which absolute bucket epoch this slot currently holds.
    epoch: u64,
    count: u64,
    errors: u64,
    hist: Histogram,
}

impl Bucket {
    fn empty() -> Self {
        Self {
            epoch: EMPTY_EPOCH,
            count: 0,
            errors: 0,
            hist: Histogram::new(),
        }
    }

    fn reset_to(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.errors = 0;
        self.hist = Histogram::new();
    }
}

/// Per-shard state: ring buffers per series name, plus the clamp floor.
#[derive(Debug, Default)]
struct ShardState {
    series: BTreeMap<String, Vec<Bucket>>,
    /// Latest epoch this shard has written; timestamps that regress
    /// below it are clamped up to it.
    last_epoch: u64,
}

/// Windowed aggregate of one series, read at one instant.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Series name (span names reuse the `stage.substage` convention).
    pub name: String,
    /// The window this was computed over, seconds.
    pub window_secs: u64,
    /// Observations inside the window.
    pub count: u64,
    /// Observations flagged as errors.
    pub errors: u64,
    /// `count / window_secs`.
    pub qps: f64,
    /// `errors / count` (0 when the window is empty).
    pub error_rate: f64,
    /// Windowed latency percentiles, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Smallest observation in the window.
    pub min_ns: u64,
    /// Largest observation in the window.
    pub max_ns: u64,
    /// Mean observation, nanoseconds.
    pub mean_ns: f64,
    /// The merged distribution itself — the SLO evaluator counts
    /// over-threshold observations from it.
    pub histogram: Histogram,
}

impl WindowStats {
    fn from_merged(name: &str, window_secs: u64, count: u64, errors: u64, hist: Histogram) -> Self {
        Self {
            name: name.to_string(),
            window_secs,
            count,
            errors,
            qps: count as f64 / window_secs.max(1) as f64,
            error_rate: if count == 0 {
                0.0
            } else {
                errors as f64 / count as f64
            },
            p50_ns: hist.quantile(0.50),
            p95_ns: hist.quantile(0.95),
            p99_ns: hist.quantile(0.99),
            min_ns: hist.min(),
            max_ns: hist.max(),
            mean_ns: hist.mean(),
            histogram: hist,
        }
    }

    /// JSON object form (field order fixed; the histogram itself is
    /// summarized by the percentile fields, not serialized).
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("window_secs".to_string(), Value::UInt(self.window_secs)),
            ("count".to_string(), Value::UInt(self.count)),
            ("errors".to_string(), Value::UInt(self.errors)),
            ("qps".to_string(), Value::Float(self.qps)),
            ("error_rate".to_string(), Value::Float(self.error_rate)),
            ("p50_ns".to_string(), Value::UInt(self.p50_ns)),
            ("p95_ns".to_string(), Value::UInt(self.p95_ns)),
            ("p99_ns".to_string(), Value::UInt(self.p99_ns)),
            ("min_ns".to_string(), Value::UInt(self.min_ns)),
            ("max_ns".to_string(), Value::UInt(self.max_ns)),
            ("mean_ns".to_string(), Value::Float(self.mean_ns)),
        ])
    }
}

/// The sharded time-bucketed recorder. See the module docs.
pub struct RollingRecorder {
    bucket_ns: u64,
    n_buckets: usize,
    window_secs: u64,
    shards: Vec<Mutex<ShardState>>,
    clock: Arc<dyn Clock>,
}

impl RollingRecorder {
    /// A recorder with `config`'s shape reading time from `clock`.
    pub fn new(config: RollingConfig, clock: Arc<dyn Clock>) -> Self {
        let bucket_secs = config.bucket_secs.max(1);
        let window_secs = config.window_secs.max(bucket_secs);
        let n_buckets = (window_secs.div_ceil(bucket_secs)) as usize;
        Self {
            bucket_ns: bucket_secs * SECOND_NS,
            n_buckets,
            window_secs,
            shards: (0..config.shards.max(1))
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            clock,
        }
    }

    /// The ring extent, seconds — the largest answerable window.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The recorder's clock (callers use it to timestamp "now" reads).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Record one observation at the clock's current time, sharded by
    /// the calling thread.
    pub fn record(&self, name: &str, value_ns: u64, error: bool) {
        let shard = (crate::trace::current_tid() as usize) % self.shards.len();
        self.record_at(shard, name, self.clock.now_ns(), value_ns, error);
    }

    /// Record one observation with an explicit shard and timestamp —
    /// the deterministic path: a load-generator worker that owns its
    /// shard and feeds monotonic virtual timestamps gets bit-identical
    /// windows on every run, regardless of thread scheduling.
    pub fn record_at(&self, shard: usize, name: &str, ts_ns: u64, value_ns: u64, error: bool) {
        let shard = &self.shards[shard % self.shards.len()];
        let mut state = shard.lock();
        // Clamp: a shard never travels back in time (see module docs).
        let epoch = (ts_ns / self.bucket_ns).max(state.last_epoch);
        state.last_epoch = epoch;
        let n_buckets = self.n_buckets;
        let ring = state
            .series
            .entry(name.to_string())
            .or_insert_with(|| (0..n_buckets).map(|_| Bucket::empty()).collect());
        let slot = &mut ring[(epoch % n_buckets as u64) as usize];
        if slot.epoch != epoch {
            slot.reset_to(epoch);
        }
        slot.count += 1;
        if error {
            slot.errors += 1;
        }
        slot.hist.record(value_ns);
    }

    /// Every series name seen so far, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names = BTreeSet::new();
        for shard in &self.shards {
            for name in shard.lock().series.keys() {
                names.insert(name.clone());
            }
        }
        names.into_iter().collect()
    }

    /// Windowed stats for one series over the trailing `window_secs`
    /// ending at `at_ns` (inclusive of the bucket containing `at_ns`).
    /// Returns `None` for a never-recorded series; an idle-but-known
    /// series reports zeros. Windows longer than the ring extent are
    /// clamped to it.
    pub fn window_at(&self, name: &str, window_secs: u64, at_ns: u64) -> Option<WindowStats> {
        let window_secs = window_secs.clamp(1, self.window_secs);
        let at_epoch = at_ns / self.bucket_ns;
        let span = (window_secs * SECOND_NS).div_ceil(self.bucket_ns);
        let first_epoch = (at_epoch + 1).saturating_sub(span);
        let mut seen = false;
        let mut count = 0u64;
        let mut errors = 0u64;
        let mut hist = Histogram::new();
        for shard in &self.shards {
            let state = shard.lock();
            let Some(ring) = state.series.get(name) else {
                continue;
            };
            seen = true;
            for bucket in ring {
                if bucket.epoch == EMPTY_EPOCH
                    || bucket.epoch < first_epoch
                    || bucket.epoch > at_epoch
                {
                    continue;
                }
                count += bucket.count;
                errors += bucket.errors;
                hist.merge(&bucket.hist);
            }
        }
        seen.then(|| WindowStats::from_merged(name, window_secs, count, errors, hist))
    }

    /// [`window_at`](Self::window_at) read at the clock's current time.
    pub fn window(&self, name: &str, window_secs: u64) -> Option<WindowStats> {
        self.window_at(name, window_secs, self.clock.now_ns())
    }

    /// Windowed stats for every known series at `at_ns`, sorted by
    /// name — the dashboard's one-call data source.
    pub fn snapshot_at(&self, window_secs: u64, at_ns: u64) -> Vec<WindowStats> {
        self.names()
            .iter()
            .filter_map(|name| self.window_at(name, window_secs, at_ns))
            .collect()
    }

    /// [`snapshot_at`](Self::snapshot_at) at the clock's current time.
    pub fn snapshot(&self, window_secs: u64) -> Vec<WindowStats> {
        self.snapshot_at(window_secs, self.clock.now_ns())
    }

    /// Drop every bucket of every series (the series names are dropped
    /// too). Part of the [`Registry::reset`](crate::Registry::reset)
    /// contract.
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut state = shard.lock();
            state.series.clear();
            state.last_epoch = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn recorder(window_secs: u64, shards: usize) -> (Arc<ManualClock>, RollingRecorder) {
        let clock = Arc::new(ManualClock::new(0));
        let rec = RollingRecorder::new(
            RollingConfig {
                bucket_secs: 1,
                window_secs,
                shards,
            },
            clock.clone() as Arc<dyn Clock>,
        );
        (clock, rec)
    }

    #[test]
    fn empty_series_is_none_and_unknown_window_clamps() {
        let (_, rec) = recorder(10, 2);
        assert!(rec.window("nope", 5).is_none());
        rec.record_at(0, "a", 0, 10, false);
        let w = rec.window_at("a", 10_000, 0).expect("series exists");
        assert_eq!(w.window_secs, 10, "window clamps to the ring extent");
    }

    #[test]
    fn counts_qps_and_error_rate() {
        let (clock, rec) = recorder(10, 1);
        for i in 0..20u64 {
            clock.set_ns(i * SECOND_NS / 4); // 4 per second, 5 seconds
            rec.record("q", 100 + i, i % 5 == 0);
        }
        let w = rec.window_at("q", 5, 4 * SECOND_NS).expect("recorded");
        assert_eq!(w.count, 20);
        assert_eq!(w.errors, 4);
        assert!((w.qps - 4.0).abs() < 1e-12);
        assert!((w.error_rate - 0.2).abs() < 1e-12);
        assert_eq!(w.min_ns, 100);
        assert_eq!(w.max_ns, 119);
    }

    #[test]
    fn old_buckets_fall_out_of_the_window() {
        let (_, rec) = recorder(60, 1);
        rec.record_at(0, "q", 0, 5, false); // t = 0 s
        rec.record_at(0, "q", 30 * SECOND_NS, 7, false); // t = 30 s
        let at = 35 * SECOND_NS;
        assert_eq!(rec.window_at("q", 10, at).unwrap().count, 1);
        assert_eq!(rec.window_at("q", 60, at).unwrap().count, 2);
    }

    #[test]
    fn merged_windows_are_shard_assignment_independent() {
        let (_, a) = recorder(30, 1);
        let (_, b) = recorder(30, 4);
        for i in 0..100u64 {
            let ts = (i % 20) * SECOND_NS;
            a.record_at(0, "q", ts, i * 1000, i % 7 == 0);
            b.record_at((i % 4) as usize, "q", ts, i * 1000, i % 7 == 0);
        }
        let wa = a.window_at("q", 30, 20 * SECOND_NS).unwrap();
        let wb = b.window_at("q", 30, 20 * SECOND_NS).unwrap();
        assert_eq!(
            (wa.count, wa.errors, wa.p50_ns, wa.p95_ns, wa.p99_ns),
            (wb.count, wb.errors, wb.p50_ns, wb.p95_ns, wb.p99_ns),
        );
    }

    #[test]
    fn reset_empties_everything() {
        let (_, rec) = recorder(10, 3);
        rec.record_at(1, "q", SECOND_NS, 5, false);
        assert_eq!(rec.names(), vec!["q".to_string()]);
        rec.reset();
        assert!(rec.names().is_empty());
        assert!(rec.window_at("q", 10, SECOND_NS).is_none());
    }
}
