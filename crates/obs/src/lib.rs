//! Lightweight telemetry for the literature-search pipeline.
//!
//! One process-global [`Registry`] collects three kinds of metrics:
//!
//! - **counters** — monotonic totals (`counter("engine.queries", 1)`),
//! - **gauges** — last-write-wins values (`gauge("corpus.papers", n)`),
//! - **histograms** — log-scale latency distributions with p50/p95/p99
//!   extraction (`observe_ns("search.query_ns", ns)`),
//!
//! plus RAII **spans** ([`span`]) that time a scope, nest to attribute
//! self-time vs. child-time, and feed a per-span duration histogram.
//! Span names follow a `stage.substage` dotted convention, e.g.
//! `engine.search` with children `search.select_contexts`,
//! `search.candidates`, `search.rank`.
//!
//! Collection is **off by default**: every hook checks one relaxed
//! atomic load and bails, so instrumented hot paths cost ~1 ns per call
//! site when telemetry is disabled. Call [`enable`] (the CLI and bench
//! binaries do this when metrics output is requested), then [`snapshot`]
//! to export a [`MetricsSnapshot`] as JSON or markdown.
//!
//! The [`trace`] module adds the orthogonal per-request view: when a
//! trace is active ([`trace_start`]), every [`span`] additionally emits
//! individual begin/end events into a bounded sink, and instrumented
//! code can attach typed attributes with [`trace_instant`] — exported
//! as JSONL or Chrome trace format (see [`TraceData`]).
//!
//! The live-serving layer builds on both: [`rolling`] turns span
//! durations into windowed p50/p95/p99/QPS/error-rate ("right now",
//! not "whole run") once a [`RollingRecorder`] is attached with
//! [`attach_rolling`]; [`slo`] evaluates burn rates against declared
//! objectives; [`slowlog`] keeps the slowest queries with their
//! captured explain traces. All of it reads time through the
//! injectable [`Clock`] in [`clock`], so windowed output is
//! deterministic under a [`ManualClock`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub mod clock;
mod histogram;
pub mod quality;
pub mod rolling;
pub mod slo;
pub mod slowlog;
mod snapshot;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::Histogram;
pub use quality::{
    BaselineTolerances, DriftCheck, FunctionScores, QualityAggregator, QualityBaseline,
    QualityDriftReport, QualityEvent, QualityReport, QualitySummary, QualityTracker, ScoreSketch,
    SeriesMean,
};
pub use rolling::{RollingConfig, RollingRecorder, WindowStats, SECOND_NS};
pub use slo::{
    default_burn_windows, BurnWindow, SloEval, SloKind, SloReport, SloSpec, SloStatus, SloTracker,
    WindowBurn,
};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use snapshot::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot,
};
pub use trace::{
    AttrValue, SummaryNode, TraceData, TraceEvent, TraceId, TracePhase, TraceSummary, Tracer,
};

/// Aggregated timing state for one span name.
#[derive(Debug, Default)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    durations: Histogram,
}

/// A thread-safe metrics registry. Most code uses the process-global
/// one through the free functions in this crate; independent registries
/// exist for tests.
///
/// # Reset contract
///
/// [`reset`](Self::reset) drops every recorded datum — counters,
/// gauges, histograms, span stats — **and** clears the live-serving
/// attachments' state: an attached [`RollingRecorder`]'s windows are
/// emptied, an attached [`SloTracker`]'s latched worst status returns
/// to `Ok`, an attached [`SlowQueryLog`] is cleared, an attached
/// [`QualityAggregator`]'s run accumulators and sketches are dropped,
/// and an attached [`QualityTracker`]'s latched drift verdict returns
/// to `Ok`. The attachments themselves stay attached and the enabled
/// flag is unchanged, so a reset registry keeps feeding the same
/// windows. A reset registry therefore reports empty windows until new
/// observations arrive.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    /// Fast-path flag mirroring `rolling.is_some()`: span drops check
    /// one relaxed load before touching the attachment mutex.
    rolling_on: AtomicBool,
    rolling: Mutex<Option<Arc<RollingRecorder>>>,
    slo: Mutex<Option<Arc<SloTracker>>>,
    slowlog: Mutex<Option<Arc<SlowQueryLog>>>,
    quality: Mutex<Option<Arc<QualityAggregator>>>,
    quality_tracker: Mutex<Option<Arc<QualityTracker>>>,
}

impl Registry {
    /// New registry, disabled.
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            rolling_on: AtomicBool::new(false),
            rolling: Mutex::new(None),
            slo: Mutex::new(None),
            slowlog: Mutex::new(None),
            quality: Mutex::new(None),
            quality_tracker: Mutex::new(None),
        }
    }

    /// Turn collection on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn collection off (already-recorded data is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether collection is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drop all recorded data and clear the state of every live-serving
    /// attachment (rolling windows, SLO latch, slow-query log). The
    /// attachments stay attached; the enabled flag is unchanged. See
    /// the type-level reset contract.
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
        self.spans.lock().clear();
        if let Some(rolling) = self.rolling.lock().as_ref() {
            rolling.reset();
        }
        if let Some(slo) = self.slo.lock().as_ref() {
            slo.reset();
        }
        if let Some(slowlog) = self.slowlog.lock().as_ref() {
            slowlog.clear();
        }
        if let Some(quality) = self.quality.lock().as_ref() {
            quality.reset();
        }
        if let Some(tracker) = self.quality_tracker.lock().as_ref() {
            tracker.reset();
        }
    }

    /// Attach a rolling recorder: every span recorded from now on also
    /// lands in its time-bucketed windows (series name = span name).
    pub fn attach_rolling(&self, recorder: Arc<RollingRecorder>) {
        *self.rolling.lock() = Some(recorder);
        self.rolling_on.store(true, Ordering::Relaxed);
    }

    /// Detach the rolling recorder (its data is left as-is).
    pub fn detach_rolling(&self) {
        self.rolling_on.store(false, Ordering::Relaxed);
        *self.rolling.lock() = None;
    }

    /// The attached rolling recorder, if any.
    pub fn rolling(&self) -> Option<Arc<RollingRecorder>> {
        if !self.rolling_on.load(Ordering::Relaxed) {
            return None;
        }
        self.rolling.lock().clone()
    }

    /// Attach an SLO tracker so [`reset`](Self::reset) covers its latch
    /// and dashboards can find it.
    pub fn attach_slo(&self, tracker: Arc<SloTracker>) {
        *self.slo.lock() = Some(tracker);
    }

    /// The attached SLO tracker, if any.
    pub fn slo_tracker(&self) -> Option<Arc<SloTracker>> {
        self.slo.lock().clone()
    }

    /// Attach a slow-query log so [`reset`](Self::reset) covers it and
    /// dashboards can find it.
    pub fn attach_slow_log(&self, log: Arc<SlowQueryLog>) {
        *self.slowlog.lock() = Some(log);
    }

    /// The attached slow-query log, if any.
    pub fn slow_log(&self) -> Option<Arc<SlowQueryLog>> {
        self.slowlog.lock().clone()
    }

    /// Attach a ranking-quality aggregator so [`reset`](Self::reset)
    /// covers its run accumulators and dashboards can find it.
    pub fn attach_quality(&self, aggregator: Arc<QualityAggregator>) {
        *self.quality.lock() = Some(aggregator);
    }

    /// The attached quality aggregator, if any.
    pub fn quality_aggregator(&self) -> Option<Arc<QualityAggregator>> {
        self.quality.lock().clone()
    }

    /// Attach a quality drift tracker so [`reset`](Self::reset) covers
    /// its latched verdict and gates can find it.
    pub fn attach_quality_tracker(&self, tracker: Arc<QualityTracker>) {
        *self.quality_tracker.lock() = Some(tracker);
    }

    /// The attached quality drift tracker, if any.
    pub fn quality_tracker(&self) -> Option<Arc<QualityTracker>> {
        self.quality_tracker.lock().clone()
    }

    /// Add `delta` to a monotonic counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.counters.lock();
        match map.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                map.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a gauge to `value`.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.gauges.lock();
        match map.get_mut(name) {
            Some(v) => *v = value,
            None => {
                map.insert(name.to_string(), value);
            }
        }
    }

    /// Record one observation into a log-scale histogram.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn record_span(&self, name: &str, total_ns: u64, self_ns: u64) {
        {
            let mut map = self.spans.lock();
            let stats = map.entry(name.to_string()).or_default();
            stats.count += 1;
            stats.total_ns += total_ns;
            stats.self_ns += self_ns;
            stats.durations.record(total_ns);
        }
        if let Some(rolling) = self.rolling() {
            rolling.record(name, total_ns, false);
        }
    }

    /// Export everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, &value)| CounterSnapshot {
                name: name.clone(),
                value,
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(name, &value)| GaugeSnapshot {
                name: name.clone(),
                value,
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                min: h.min(),
                max: h.max(),
                mean: h.mean(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .iter()
            .map(|(name, s)| SpanSnapshot {
                name: name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.self_ns,
                p50_ns: s.durations.quantile(0.50),
                p95_ns: s.durations.quantile(0.95),
                p99_ns: s.durations.quantile(0.99),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry the free functions below act on.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Turn on global metrics collection.
pub fn enable() {
    GLOBAL.enable();
}

/// Turn off global metrics collection (data is kept).
pub fn disable() {
    GLOBAL.disable();
}

/// Whether global collection is on.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Drop all globally recorded data.
pub fn reset() {
    GLOBAL.reset();
}

/// Add `delta` to a global monotonic counter.
#[inline]
pub fn counter(name: &str, delta: u64) {
    GLOBAL.counter(name, delta);
}

/// Set a global gauge.
#[inline]
pub fn gauge(name: &str, value: f64) {
    GLOBAL.gauge(name, value);
}

/// Record a nanosecond (or any unit) observation into a global
/// histogram.
#[inline]
pub fn observe_ns(name: &str, ns: u64) {
    GLOBAL.observe(name, ns);
}

/// Snapshot the global registry.
pub fn snapshot() -> MetricsSnapshot {
    GLOBAL.snapshot()
}

/// Attach a rolling recorder to the global registry: span durations
/// start feeding its windowed stats.
pub fn attach_rolling(recorder: Arc<RollingRecorder>) {
    GLOBAL.attach_rolling(recorder);
}

/// The global registry's rolling recorder, if attached.
pub fn rolling() -> Option<Arc<RollingRecorder>> {
    GLOBAL.rolling()
}

/// Attach an SLO tracker to the global registry.
pub fn attach_slo(tracker: Arc<SloTracker>) {
    GLOBAL.attach_slo(tracker);
}

/// The global registry's SLO tracker, if attached.
pub fn slo_tracker() -> Option<Arc<SloTracker>> {
    GLOBAL.slo_tracker()
}

/// Attach a slow-query log to the global registry.
pub fn attach_slow_log(log: Arc<SlowQueryLog>) {
    GLOBAL.attach_slow_log(log);
}

/// The global registry's slow-query log, if attached.
pub fn slow_log() -> Option<Arc<SlowQueryLog>> {
    GLOBAL.slow_log()
}

/// Attach a ranking-quality aggregator to the global registry.
pub fn attach_quality(aggregator: Arc<QualityAggregator>) {
    GLOBAL.attach_quality(aggregator);
}

/// The global registry's quality aggregator, if attached.
pub fn quality_aggregator() -> Option<Arc<QualityAggregator>> {
    GLOBAL.quality_aggregator()
}

/// Attach a quality drift tracker to the global registry.
pub fn attach_quality_tracker(tracker: Arc<QualityTracker>) {
    GLOBAL.attach_quality_tracker(tracker);
}

/// The global registry's quality drift tracker, if attached.
pub fn quality_tracker() -> Option<Arc<QualityTracker>> {
    GLOBAL.quality_tracker()
}

/// Snapshot the global registry as a JSON string (the `/metrics`
/// payload of the serving frontend; handlers call through this free
/// function so the lock-policed handler files never hold a guard).
pub fn snapshot_json() -> String {
    GLOBAL.snapshot().to_json()
}

/// The attached quality aggregator's run-level summary as JSON (the
/// `/quality` payload), or `None` when shadow sampling is off.
pub fn quality_summary_json() -> Option<String> {
    let aggregator = GLOBAL.quality_aggregator()?;
    let report = QualityReport {
        summary: aggregator.summary(),
        drift: None,
    };
    Some(report.to_json())
}

/// Snapshot the global registry and write pretty JSON to `path`,
/// creating parent directories as needed.
pub fn write_json(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, snapshot().to_json())
}

// ---------------------------------------------------------------------
// Per-request tracing (free functions over trace::global())
// ---------------------------------------------------------------------

/// Start a new per-request trace with the default event capacity;
/// returns its process-unique id. Every subsequent [`span`] emits
/// begin/end events until [`trace_finish`] is called.
pub fn trace_start() -> TraceId {
    trace::global().start(trace::DEFAULT_CAPACITY)
}

/// Start a new trace bounded to `capacity` events.
pub fn trace_start_with_capacity(capacity: usize) -> TraceId {
    trace::global().start(capacity)
}

/// Stop tracing and drain the recorded events (`None` when no trace
/// was in progress).
pub fn trace_finish() -> Option<TraceData> {
    trace::global().finish()
}

/// Whether a trace is currently collecting. Guard attribute
/// construction with this so disabled tracing costs one relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    trace::global().is_enabled()
}

/// Emit an instant event with typed attributes into the active trace
/// (no-op when tracing is off). Attribute values convert via `Into`:
/// `("rank", 3usize.into())`, `("context", name.into())`.
#[inline]
pub fn trace_instant(name: &str, attrs: Vec<(String, AttrValue)>) {
    trace::global().record(trace::TracePhase::Instant, name, attrs);
}

// Per-thread stack of child-time accumulators for open spans. Pushed on
// span start, popped on drop; the popped total flows into the parent's
// accumulator so self-time = elapsed − child time.
thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer over the global registry: records duration (and
/// parent/child attribution) for `name` when dropped, and emits
/// begin/end events into the active trace. A no-op when both metrics
/// and tracing were disabled at construction.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    /// Metrics were enabled at construction (span-stack entry pushed).
    metrics: bool,
    /// A trace begin event was emitted and awaits its end event.
    traced: bool,
}

/// Open a span named `name` (dotted `stage.substage` convention).
/// Bind the guard (`let _span = obs::span(...)`) — `let _ = ...` drops
/// it immediately and records a zero-length span.
#[must_use = "bind the guard; `let _ = obs::span(..)` drops it immediately"]
#[inline]
pub fn span(name: &'static str) -> Span {
    let metrics = enabled();
    let traced = trace_enabled();
    if !metrics && !traced {
        return Span { inner: None };
    }
    if metrics {
        SPAN_STACK.with(|s| s.borrow_mut().push(0));
    }
    if traced {
        trace::global().record(trace::TracePhase::Begin, name, Vec::new());
    }
    Span {
        inner: Some(SpanInner {
            name,
            start: Instant::now(),
            metrics,
            traced,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            if inner.traced {
                trace::global().record(trace::TracePhase::End, inner.name, Vec::new());
            }
            if !inner.metrics {
                return;
            }
            let total_ns = inner.start.elapsed().as_nanos() as u64;
            let child_ns = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let child = stack.pop().unwrap_or(0);
                if let Some(parent) = stack.last_mut() {
                    *parent += total_ns;
                }
                child
            });
            GLOBAL.record_span(inner.name, total_ns, total_ns.saturating_sub(child_ns));
        }
    }
}

/// Emit a progress line to stderr with a monotonic elapsed-time prefix.
/// Honors `OBS_QUIET=1` for silent runs. This is the single funnel for
/// pipeline progress output (bench setup, experiment runner), so it
/// stays distinguishable from real errors.
pub fn progress(msg: &str) {
    if std::env::var_os("OBS_QUIET").is_some_and(|v| v == "1") {
        return;
    }
    static START: Mutex<Option<Instant>> = Mutex::new(None);
    let elapsed = {
        let mut start = START.lock();
        start.get_or_insert_with(Instant::now).elapsed()
    };
    eprintln!("[{:8.2}s] {msg}", elapsed.as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.counter("a", 1);
        r.observe("b", 10);
        r.gauge("c", 1.0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.enable();
        r.counter("x", 2);
        r.counter("x", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), Some(5));
        assert_eq!(snap.gauges[0].value, 2.5);
    }
}
