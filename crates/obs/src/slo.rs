//! Declarative service-level objectives with multi-window burn-rate
//! evaluation.
//!
//! An [`SloSpec`] states an objective over one rolling series — "99%
//! of `serve.query` executions complete under 50 ms", "99.9% of
//! queries succeed" — and the evaluator turns the live window contents
//! of a [`RollingRecorder`] into a *burn rate*: how fast the error
//! budget is being consumed, where 1.0 means "exactly at the
//! sustainable rate". The classic multi-window rule guards against
//! both flavors of false alarm: a short window alone spikes on a
//! transient blip, a long window alone stays red for ages after
//! recovery — so a status level is declared only when **every** window
//! that has data burns at that level.
//!
//! Evaluation is a pure function of (specs, window contents, read
//! time): under an injected [`ManualClock`](crate::ManualClock) the
//! whole [`SloReport`], JSON and markdown included, is bit-identical
//! across runs.
//!
//! The [`SloTracker`] adds the one piece of genuine state: the worst
//! status ever observed, latched across evaluations so a violation
//! that happened mid-run is still visible in an end-of-run report.
//! [`Registry::reset`](crate::Registry::reset) clears the latch along
//! with the windows.

use crate::rolling::RollingRecorder;
use parking_lot::Mutex;
use serde::Value;

/// What an objective constrains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Good event = observation at or under the latency threshold.
    Latency {
        /// An observation above this many nanoseconds burns budget.
        threshold_ns: u64,
    },
    /// Good event = observation not flagged as an error.
    Availability,
}

/// One declarative objective over a rolling series.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name, e.g. `query-latency-p99`.
    pub name: String,
    /// The rolling series it reads, e.g. `serve.query`.
    pub series: String,
    /// Latency-threshold or availability flavor.
    pub kind: SloKind,
    /// Target fraction of good events, in (0, 1) — `0.99` means "99%
    /// good"; the error budget is `1 − target`.
    pub target: f64,
}

impl SloSpec {
    /// "99% of `series` under `threshold_ns`."
    pub fn latency(name: &str, series: &str, threshold_ns: u64, target: f64) -> Self {
        Self {
            name: name.to_string(),
            series: series.to_string(),
            kind: SloKind::Latency { threshold_ns },
            target,
        }
    }

    /// "`target` fraction of `series` succeeds."
    pub fn availability(name: &str, series: &str, target: f64) -> Self {
        Self {
            name: name.to_string(),
            series: series.to_string(),
            kind: SloKind::Availability,
            target,
        }
    }
}

/// One evaluation window with its alerting thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BurnWindow {
    /// Window length, seconds.
    pub secs: u64,
    /// Burn rate at or above this is a warning.
    pub warn: f64,
    /// Burn rate at or above this is a hard violation.
    pub critical: f64,
}

/// The default short + long pair: the short window reacts fast, the
/// long window confirms the burn is sustained.
pub fn default_burn_windows() -> Vec<BurnWindow> {
    vec![
        BurnWindow {
            secs: 10,
            warn: 2.0,
            critical: 10.0,
        },
        BurnWindow {
            secs: 60,
            warn: 1.0,
            critical: 2.0,
        },
    ]
}

/// Joint status of one objective (worst-of-run for the latch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloStatus {
    /// Budget burn is sustainable in at least one window.
    Ok,
    /// Every window with data burns at warning rate.
    Warn,
    /// Every window with data burns at critical rate — a hard
    /// violation.
    Critical,
}

impl SloStatus {
    fn name(self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Warn => "warn",
            SloStatus::Critical => "critical",
        }
    }
}

/// Burn measurement of one objective over one window.
#[derive(Debug, Clone)]
pub struct WindowBurn {
    /// Window length, seconds.
    pub secs: u64,
    /// Events in the window.
    pub count: u64,
    /// Budget-burning events in the window.
    pub bad: u64,
    /// `bad / count` (0 when empty).
    pub bad_fraction: f64,
    /// `bad_fraction / (1 − target)`.
    pub burn_rate: f64,
    /// This window's own verdict against its thresholds.
    pub status: SloStatus,
}

/// One objective, evaluated.
#[derive(Debug, Clone)]
pub struct SloEval {
    /// The spec this evaluates.
    pub spec: SloSpec,
    /// Per-window burn measurements.
    pub windows: Vec<WindowBurn>,
    /// The joint multi-window verdict.
    pub status: SloStatus,
}

/// Every objective evaluated at one instant.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Clock reading the evaluation ran at, nanoseconds.
    pub at_ns: u64,
    /// One entry per spec, in spec order.
    pub evals: Vec<SloEval>,
}

/// Evaluate `specs` against the recorder's windows at `at_ns`.
pub fn evaluate_at(
    recorder: &RollingRecorder,
    specs: &[SloSpec],
    burn_windows: &[BurnWindow],
    at_ns: u64,
) -> SloReport {
    let evals = specs
        .iter()
        .map(|spec| {
            let budget = (1.0 - spec.target).max(1e-9);
            let windows: Vec<WindowBurn> = burn_windows
                .iter()
                .map(|bw| {
                    let stats = recorder.window_at(&spec.series, bw.secs, at_ns);
                    let (count, bad) = match (&stats, spec.kind) {
                        (None, _) => (0, 0),
                        (Some(w), SloKind::Availability) => (w.count, w.errors),
                        (Some(w), SloKind::Latency { threshold_ns }) => {
                            (w.count, w.histogram.count_over(threshold_ns))
                        }
                    };
                    let bad_fraction = if count == 0 {
                        0.0
                    } else {
                        bad as f64 / count as f64
                    };
                    let burn_rate = bad_fraction / budget;
                    let status = if count == 0 {
                        SloStatus::Ok
                    } else if burn_rate >= bw.critical {
                        SloStatus::Critical
                    } else if burn_rate >= bw.warn {
                        SloStatus::Warn
                    } else {
                        SloStatus::Ok
                    };
                    WindowBurn {
                        secs: bw.secs,
                        count,
                        bad,
                        bad_fraction,
                        burn_rate,
                        status,
                    }
                })
                .collect();
            // Multi-window rule: the joint status is the *minimum* over
            // windows that have data — every window must agree.
            let status = windows
                .iter()
                .filter(|w| w.count > 0)
                .map(|w| w.status)
                .min()
                .unwrap_or(SloStatus::Ok);
            SloEval {
                spec: spec.clone(),
                windows,
                status,
            }
        })
        .collect();
    SloReport { at_ns, evals }
}

impl SloReport {
    /// True when any objective is jointly critical.
    pub fn has_hard_violation(&self) -> bool {
        self.evals.iter().any(|e| e.status == SloStatus::Critical)
    }

    /// The worst joint status in the report.
    pub fn worst(&self) -> SloStatus {
        self.evals
            .iter()
            .map(|e| e.status)
            .max()
            .unwrap_or(SloStatus::Ok)
    }

    /// JSON object form, field order fixed.
    pub fn to_value(&self) -> Value {
        let evals: Vec<Value> = self
            .evals
            .iter()
            .map(|e| {
                let windows: Vec<Value> = e
                    .windows
                    .iter()
                    .map(|w| {
                        Value::Map(vec![
                            ("secs".to_string(), Value::UInt(w.secs)),
                            ("count".to_string(), Value::UInt(w.count)),
                            ("bad".to_string(), Value::UInt(w.bad)),
                            ("bad_fraction".to_string(), Value::Float(w.bad_fraction)),
                            ("burn_rate".to_string(), Value::Float(w.burn_rate)),
                            (
                                "status".to_string(),
                                Value::Str(w.status.name().to_string()),
                            ),
                        ])
                    })
                    .collect();
                let objective = match e.spec.kind {
                    SloKind::Latency { threshold_ns } => Value::Map(vec![
                        ("kind".to_string(), Value::Str("latency".to_string())),
                        ("threshold_ns".to_string(), Value::UInt(threshold_ns)),
                    ]),
                    SloKind::Availability => Value::Map(vec![(
                        "kind".to_string(),
                        Value::Str("availability".to_string()),
                    )]),
                };
                Value::Map(vec![
                    ("name".to_string(), Value::Str(e.spec.name.clone())),
                    ("series".to_string(), Value::Str(e.spec.series.clone())),
                    ("objective".to_string(), objective),
                    ("target".to_string(), Value::Float(e.spec.target)),
                    (
                        "status".to_string(),
                        Value::Str(e.status.name().to_string()),
                    ),
                    ("windows".to_string(), Value::Seq(windows)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("at_ns".to_string(), Value::UInt(self.at_ns)),
            (
                "worst".to_string(),
                Value::Str(self.worst().name().to_string()),
            ),
            ("slos".to_string(), Value::Seq(evals)),
        ])
    }

    /// Pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("slo report serializes")
    }

    /// Markdown table, one row per (objective, window).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# SLO report\n\n");
        out.push_str(&format!("worst status: **{}**\n\n", self.worst().name()));
        out.push_str(
            "| objective | series | target | window | events | bad | burn rate | status |\n\
             |---|---|---:|---:|---:|---:|---:|---|\n",
        );
        for e in &self.evals {
            for w in &e.windows {
                out.push_str(&format!(
                    "| {} | {} | {:.4} | {}s | {} | {} | {:.3} | {} |\n",
                    e.spec.name,
                    e.spec.series,
                    e.spec.target,
                    w.secs,
                    w.count,
                    w.bad,
                    w.burn_rate,
                    w.status.name(),
                ));
            }
        }
        out
    }
}

/// Specs + burn windows + the latched worst status. The one mutable
/// piece of SLO state; everything else is recomputed per evaluation.
pub struct SloTracker {
    specs: Vec<SloSpec>,
    burn_windows: Vec<BurnWindow>,
    latched: Mutex<SloStatus>,
}

impl SloTracker {
    /// A tracker over `specs` with the given evaluation windows.
    pub fn new(specs: Vec<SloSpec>, burn_windows: Vec<BurnWindow>) -> Self {
        Self {
            specs,
            burn_windows,
            latched: Mutex::new(SloStatus::Ok),
        }
    }

    /// The tracked specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluate at `at_ns` and fold the result into the latch.
    pub fn evaluate_at(&self, recorder: &RollingRecorder, at_ns: u64) -> SloReport {
        let report = evaluate_at(recorder, &self.specs, &self.burn_windows, at_ns);
        let mut latched = self.latched.lock();
        *latched = (*latched).max(report.worst());
        report
    }

    /// Evaluate at the recorder clock's current time.
    pub fn evaluate(&self, recorder: &RollingRecorder) -> SloReport {
        self.evaluate_at(recorder, recorder.clock().now_ns())
    }

    /// The worst status any evaluation has seen since the last reset.
    pub fn latched(&self) -> SloStatus {
        *self.latched.lock()
    }

    /// Clear the latch back to [`SloStatus::Ok`]. Part of the
    /// [`Registry::reset`](crate::Registry::reset) contract.
    pub fn reset(&self) {
        *self.latched.lock() = SloStatus::Ok;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::rolling::{RollingConfig, SECOND_NS};
    use std::sync::Arc;

    fn recorder() -> RollingRecorder {
        RollingRecorder::new(
            RollingConfig {
                bucket_secs: 1,
                window_secs: 120,
                shards: 1,
            },
            Arc::new(ManualClock::new(0)) as Arc<dyn Clock>,
        )
    }

    fn windows() -> Vec<BurnWindow> {
        default_burn_windows()
    }

    #[test]
    fn healthy_series_is_ok() {
        let rec = recorder();
        for i in 0..600u64 {
            rec.record_at(0, "serve.query", i * SECOND_NS / 10, 1_000_000, false);
        }
        let specs = vec![
            SloSpec::latency("latency", "serve.query", 50_000_000, 0.99),
            SloSpec::availability("availability", "serve.query", 0.999),
        ];
        let report = evaluate_at(&rec, &specs, &windows(), 60 * SECOND_NS);
        assert_eq!(report.worst(), SloStatus::Ok);
        assert!(!report.has_hard_violation());
        assert!(report.to_markdown().contains("| latency |"));
    }

    #[test]
    fn sustained_errors_burn_to_critical_in_all_windows() {
        let rec = recorder();
        // 50% errors against a 99.9% availability target: burn ≈ 500.
        for i in 0..600u64 {
            rec.record_at(0, "q", i * SECOND_NS / 10, 1000, i % 2 == 0);
        }
        let specs = vec![SloSpec::availability("avail", "q", 0.999)];
        let report = evaluate_at(&rec, &specs, &windows(), 60 * SECOND_NS);
        assert_eq!(report.worst(), SloStatus::Critical);
        assert!(report.has_hard_violation());
    }

    #[test]
    fn short_blip_alone_is_not_a_joint_violation() {
        let rec = recorder();
        // 55 s of healthy traffic, then 5 s of pure errors: the 10 s
        // window burns critical, the 60 s window does not confirm.
        for i in 0..550u64 {
            rec.record_at(0, "q", i * SECOND_NS / 10, 1000, false);
        }
        for i in 550..600u64 {
            rec.record_at(0, "q", i * SECOND_NS / 10, 1000, true);
        }
        let specs = vec![SloSpec::availability("avail", "q", 0.95)];
        let report = evaluate_at(&rec, &specs, &windows(), 60 * SECOND_NS);
        let eval = &report.evals[0];
        assert_eq!(eval.windows[0].status, SloStatus::Critical, "short window");
        assert!(eval.windows[1].status < SloStatus::Critical, "long window");
        assert!(
            !report.has_hard_violation(),
            "multi-window rule requires agreement"
        );
    }

    #[test]
    fn latency_objective_counts_over_threshold() {
        let rec = recorder();
        // 20% of observations at 100 ms against "99% under 50 ms":
        // burn ≈ 20, critical everywhere.
        for i in 0..600u64 {
            let slow = i % 5 == 0;
            let v = if slow { 100_000_000 } else { 1_000_000 };
            rec.record_at(0, "q", i * SECOND_NS / 10, v, false);
        }
        let specs = vec![SloSpec::latency("lat", "q", 50_000_000, 0.99)];
        let report = evaluate_at(&rec, &specs, &windows(), 60 * SECOND_NS);
        assert!(report.has_hard_violation());
        let long = &report.evals[0].windows[1];
        assert!(
            (long.bad_fraction - 0.2).abs() < 0.02,
            "bad fraction ≈ 20%, got {}",
            long.bad_fraction
        );
    }

    #[test]
    fn empty_windows_are_ok_and_tracker_latches_worst() {
        let rec = recorder();
        let tracker = SloTracker::new(vec![SloSpec::availability("avail", "q", 0.999)], windows());
        assert_eq!(tracker.evaluate_at(&rec, 0).worst(), SloStatus::Ok);
        for i in 0..600u64 {
            rec.record_at(0, "q", i * SECOND_NS / 10, 1000, true);
        }
        assert_eq!(
            tracker.evaluate_at(&rec, 60 * SECOND_NS).worst(),
            SloStatus::Critical
        );
        // Healthy again — the latch remembers the violation.
        rec.reset();
        assert_eq!(tracker.evaluate_at(&rec, 0).worst(), SloStatus::Ok);
        assert_eq!(tracker.latched(), SloStatus::Critical);
        tracker.reset();
        assert_eq!(tracker.latched(), SloStatus::Ok);
    }
}
