//! Injectable time sources for the live-observability layer.
//!
//! Everything windowed ([`crate::rolling`]) or burn-rate-shaped
//! ([`crate::slo`]) needs a notion of "now". Reading the wall clock
//! directly would make every windowed statistic time-dependent and
//! untestable — and the `no-wallclock-outside-obs` lint confines
//! `Instant::now` to this crate for exactly that reason. The [`Clock`]
//! trait is the single seam: production code hands a
//! [`MonotonicClock`] to the recorder, tests and the deterministic
//! load generator hand a [`ManualClock`] (or pass explicit timestamps)
//! and get bit-identical window contents on every run.
//!
//! All clocks report **nanoseconds since their own epoch** — an
//! arbitrary zero point. Only differences and bucket indexes derived
//! from the value are meaningful; no clock here ever exposes calendar
//! time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source with an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch. Implementations should be
    /// monotonic; consumers clamp regressions defensively anyway.
    fn now_ns(&self) -> u64;
}

/// Real time: wraps [`Instant`], epoch = construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A hand-driven clock for tests and deterministic simulation: time
/// only moves when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        Self {
            ns: AtomicU64::new(start_ns),
        }
    }

    /// Jump to an absolute time. Going backwards is allowed — the
    /// recorder's clamping is exercised by exactly this.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }

    /// Move forward by `delta_ns` and return the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new(5);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now_ns(), 15);
        c.set_ns(3);
        assert_eq!(c.now_ns(), 3, "backwards jumps are permitted");
    }

    #[test]
    fn monotonic_clock_never_regresses() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
