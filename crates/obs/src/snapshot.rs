//! Serializable point-in-time export of the metrics registry.

use serde::{Deserialize, Serialize};

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dotted metric name, e.g. `citegraph.pagerank.iterations`.
    pub name: String,
    /// Monotonic total since enable/reset.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Distribution summary of one histogram (all values in the recorded
/// unit — nanoseconds for every latency metric in this workspace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median (log-bucket approximation, ≤ ~6% relative error).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Aggregated timing for one span name across all its executions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name (`stage.substage` convention).
    pub name: String,
    /// Times the span ran.
    pub count: u64,
    /// Total wall-clock nanoseconds, including child spans.
    pub total_ns: u64,
    /// Nanoseconds not attributed to any child span.
    pub self_ns: u64,
    /// Median duration of one execution, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile duration, nanoseconds.
    pub p99_ns: u64,
}

/// Everything the registry knows, at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Value distributions, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span timings, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl MetricsSnapshot {
    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Human-readable markdown report (spans first: they carry the
    /// per-stage pipeline breakdown).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Metrics\n");
        if !self.spans.is_empty() {
            out.push_str("\n## Spans\n\n");
            out.push_str(
                "| span | count | total ms | self ms | p50 ms | p95 ms | p99 ms |\n\
                 |---|---:|---:|---:|---:|---:|---:|\n",
            );
            for s in &self.spans {
                out.push_str(&format!(
                    "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                    s.name,
                    s.count,
                    ms(s.total_ns),
                    ms(s.self_ns),
                    ms(s.p50_ns),
                    ms(s.p95_ns),
                    ms(s.p99_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\n## Counters\n\n| counter | value |\n|---|---:|\n");
            for c in &self.counters {
                out.push_str(&format!("| {} | {} |\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n## Gauges\n\n| gauge | value |\n|---|---:|\n");
            for g in &self.gauges {
                out.push_str(&format!("| {} | {:.4} |\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "\n## Histograms\n\n| histogram | count | min | mean | p50 | p95 | p99 | max |\n\
                 |---|---:|---:|---:|---:|---:|---:|---:|\n",
            );
            for h in &self.histograms {
                out.push_str(&format!(
                    "| {} | {} | {} | {:.1} | {} | {} | {} | {} |\n",
                    h.name, h.count, h.min, h.mean, h.p50, h.p95, h.p99, h.max,
                ));
            }
        }
        out
    }

    /// Look up a span by exact name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}
