//! Per-query event tracing.
//!
//! Where the metrics [`Registry`](crate::Registry) *aggregates* (one
//! histogram per span name across every execution), the tracer records
//! the *individual* events of one request: every span begin/end with a
//! nanosecond timestamp, plus instant events carrying typed
//! `key = value` attributes — the raw material for answering "why did
//! this query rank that paper here" and "which context got slower".
//!
//! Design:
//!
//! - **One process-global sink**, same pattern as the metrics registry:
//!   disabled collection costs one relaxed atomic load per call site.
//! - **Bounded**: the sink holds at most `capacity` events; once full,
//!   later events are counted as dropped instead of growing without
//!   bound (a long `run_all` at paper scale would otherwise OOM).
//! - **Process-unique trace IDs**: every [`trace_start`] mints a new
//!   id from the process id, the process start time, and a monotonic
//!   counter, so traces from concurrent or successive runs never
//!   collide and every exported event can be grepped by its trace.
//! - **Two exporters**: JSONL (one event per line, `grep`/`jq`
//!   friendly) and the Chrome trace-event format (a `traceEvents`
//!   array loadable in `chrome://tracing` and Perfetto).
//!
//! Span begin/end events are emitted automatically by [`crate::span`]
//! whenever tracing is enabled — instrumented code does not change.
//! Attribute-carrying instants are added with [`instant`], guarded by
//! [`enabled`] so attribute construction costs nothing when off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Value;

/// A process-unique trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceId {
    /// Parse the zero-padded hex form produced by `Display`.
    pub fn parse(s: &str) -> Option<TraceId> {
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// Mint the next process-unique trace id: process id and process start
/// time in the high bits (distinct across processes even if pids
/// recycle), a monotonic counter in the low bits (distinct within the
/// process).
fn next_trace_id() -> TraceId {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    static SALT: AtomicU64 = AtomicU64::new(0);
    let mut salt = SALT.load(Ordering::Relaxed);
    if salt == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        salt = (std::process::id() as u64) ^ nanos.rotate_left(17) | 1;
        SALT.store(salt, Ordering::Relaxed);
    }
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    TraceId(salt.wrapping_mul(0x9e3779b97f4a7c15) ^ (n << 48 | n))
}

/// A typed attribute value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (context names, query text).
    Str(String),
    /// An unsigned integer (counts, ids, ranks).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (scores, weights).
    F64(f64),
    /// A boolean (flags).
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_value(&self) -> Value {
        match self {
            AttrValue::Str(s) => Value::Str(s.clone()),
            AttrValue::U64(u) => Value::UInt(*u),
            AttrValue::I64(i) => {
                if *i >= 0 {
                    Value::UInt(*i as u64)
                } else {
                    Value::Int(*i)
                }
            }
            AttrValue::F64(f) => Value::Float(*f),
            AttrValue::Bool(b) => Value::Bool(*b),
        }
    }

    fn from_value(v: &Value) -> AttrValue {
        match v {
            Value::Str(s) => AttrValue::Str(s.clone()),
            Value::UInt(u) => AttrValue::U64(*u),
            Value::Int(i) => AttrValue::I64(*i),
            Value::Float(f) => AttrValue::F64(*f),
            Value::Bool(b) => AttrValue::Bool(*b),
            other => AttrValue::Str(format!("{other:?}")),
        }
    }
}

/// The kind of one trace event (Chrome trace-event phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time event with attributes (`ph: "i"`).
    Instant,
}

impl TracePhase {
    fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }

    fn from_code(s: &str) -> Option<TracePhase> {
        match s {
            "B" => Some(TracePhase::Begin),
            "E" => Some(TracePhase::End),
            "i" | "I" => Some(TracePhase::Instant),
            _ => None,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since the trace started.
    pub ts_ns: u64,
    /// Begin / End / Instant.
    pub phase: TracePhase,
    /// Event name (span names use the `stage.substage` convention).
    pub name: String,
    /// Small per-process thread number (Chrome `tid`).
    pub tid: u64,
    /// Typed attributes (`args` in the Chrome format).
    pub attrs: Vec<(String, AttrValue)>,
}

/// Everything one finished trace captured.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// The trace's process-unique id.
    pub trace_id: TraceId,
    /// Events in arrival order.
    pub events: Vec<TraceEvent>,
    /// Events discarded after the sink filled up.
    pub dropped: u64,
}

struct SinkState {
    trace_id: TraceId,
    epoch: Instant,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// The bounded global event sink. Like the metrics [`crate::Registry`],
/// there is one process-global instance driven by free functions;
/// independent sinks exist for tests.
pub struct Tracer {
    enabled: AtomicBool,
    state: Mutex<Option<SinkState>>,
}

/// Default event capacity: generous for a query trace (a search emits
/// tens of events), bounded for a full experiment run.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

impl Tracer {
    /// New, disabled tracer.
    pub const fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            state: Mutex::new(None),
        }
    }

    /// Whether the sink is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start a new trace with room for `capacity` events, replacing any
    /// trace in progress. Returns the new trace's id.
    pub fn start(&self, capacity: usize) -> TraceId {
        let trace_id = next_trace_id();
        *self.state.lock() = Some(SinkState {
            trace_id,
            epoch: Instant::now(),
            events: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        });
        self.enabled.store(true, Ordering::Relaxed);
        trace_id
    }

    /// Stop collecting and drain the trace. Returns `None` if no trace
    /// was in progress.
    pub fn finish(&self) -> Option<TraceData> {
        self.enabled.store(false, Ordering::Relaxed);
        let state = self.state.lock().take()?;
        Some(TraceData {
            trace_id: state.trace_id,
            events: state.events,
            dropped: state.dropped,
        })
    }

    /// Record one event (no-op when disabled or no trace is active).
    #[inline]
    pub fn record(&self, phase: TracePhase, name: &str, attrs: Vec<(String, AttrValue)>) {
        if !self.is_enabled() {
            return;
        }
        let mut guard = self.state.lock();
        let Some(state) = guard.as_mut() else {
            return;
        };
        if state.events.len() >= state.capacity {
            state.dropped += 1;
            drop(guard);
            // Surface the loss instead of silently truncating: the
            // global sink's overflows show up as a metrics counter
            // (test tracers stay out of the global registry).
            if std::ptr::eq(self, global()) {
                crate::counter("obs.trace.dropped_events", 1);
            }
            return;
        }
        let ts_ns = state.epoch.elapsed().as_nanos() as u64;
        state.events.push(TraceEvent {
            ts_ns,
            phase,
            name: name.to_string(),
            tid: current_tid(),
            attrs,
        });
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Small dense per-thread number, assigned on first use — the Chrome
/// `tid` field (real thread ids are opaque and unstable across
/// platforms). Public so trace consumers can filter a multi-thread
/// capture down to the calling thread's events
/// ([`TraceData::filter_tid`]) and so the rolling recorder can shard
/// by thread.
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static NUMBER: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    NUMBER.with(|n| *n)
}

static GLOBAL_TRACER: Tracer = Tracer::new();

/// The process-global tracer the free functions in the crate root act
/// on.
pub fn global() -> &'static Tracer {
    &GLOBAL_TRACER
}

// ---------------------------------------------------------------------
// Export / import
// ---------------------------------------------------------------------

fn event_to_value(e: &TraceEvent, trace_id: TraceId, chrome: bool) -> Value {
    let mut map: Vec<(String, Value)> = vec![
        ("name".to_string(), Value::Str(e.name.clone())),
        ("ph".to_string(), Value::Str(e.phase.code().to_string())),
        ("tid".to_string(), Value::UInt(e.tid)),
    ];
    if chrome {
        // Chrome wants microsecond timestamps and a pid; instants need
        // an explicit scope to render.
        map.push(("cat".to_string(), Value::Str("pipeline".to_string())));
        map.push(("ts".to_string(), Value::Float(e.ts_ns as f64 / 1e3)));
        map.push(("pid".to_string(), Value::UInt(1)));
        if e.phase == TracePhase::Instant {
            map.push(("s".to_string(), Value::Str("t".to_string())));
        }
    } else {
        map.push(("ts_ns".to_string(), Value::UInt(e.ts_ns)));
        map.push(("trace_id".to_string(), Value::Str(trace_id.to_string())));
    }
    if !e.attrs.is_empty() {
        let args: Vec<(String, Value)> = e
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        map.push(("args".to_string(), Value::Map(args)));
    }
    Value::Map(map)
}

impl TraceData {
    /// One compact JSON object per line; every line carries the trace
    /// id so concatenated or interleaved trace files stay greppable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let v = event_to_value(e, self.trace_id, false);
            out.push_str(&serde_json::to_string(&v).expect("event serializes"));
            out.push('\n');
        }
        out
    }

    /// The Chrome trace-event format (JSON object form): open the file
    /// in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| event_to_value(e, self.trace_id, true))
            .collect();
        let doc = Value::Map(vec![
            ("traceEvents".to_string(), Value::Seq(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            (
                "otherData".to_string(),
                Value::Map(vec![
                    (
                        "trace_id".to_string(),
                        Value::Str(self.trace_id.to_string()),
                    ),
                    ("dropped".to_string(), Value::UInt(self.dropped)),
                ]),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("trace serializes")
    }

    /// Write the Chrome-format trace to `path`, creating parent
    /// directories as needed.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        ensure_parent(path)?;
        std::fs::write(path, self.to_chrome_json())
    }

    /// Write the JSONL trace to `path`, creating parent directories as
    /// needed.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        ensure_parent(path)?;
        std::fs::write(path, self.to_jsonl())
    }

    /// Parse a Chrome-format trace back (the inverse of
    /// [`to_chrome_json`](Self::to_chrome_json); used by the `trace`
    /// CLI summarizer and the round-trip tests).
    pub fn from_chrome_json(text: &str) -> Result<TraceData, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let events_v = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or("missing traceEvents array")?;
        let mut events = Vec::with_capacity(events_v.len());
        for ev in events_v {
            let name = ev
                .get("name")
                .and_then(Value::as_str)
                .ok_or("event missing name")?
                .to_string();
            let phase = ev
                .get("ph")
                .and_then(Value::as_str)
                .and_then(TracePhase::from_code)
                .ok_or_else(|| format!("event {name:?} has no valid ph"))?;
            let ts_us = ev
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {name:?} has no ts"))?;
            let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            let attrs = match ev.get("args") {
                Some(Value::Map(entries)) => entries
                    .iter()
                    .map(|(k, v)| (k.clone(), AttrValue::from_value(v)))
                    .collect(),
                _ => Vec::new(),
            };
            events.push(TraceEvent {
                ts_ns: (ts_us * 1e3).round() as u64,
                phase,
                name,
                tid,
                attrs,
            });
        }
        let trace_id = doc["otherData"]["trace_id"]
            .as_str()
            .and_then(TraceId::parse)
            .unwrap_or(TraceId(0));
        let dropped = doc["otherData"]["dropped"].as_f64().unwrap_or(0.0) as u64;
        Ok(TraceData {
            trace_id,
            events,
            dropped,
        })
    }

    /// Aggregate the trace into a self-time tree (see [`TraceSummary`]).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::build(self)
    }

    /// Keep only the events recorded on thread `tid` (see
    /// [`current_tid`]). The slow-query capture path re-executes a
    /// query with the global tracer armed and then cuts the capture
    /// down to its own thread's events, so neighbours' spans never
    /// leak into an explain trace.
    pub fn filter_tid(mut self, tid: u64) -> TraceData {
        self.events.retain(|e| e.tid == tid);
        self
    }

    /// Every event as a JSON value (JSONL-line form, in order) — for
    /// embedding a trace inside a larger document, e.g. a slow-query
    /// log entry.
    pub fn event_values(&self) -> Vec<Value> {
        self.events
            .iter()
            .map(|e| event_to_value(e, self.trace_id, false))
            .collect()
    }
}

fn ensure_parent(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Self-time summary tree
// ---------------------------------------------------------------------

/// One node of the aggregated span tree: the same span name reached
/// through the same ancestor path, across all its executions.
#[derive(Debug, Clone)]
pub struct SummaryNode {
    /// Span (or instant) name.
    pub name: String,
    /// Executions aggregated into this node.
    pub count: u64,
    /// Total wall-clock nanoseconds (zero for instants).
    pub total_ns: u64,
    /// Total minus the time spent in child spans.
    pub self_ns: u64,
    /// Child nodes, in first-seen order.
    pub children: Vec<SummaryNode>,
}

impl SummaryNode {
    fn new(name: &str) -> Self {
        SummaryNode {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut SummaryNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(SummaryNode::new(name));
        self.children.last_mut().expect("just pushed")
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str(&format!(
            "{:indent$}{:<width$} ×{:<6} total {:>10.3} ms  self {:>10.3} ms\n",
            "",
            self.name,
            self.count,
            ms(self.total_ns),
            ms(self.self_ns),
            indent = depth * 2,
            width = 32usize.saturating_sub(depth * 2),
        ));
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// The whole trace folded into an aggregated tree: spans with the same
/// name and ancestry merge, instants show up as zero-duration leaves,
/// per-thread event streams are merged at the root.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The trace this summarizes.
    pub trace_id: TraceId,
    /// Total events that went into the summary.
    pub n_events: usize,
    /// Events the sink had dropped (capacity overflow).
    pub dropped: u64,
    /// Top-level nodes (spans with no open parent on their thread).
    pub roots: Vec<SummaryNode>,
}

impl TraceSummary {
    fn build(data: &TraceData) -> TraceSummary {
        // Per-tid stack of (begin index, path through the tree). The
        // tree itself is navigated by index-paths to keep the borrow
        // checker out of recursive &mut chasing.
        let mut roots: Vec<SummaryNode> = Vec::new();
        let mut stacks: std::collections::HashMap<u64, Vec<(String, u64)>> =
            std::collections::HashMap::new();

        fn node_at<'a>(roots: &'a mut Vec<SummaryNode>, path: &[String]) -> &'a mut SummaryNode {
            let (first, rest) = path.split_first().expect("non-empty path");
            let idx = match roots.iter().position(|n| n.name == *first) {
                Some(i) => i,
                None => {
                    roots.push(SummaryNode::new(first));
                    roots.len() - 1
                }
            };
            let mut node = &mut roots[idx];
            for name in rest {
                node = node.child_mut(name);
            }
            node
        }

        for e in &data.events {
            let stack = stacks.entry(e.tid).or_default();
            match e.phase {
                TracePhase::Begin => {
                    stack.push((e.name.clone(), e.ts_ns));
                }
                TracePhase::End => {
                    // Pop the innermost matching begin; unmatched ends
                    // (sink filled mid-span) are ignored.
                    let Some(pos) = stack.iter().rposition(|(n, _)| *n == e.name) else {
                        continue;
                    };
                    let (_, begin_ts) = stack[pos];
                    let path: Vec<String> = stack[..=pos].iter().map(|(n, _)| n.clone()).collect();
                    stack.truncate(pos);
                    let dur = e.ts_ns.saturating_sub(begin_ts);
                    let node = node_at(&mut roots, &path);
                    node.count += 1;
                    node.total_ns += dur;
                }
                TracePhase::Instant => {
                    let mut path: Vec<String> = stack.iter().map(|(n, _)| n.clone()).collect();
                    path.push(e.name.clone());
                    let node = node_at(&mut roots, &path);
                    node.count += 1;
                }
            }
        }
        // Spans still open at the end of the trace contribute no time
        // (they never closed), matching the metrics registry behaviour.
        fn fill_self(node: &mut SummaryNode) {
            let child_total: u64 = node.children.iter().map(|c| c.total_ns).sum();
            node.self_ns = node.total_ns.saturating_sub(child_total);
            for c in &mut node.children {
                fill_self(c);
            }
        }
        for r in &mut roots {
            fill_self(r);
        }
        TraceSummary {
            trace_id: data.trace_id,
            n_events: data.events.len(),
            dropped: data.dropped,
            roots,
        }
    }

    /// Human-readable indentation tree, heaviest totals first at each
    /// level.
    pub fn render(&self) -> String {
        let mut roots = self.roots.clone();
        fn sort_rec(nodes: &mut [SummaryNode]) {
            nodes.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
            for n in nodes {
                sort_rec(&mut n.children);
            }
        }
        sort_rec(&mut roots);
        let mut out = format!(
            "trace {}  ({} events, {} dropped)\n",
            self.trace_id, self.n_events, self.dropped
        );
        for r in &roots {
            r.render_into(&mut out, 0);
        }
        out
    }

    /// Find an aggregated node by name anywhere in the tree.
    pub fn find(&self, name: &str) -> Option<&SummaryNode> {
        fn rec<'a>(nodes: &'a [SummaryNode], name: &str) -> Option<&'a SummaryNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(found) = rec(&n.children, name) {
                    return Some(found);
                }
            }
            None
        }
        rec(&self.roots, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_round_trip_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(TraceId::parse(&a.to_string()), Some(a));
    }

    #[test]
    fn sink_bounds_and_counts_drops() {
        let t = Tracer::new();
        t.start(3);
        for _ in 0..5 {
            t.record(TracePhase::Instant, "x", Vec::new());
        }
        let data = t.finish().expect("trace active");
        assert_eq!(data.events.len(), 3);
        assert_eq!(data.dropped, 2);
        assert!(t.finish().is_none(), "finish drains");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(TracePhase::Instant, "x", Vec::new());
        assert!(t.finish().is_none());
    }

    #[test]
    fn summary_builds_nested_self_time() {
        let t = Tracer::new();
        let id = t.start(64);
        t.record(TracePhase::Begin, "outer", Vec::new());
        t.record(TracePhase::Begin, "inner", Vec::new());
        t.record(TracePhase::Instant, "note", vec![("k".into(), 1u64.into())]);
        t.record(TracePhase::End, "inner", Vec::new());
        t.record(TracePhase::End, "outer", Vec::new());
        let data = t.finish().unwrap();
        assert_eq!(data.trace_id, id);
        let summary = data.summary();
        let outer = summary.find("outer").expect("outer node");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.children.len(), 1);
        let inner = summary.find("inner").expect("inner node");
        assert!(inner.total_ns <= outer.total_ns);
        assert_eq!(
            outer.self_ns,
            outer.total_ns - inner.total_ns,
            "self excludes child time"
        );
        let note = summary.find("note").expect("instant leaf");
        assert_eq!((note.count, note.total_ns), (1, 0));
        assert!(summary.render().contains("outer"));
    }

    #[test]
    fn chrome_round_trip_preserves_events() {
        let t = Tracer::new();
        t.start(64);
        t.record(
            TracePhase::Begin,
            "engine.search",
            vec![("query".into(), "kinase".into())],
        );
        t.record(
            TracePhase::Instant,
            "explain.hit",
            vec![
                ("rank".into(), 1u64.into()),
                ("relevancy".into(), 0.75f64.into()),
                ("novel".into(), true.into()),
            ],
        );
        t.record(TracePhase::End, "engine.search", Vec::new());
        let data = t.finish().unwrap();
        let text = data.to_chrome_json();
        let back = TraceData::from_chrome_json(&text).expect("parses");
        assert_eq!(back.trace_id, data.trace_id);
        assert_eq!(back.events.len(), data.events.len());
        for (a, b) in back.events.iter().zip(&data.events) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line_with_trace_id() {
        let t = Tracer::new();
        let id = t.start(64);
        t.record(TracePhase::Begin, "a", Vec::new());
        t.record(TracePhase::End, "a", Vec::new());
        let data = t.finish().unwrap();
        let jsonl = data.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(v["trace_id"].as_str(), Some(id.to_string().as_str()));
        }
    }

    #[test]
    fn unmatched_end_does_not_corrupt_summary() {
        let t = Tracer::new();
        t.start(64);
        t.record(TracePhase::End, "phantom", Vec::new());
        t.record(TracePhase::Begin, "real", Vec::new());
        t.record(TracePhase::End, "real", Vec::new());
        let summary = t.finish().unwrap().summary();
        assert!(summary.find("phantom").is_none());
        assert_eq!(summary.find("real").unwrap().count, 1);
    }
}
