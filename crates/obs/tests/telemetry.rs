//! Integration tests over the public obs API: nested-span attribution,
//! concurrent counters, and snapshot serialization round-trips.

use std::sync::Mutex;
use std::time::Duration;

/// Tests touching the process-global registry's enabled flag must not
/// interleave (the test harness runs tests on parallel threads).
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// Nested spans split wall-clock into self-time and child-time.
#[test]
fn nested_spans_attribute_self_time() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::enable();
    {
        let _outer = obs::span("nesttest.outer");
        std::thread::sleep(Duration::from_millis(20));
        {
            let _inner = obs::span("nesttest.inner");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let snap = obs::snapshot();
    let outer = snap.span("nesttest.outer").expect("outer recorded");
    let inner = snap.span("nesttest.inner").expect("inner recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // The inner span ran entirely within the outer one.
    assert!(inner.total_ns <= outer.total_ns);
    // Inner has no children: self == total.
    assert_eq!(inner.self_ns, inner.total_ns);
    // Outer's self-time excludes the inner 20 ms: it must be close to
    // half its total, and self + child must reassemble the total.
    assert!(
        outer.self_ns < outer.total_ns,
        "outer self {} should exclude child time (total {})",
        outer.self_ns,
        outer.total_ns
    );
    let reassembled = outer.self_ns + inner.total_ns;
    let diff = reassembled.abs_diff(outer.total_ns);
    assert!(
        diff < outer.total_ns / 10,
        "self + child ≈ total: {} + {} vs {}",
        outer.self_ns,
        inner.total_ns,
        outer.total_ns
    );
}

/// Sibling spans at the same nesting level all count as children.
#[test]
fn sequential_children_all_subtract_from_parent() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::enable();
    {
        let _outer = obs::span("seqtest.outer");
        for _ in 0..3 {
            let _child = obs::span("seqtest.child");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let snap = obs::snapshot();
    let outer = snap.span("seqtest.outer").unwrap();
    let child = snap.span("seqtest.child").unwrap();
    assert_eq!(child.count, 3);
    assert!(child.total_ns >= Duration::from_millis(15).as_nanos() as u64);
    assert!(
        outer.self_ns <= outer.total_ns - child.total_ns + outer.total_ns / 10,
        "all three children subtract: self {} total {} children {}",
        outer.self_ns,
        outer.total_ns,
        child.total_ns
    );
}

/// Counter increments from many threads are all accounted for.
#[test]
fn concurrent_counter_increments_are_lossless() {
    let registry = obs::Registry::new();
    registry.enable();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    registry.counter("concurrent.hits", 1);
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("concurrent.hits"),
        Some(THREADS as u64 * PER_THREAD)
    );
}

/// Concurrent histogram observations keep an exact total count.
#[test]
fn concurrent_observations_are_lossless() {
    let registry = obs::Registry::new();
    registry.enable();
    let registry = &registry;
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                for i in 0..5_000u64 {
                    registry.observe("concurrent.latency", t * 10_000 + i);
                }
            });
        }
    });
    let snap = registry.snapshot();
    let h = snap.histogram("concurrent.latency").unwrap();
    assert_eq!(h.count, 20_000);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, 34_999);
}

/// A snapshot survives a JSON round-trip bit-for-bit.
#[test]
fn snapshot_round_trips_through_json() {
    let registry = obs::Registry::new();
    registry.enable();
    registry.counter("rt.queries", 17);
    registry.gauge("rt.papers", 8_000.0);
    for v in [100u64, 2_000, 35_000, 1_000_000] {
        registry.observe("rt.latency_ns", v);
    }
    let snap = registry.snapshot();
    let json = snap.to_json();
    let back = obs::MetricsSnapshot::from_json(&json).expect("parses back");
    assert_eq!(snap, back);
    // And the JSON is a real JSON document with the expected fields.
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"rt.queries\""));
    assert!(json.contains("\"p99\""));
}

/// Markdown rendering includes every section with data.
#[test]
fn markdown_report_lists_all_metrics() {
    let registry = obs::Registry::new();
    registry.enable();
    registry.counter("md.count", 3);
    registry.gauge("md.gauge", 0.5);
    registry.observe("md.hist", 42);
    let md = registry.snapshot().to_markdown();
    assert!(md.contains("## Counters"));
    assert!(md.contains("## Gauges"));
    assert!(md.contains("## Histograms"));
    assert!(md.contains("md.count"));
    assert!(md.contains("md.hist"));
}

/// The documented reset contract: `Registry::reset` clears recorded
/// metrics AND the attached rolling windows, SLO latch, and slow-query
/// log, while keeping the attachments attached.
#[test]
fn reset_clears_rolling_windows_slo_latch_and_slow_log() {
    use obs::{Clock, ManualClock, RollingConfig, RollingRecorder, SECOND_NS};
    use std::sync::Arc;

    let registry = obs::Registry::new();
    registry.enable();
    let clock = Arc::new(ManualClock::new(0));
    let rolling = Arc::new(RollingRecorder::new(
        RollingConfig::default(),
        clock.clone() as Arc<dyn Clock>,
    ));
    registry.attach_rolling(rolling.clone());
    let slo = Arc::new(obs::SloTracker::new(
        vec![obs::SloSpec::availability("avail", "q", 0.999)],
        obs::default_burn_windows(),
    ));
    registry.attach_slo(slo.clone());
    let slowlog = Arc::new(obs::SlowQueryLog::new(0, 8));
    registry.attach_slow_log(slowlog.clone());

    // Populate all three: errors burn the SLO critical, a slow query
    // lands in the log, windows fill.
    for i in 0..600u64 {
        rolling.record_at(0, "q", i * SECOND_NS / 10, 1000, true);
    }
    clock.set_ns(60 * SECOND_NS);
    slo.evaluate(&rolling);
    slowlog.push(obs::SlowQuery {
        query: "kinase".to_string(),
        duration_ns: 99,
        ts_ns: 0,
        stats: Vec::new(),
        trace: None,
    });
    registry.counter("resettest.hits", 3);
    assert_eq!(slo.latched(), obs::SloStatus::Critical);
    assert_eq!(slowlog.len(), 1);
    assert!(rolling.window_at("q", 60, 60 * SECOND_NS).is_some());

    registry.reset();

    // Everything empty, attachments still live.
    assert!(registry.snapshot().counter("resettest.hits").is_none());
    assert!(
        rolling.window_at("q", 60, 60 * SECOND_NS).is_none(),
        "reset registry reports empty windows"
    );
    assert_eq!(slo.latched(), obs::SloStatus::Ok, "SLO latch cleared");
    assert!(slowlog.is_empty(), "slow-query log cleared");
    assert!(registry.rolling().is_some(), "attachment survives reset");
    assert!(registry.slo_tracker().is_some());
    assert!(registry.slow_log().is_some());

    // New observations land in the still-attached windows.
    rolling.record_at(0, "q", 61 * SECOND_NS, 500, false);
    let w = rolling.window_at("q", 10, 61 * SECOND_NS).expect("rearmed");
    assert_eq!(w.count, 1);
}

/// Span durations recorded through an attached rolling recorder show
/// up in windowed stats under the span's name.
#[test]
fn attached_rolling_recorder_sees_span_durations() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    use obs::{Clock, ManualClock, RollingConfig, RollingRecorder};
    use std::sync::Arc;

    obs::enable();
    let clock = Arc::new(ManualClock::new(0));
    let rolling = Arc::new(RollingRecorder::new(
        RollingConfig::default(),
        clock as Arc<dyn Clock>,
    ));
    obs::attach_rolling(rolling.clone());
    {
        let _s = obs::span("rolltest.query");
    }
    let w = rolling
        .window("rolltest.query", 60)
        .expect("span fed the window");
    assert_eq!(w.count, 1);
    obs::global().detach_rolling();
    assert!(obs::rolling().is_none());
}

/// Disabled spans cost no bookkeeping and record nothing.
#[test]
fn disabled_spans_record_nothing() {
    // Use a name no other test uses; the global registry is shared.
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::disable();
    {
        let _s = obs::span("disabledtest.never");
    }
    obs::enable();
    assert!(obs::snapshot().span("disabledtest.never").is_none());
}
