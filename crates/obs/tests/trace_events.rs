//! Integration tests of the tracing public API: span guards emitting
//! begin/end events into the global sink, instants with attributes,
//! exporters, and the interaction with the metrics registry.

use std::sync::Mutex;

/// Tests drive the process-global tracer; they must not interleave.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

#[test]
fn spans_emit_balanced_begin_end_events() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::disable();
    let id = obs::trace_start();
    {
        let _outer = obs::span("tracetest.outer");
        let _inner = obs::span("tracetest.inner");
    }
    let data = obs::trace_finish().expect("trace active");
    assert_eq!(data.trace_id, id);
    let phases: Vec<(obs::TracePhase, &str)> = data
        .events
        .iter()
        .map(|e| (e.phase, e.name.as_str()))
        .collect();
    assert_eq!(
        phases,
        vec![
            (obs::TracePhase::Begin, "tracetest.outer"),
            (obs::TracePhase::Begin, "tracetest.inner"),
            (obs::TracePhase::End, "tracetest.inner"),
            (obs::TracePhase::End, "tracetest.outer"),
        ]
    );
}

#[test]
fn tracing_works_without_metrics_and_vice_versa() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    // Tracing on, metrics off: events recorded, registry untouched.
    obs::disable();
    obs::reset();
    obs::trace_start();
    {
        let _s = obs::span("tracemix.only_traced");
    }
    let data = obs::trace_finish().unwrap();
    assert_eq!(data.events.len(), 2);
    obs::enable();
    assert!(obs::snapshot().span("tracemix.only_traced").is_none());

    // Metrics on, tracing off: registry records, no trace exists.
    {
        let _s = obs::span("tracemix.only_metered");
    }
    obs::disable();
    assert!(obs::snapshot().span("tracemix.only_metered").is_some());
    assert!(obs::trace_finish().is_none());
    obs::reset();
}

#[test]
fn instants_carry_attributes_into_chrome_export() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::trace_start();
    if obs::trace_enabled() {
        obs::trace_instant(
            "explain.hit",
            vec![
                ("rank".to_string(), 1usize.into()),
                ("context".to_string(), "signal transduction".into()),
                ("relevancy".to_string(), 0.8125f64.into()),
            ],
        );
    }
    let data = obs::trace_finish().unwrap();
    let chrome = data.to_chrome_json();
    let back = obs::TraceData::from_chrome_json(&chrome).expect("chrome export parses");
    let hit = &back.events[0];
    assert_eq!(hit.name, "explain.hit");
    assert_eq!(hit.phase, obs::TracePhase::Instant);
    assert!(hit
        .attrs
        .iter()
        .any(|(k, v)| k == "context" && *v == obs::AttrValue::Str("signal transduction".into())));
    assert!(hit
        .attrs
        .iter()
        .any(|(k, v)| k == "relevancy" && *v == obs::AttrValue::F64(0.8125)));
}

#[test]
fn concurrent_threads_get_distinct_tids_and_lose_no_events() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    obs::trace_start();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..50 {
                    let _s = obs::span("tracepar.work");
                }
            });
        }
    });
    let data = obs::trace_finish().unwrap();
    assert_eq!(data.events.len(), 4 * 50 * 2);
    assert_eq!(data.dropped, 0);
    let tids: std::collections::HashSet<u64> = data.events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), 4, "one tid per worker thread");
    // Per tid, begins and ends balance.
    for tid in tids {
        let (b, e) = data
            .events
            .iter()
            .filter(|ev| ev.tid == tid)
            .fold((0, 0), |(b, e), ev| match ev.phase {
                obs::TracePhase::Begin => (b + 1, e),
                obs::TracePhase::End => (b, e + 1),
                obs::TracePhase::Instant => (b, e),
            });
        assert_eq!(b, e, "balanced events on tid {tid}");
    }
    let summary = data.summary();
    let node = summary.find("tracepar.work").expect("aggregated");
    assert_eq!(node.count, 200);
}

#[test]
fn successive_traces_have_distinct_ids() {
    let _guard = GLOBAL_STATE.lock().unwrap();
    let a = obs::trace_start();
    let _ = obs::trace_finish();
    let b = obs::trace_start();
    let _ = obs::trace_finish();
    assert_ne!(a, b);
}
