//! Property tests for the log-scale histogram: quantiles are monotone
//! in `q`, bounded by the exact `[min, max]`, and `merge` behaves like
//! recording the concatenation of both sample sets.

use obs::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantile_is_monotone_in_q_and_bounded(
        values in proptest::collection::vec(0u64..2_000_000, 1..200),
        qs in proptest::collection::vec(-0.5f64..1.5, 2..20),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);

        let mut sorted = qs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = None;
        for &q in &sorted {
            let v = h.quantile(q);
            prop_assert!(v >= lo && v <= hi, "q={} -> {} outside [{}, {}]", q, v, lo, hi);
            if let Some(p) = prev {
                prop_assert!(v >= p, "quantile not monotone: q={} gave {} after {}", q, v, p);
            }
            prev = Some(v);
        }
        prop_assert_eq!(h.quantile(0.0), lo);
        prop_assert_eq!(h.quantile(1.0), hi);
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut union = Histogram::new();
        for &v in a.iter().chain(&b) {
            union.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), union.count());
        prop_assert_eq!(ha.sum(), union.sum());
        prop_assert_eq!(ha.min(), union.min());
        prop_assert_eq!(ha.max(), union.max());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            prop_assert_eq!(ha.quantile(q), union.quantile(q), "q={}", q);
        }
    }
}
