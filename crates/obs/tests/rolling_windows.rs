//! Edge-case coverage for the sharded rolling-window recorder:
//! bucket rotation at window boundaries, idle-gap expiry,
//! non-monotonic clock clamping, and concurrent observers under the
//! injected clock.

use obs::{Clock, ManualClock, RollingConfig, RollingRecorder, SECOND_NS};
use std::sync::Arc;

fn recorder(window_secs: u64, shards: usize) -> (Arc<ManualClock>, Arc<RollingRecorder>) {
    let clock = Arc::new(ManualClock::new(0));
    let rec = Arc::new(RollingRecorder::new(
        RollingConfig {
            bucket_secs: 1,
            window_secs,
            shards,
        },
        clock.clone() as Arc<dyn Clock>,
    ));
    (clock, rec)
}

#[test]
fn bucket_rotation_at_window_boundaries() {
    let (_, rec) = recorder(5, 1);
    // One observation per second for 12 s into a 5-bucket ring: each
    // new second reuses the slot written 5 s earlier.
    for s in 0..12u64 {
        rec.record_at(0, "q", s * SECOND_NS, 100 + s, false);
    }
    // At t = 11 s the 5 s window holds exactly seconds 7..=11.
    let w = rec.window_at("q", 5, 11 * SECOND_NS).expect("series known");
    assert_eq!(w.count, 5);
    assert_eq!(w.min_ns, 107);
    assert_eq!(w.max_ns, 111);

    // A 1 s window isolates the bucket containing `at`.
    let w1 = rec.window_at("q", 1, 9 * SECOND_NS).expect("series known");
    assert_eq!((w1.count, w1.min_ns, w1.max_ns), (1, 109, 109));

    // Exactly at the rotation boundary: at t = 12 s (no data yet in
    // bucket 12) the window holds seconds 8..=12, i.e. four old points.
    let wb = rec.window_at("q", 5, 12 * SECOND_NS).expect("series known");
    assert_eq!(wb.count, 4);
    assert_eq!(wb.min_ns, 108);
}

#[test]
fn idle_gap_expires_old_data_without_a_sweeper() {
    let (clock, rec) = recorder(10, 2);
    clock.set_ns(SECOND_NS);
    rec.record("q", 42, false);
    assert_eq!(rec.window_at("q", 10, SECOND_NS).unwrap().count, 1);

    // Jump far past the ring extent without recording anything: the
    // series is still known but every bucket is out of the window.
    let later = 1000 * SECOND_NS;
    let w = rec.window_at("q", 10, later).expect("known series");
    assert_eq!(w.count, 0, "idle series reports zeros, not stale data");
    assert_eq!(w.qps, 0.0);
    assert_eq!((w.p50_ns, w.p99_ns), (0, 0));

    // New traffic after the gap starts a fresh window; the pre-gap
    // observation must not resurrect even though its slot epoch is
    // long gone.
    rec.record_at(0, "q", later, 7, false);
    let w2 = rec.window_at("q", 10, later).unwrap();
    assert_eq!((w2.count, w2.min_ns, w2.max_ns), (1, 7, 7));
}

#[test]
fn non_monotonic_clock_clamps_into_the_latest_bucket() {
    let (clock, rec) = recorder(30, 1);
    clock.set_ns(20 * SECOND_NS);
    rec.record("q", 1000, false);
    // The clock regresses 15 s (NTP-style): the observation must land
    // in the shard's latest bucket (second 20), not resurrect second 5.
    clock.set_ns(5 * SECOND_NS);
    rec.record("q", 2000, false);
    let bucket20 = rec.window_at("q", 1, 20 * SECOND_NS).unwrap();
    assert_eq!(bucket20.count, 2, "regressed write clamped forward");
    let bucket5 = rec.window_at("q", 1, 5 * SECOND_NS).unwrap();
    assert_eq!(bucket5.count, 0, "no write landed in the stale second");

    // Recovery: once the clock moves forward again, writes follow it.
    clock.set_ns(21 * SECOND_NS);
    rec.record("q", 3000, false);
    let bucket21 = rec.window_at("q", 1, 21 * SECOND_NS).unwrap();
    assert_eq!((bucket21.count, bucket21.min_ns), (1, 3000));
}

/// Concurrent observers under the injected clock: exact counts, and
/// window contents independent of which thread recorded what.
fn concurrent_observers(threads: usize) {
    let (_, rec) = recorder(60, threads);
    let per_thread = 500u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Each worker owns shard = its index and walks its
                    // own monotonic virtual timeline: 10 obs/s, 50 s.
                    let ts = i * SECOND_NS / 10;
                    rec.record_at(t, "q", ts, (t as u64 + 1) * 1000 + i, i % 10 == 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("observer thread panicked");
    }
    let w = rec.window_at("q", 60, 49 * SECOND_NS).expect("recorded");
    assert_eq!(w.count, threads as u64 * per_thread, "exact total count");
    assert_eq!(w.errors, threads as u64 * per_thread / 10);
    assert_eq!(w.min_ns, 1000, "thread 0's first value");
    assert_eq!(
        w.max_ns,
        threads as u64 * 1000 + per_thread - 1,
        "last thread's last value"
    );
    // A 10 s sub-window sees exactly the observations whose virtual
    // timestamps fall in seconds 40..=49, i.e. i in 400..500.
    let sub = rec.window_at("q", 10, 49 * SECOND_NS).unwrap();
    assert_eq!(sub.count, threads as u64 * per_thread / 5);
}

#[test]
fn concurrent_observers_two_threads_exact_counts() {
    concurrent_observers(2);
}

#[test]
fn concurrent_observers_eight_threads_exact_counts() {
    concurrent_observers(8);
}

#[test]
fn concurrent_runs_are_bit_identical() {
    // The acceptance bar behind the load generator: same inputs, same
    // windowed percentiles, regardless of scheduling. Run the same
    // 8-thread workload twice and compare the full windowed summary.
    let run = || {
        let (_, rec) = recorder(60, 8);
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..400u64 {
                        let ts = (i % 30) * SECOND_NS + (t as u64) * 1_000_000;
                        rec.record_at(t, "q", ts, i * i % 77_777, i % 13 == 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let w = rec.window_at("q", 30, 29 * SECOND_NS).expect("recorded");
        (
            w.count, w.errors, w.p50_ns, w.p95_ns, w.p99_ns, w.min_ns, w.max_ns,
        )
    };
    assert_eq!(run(), run());
}
