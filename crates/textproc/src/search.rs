//! Keyword search engine: the paper's "standard keyword-based search"
//! baseline (the PubMed-style search that context-based search is
//! compared against, and the seed-set generator for AC-answer sets).
//!
//! Wraps a [`Vocabulary`], a [`TfIdfModel`], and an [`InvertedIndex`] so
//! callers can go straight from raw text documents and a raw text query
//! to ranked hits.

use crate::analyze;
use crate::index::{DocId, InvertedIndex};
use crate::sparse::SparseVector;
use crate::tfidf::TfIdfModel;
use crate::vocab::{TermId, Vocabulary};

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Position of the document in the collection the engine was built on.
    pub doc: DocId,
    /// Cosine similarity between query and document TF-IDF vectors.
    pub score: f64,
}

/// A self-contained TF-IDF cosine search engine over a fixed collection.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    vocab: Vocabulary,
    model: TfIdfModel,
    index: InvertedIndex,
    doc_vectors: Vec<SparseVector>,
}

impl SearchEngine {
    /// Build an engine over already-analyzed token lists (one per doc).
    pub fn from_token_docs(docs: Vec<Vec<String>>) -> Self {
        let mut vocab = Vocabulary::new();
        let id_docs: Vec<Vec<TermId>> = docs
            .iter()
            .map(|d| d.iter().map(|t| vocab.intern(t)).collect())
            .collect();
        let model = TfIdfModel::fit(id_docs.iter().map(Vec::as_slice));
        let doc_vectors: Vec<SparseVector> = id_docs
            .iter()
            .map(|d| model.vectorize_normalized(d))
            .collect();
        let index = InvertedIndex::build(&doc_vectors);
        Self {
            vocab,
            model,
            index,
            doc_vectors,
        }
    }

    /// Build an engine from raw document texts using the standard
    /// [`analyze`] pipeline.
    pub fn from_texts<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        Self::from_token_docs(texts.into_iter().map(analyze).collect())
    }

    /// The engine's vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The fitted TF-IDF model.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }

    /// The unit-norm vector of document `doc`.
    pub fn doc_vector(&self, doc: DocId) -> Option<&SparseVector> {
        self.doc_vectors.get(doc.index())
    }

    /// All document vectors, in `DocId` order.
    pub fn doc_vectors(&self) -> &[SparseVector] {
        &self.doc_vectors
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> u32 {
        self.index.n_docs()
    }

    /// Analyze a raw query into a unit-norm TF-IDF vector. Query terms
    /// never seen at build time are dropped (they cannot match anything).
    pub fn query_vector(&self, query: &str) -> SparseVector {
        let ids: Vec<TermId> = analyze(query)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        self.model.vectorize_normalized(&ids)
    }

    /// Search with a raw text query; hits score strictly above
    /// `min_score`, descending.
    pub fn search(&self, query: &str, min_score: f64) -> Vec<SearchHit> {
        self.search_vector(&self.query_vector(query), min_score)
    }

    /// Search with a prebuilt query vector.
    pub fn search_vector(&self, query: &SparseVector, min_score: f64) -> Vec<SearchHit> {
        self.index
            .search(query, min_score)
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect()
    }

    /// Cosine similarity between a document and an arbitrary vector.
    pub fn similarity_to(&self, doc: DocId, v: &SparseVector) -> f64 {
        self.doc_vectors
            .get(doc.index())
            .map_or(0.0, |dv| dv.cosine(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        SearchEngine::from_texts([
            "transcription factor binding regulates gene expression",
            "protein kinase signaling cascade phosphorylation",
            "gene expression microarray analysis of transcription",
            "membrane transport ion channel proteins",
        ])
    }

    #[test]
    fn relevant_doc_ranks_first() {
        let e = engine();
        let hits = e.search("transcription gene expression", 0.0);
        assert!(!hits.is_empty());
        // Docs 0 and 2 are about transcription/gene expression.
        assert!(hits[0].doc == DocId(0) || hits[0].doc == DocId(2));
        let hit_ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert!(!hit_ids.contains(&3) || hits.len() == 4);
    }

    #[test]
    fn unrelated_query_scores_low() {
        let e = engine();
        let hits = e.search("membrane ion channel", 0.1);
        assert_eq!(hits[0].doc, DocId(3));
    }

    #[test]
    fn unknown_terms_are_ignored() {
        let e = engine();
        let hits = e.search("zzzzunknownzzzz", 0.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn scores_descend() {
        let e = engine();
        let hits = e.search("protein gene transcription", 0.0);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn query_vector_is_unit_or_empty() {
        let e = engine();
        let q = e.query_vector("kinase signaling");
        assert!((q.norm() - 1.0).abs() < 1e-9);
        let q = e.query_vector("");
        assert!(q.is_empty());
    }
}
