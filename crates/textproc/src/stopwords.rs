//! English stopword list.
//!
//! A compact standard list (the classic van Rijsbergen / SMART-style core)
//! plus a handful of publication boilerplate words ("figure", "table",
//! "et", "al") that carry no topical signal in scientific full text.

use std::collections::HashSet;
use std::sync::OnceLock;

static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "let",
    "may",
    "me",
    "might",
    "more",
    "most",
    "must",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "us",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
    // publication boilerplate
    "figure",
    "fig",
    "table",
    "et",
    "al",
    "etc",
    "ie",
    "eg",
    "paper",
    "using",
    "used",
    "use",
    "show",
    "shown",
    "shows",
    "result",
    "results",
    "method",
    "methods",
    "however",
    "therefore",
    "thus",
    "within",
    "among",
    "via",
    "respectively",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `word` (already lowercased) a stopword?
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

/// Number of stopwords in the list (exposed for tests / diagnostics).
pub fn stopword_count() -> usize {
    set().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["gene", "kinase", "transcription", "apoptosis"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn no_duplicates_in_list() {
        assert_eq!(stopword_count(), STOPWORDS.len());
    }
}
