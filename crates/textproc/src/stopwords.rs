//! English stopword list.
//!
//! A compact standard list (the classic van Rijsbergen / SMART-style core)
//! plus a handful of publication boilerplate words ("figure", "table",
//! "et", "al") that carry no topical signal in scientific full text.
//!
//! The list is kept sorted so membership is a `binary_search` over the
//! static slice — no lazily-initialized `HashSet` means no `OnceLock`
//! on the query analysis path, which `lock-reachable-hot-path` would
//! otherwise flag (the first query after a cold start should not pay a
//! one-time lock + build either).

/// Sorted stopword list (core list merged with publication boilerplate).
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "al",
    "all",
    "also",
    "am",
    "among",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "eg",
    "et",
    "etc",
    "few",
    "fig",
    "figure",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "however",
    "i",
    "ie",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "let",
    "may",
    "me",
    "method",
    "methods",
    "might",
    "more",
    "most",
    "must",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "paper",
    "respectively",
    "result",
    "results",
    "same",
    "she",
    "should",
    "show",
    "shown",
    "shows",
    "so",
    "some",
    "such",
    "table",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "therefore",
    "these",
    "they",
    "this",
    "those",
    "through",
    "thus",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "us",
    "use",
    "used",
    "using",
    "very",
    "via",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "within",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Is `word` (already lowercased) a stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the list (exposed for tests / diagnostics).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn boilerplate_words_are_stopwords() {
        for w in ["figure", "et", "al", "respectively", "via"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["gene", "kinase", "transcription", "apoptosis"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn list_is_sorted_and_deduped() {
        // binary_search correctness depends on this invariant.
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} !< {:?}", pair[0], pair[1]);
        }
    }
}
