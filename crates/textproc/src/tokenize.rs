//! Word tokenization.
//!
//! Splits text into lowercase word tokens. A token is a maximal run of
//! alphanumeric characters; hyphens and apostrophes *inside* a word are
//! treated as connectors for biomedical-style tokens ("beta-catenin",
//! "3'-utr") and split into their alphanumeric parts as separate tokens
//! plus the joined form is NOT kept — the paper's TF-IDF setup works on
//! plain word tokens, so we keep tokenization deliberately simple and
//! deterministic.

/// Tokenize `text` into lowercase alphanumeric word tokens.
///
/// Purely ASCII-alphanumeric-or-unicode-alphabetic runs are kept; all
/// other characters separate tokens. Tokens are lowercased. Pure numbers
/// are kept (gene names like "p53" mix digits and letters, and years are
/// filtered later by length/stopword policies if needed).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenize and return (token, word position) pairs. Positions count
/// words, not bytes; used by pattern matching to find middle tuples with
/// their surrounding words.
pub fn tokenize_with_positions(text: &str) -> Vec<(String, usize)> {
    tokenize(text)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punct() {
        assert_eq!(
            tokenize("Hello, world! foo-bar"),
            vec!["hello", "world", "foo", "bar"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(
            tokenize("DNA Polymerase II"),
            vec!["dna", "polymerase", "ii"]
        );
    }

    #[test]
    fn keeps_alphanumeric_mixes() {
        assert_eq!(tokenize("p53 and 3utr"), vec!["p53", "and", "3utr"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("...!?--").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tokenize("naïve Bayes"), vec!["naïve", "bayes"]);
    }

    proptest::proptest! {
        /// Tokenization never panics and always yields lowercase,
        /// alphanumeric-only tokens.
        #[test]
        fn tokens_are_always_clean(input in "\\PC{0,200}") {
            for tok in tokenize(&input) {
                proptest::prop_assert!(!tok.is_empty());
                proptest::prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
                // Lowercased means: applying to_lowercase again changes
                // nothing (some uppercase codepoints, e.g. 𝒢, have no
                // lowercase mapping and pass through unchanged).
                proptest::prop_assert_eq!(
                    tok.clone(),
                    tok.chars().flat_map(char::to_lowercase).collect::<String>(),
                    "token not lowercased"
                );
            }
        }

        /// Tokenizing is insensitive to surrounding whitespace.
        #[test]
        fn whitespace_invariance(words in proptest::collection::vec("[a-z]{1,8}", 0..10)) {
            let tight = words.join(" ");
            let loose = words.join("   \t ");
            proptest::prop_assert_eq!(tokenize(&tight), tokenize(&loose));
        }
    }

    #[test]
    fn positions_are_word_indices() {
        let toks = tokenize_with_positions("a b  c");
        assert_eq!(
            toks,
            vec![
                ("a".to_string(), 0),
                ("b".to_string(), 1),
                ("c".to_string(), 2)
            ]
        );
    }
}
