//! Search-result snippet extraction.
//!
//! Given raw text and an analyzed query, pick the contiguous window of
//! words that best covers the query terms (IDF-weighted, counting each
//! distinct term once) and render it from the *raw* words, with
//! ellipses when the window is interior. The window is found over the
//! stemmed view of the text so it matches exactly what the index
//! matched.

use crate::stem::porter_stem;
use crate::tfidf::TfIdfModel;
use crate::tokenize::tokenize;
use crate::vocab::{TermId, Vocabulary};
use std::collections::HashSet;

/// Configuration for snippet extraction.
#[derive(Debug, Clone)]
pub struct SnippetConfig {
    /// Window length in words.
    pub window: usize,
    /// Marker placed where text was elided.
    pub ellipsis: &'static str,
}

impl Default for SnippetConfig {
    fn default() -> Self {
        Self {
            window: 24,
            ellipsis: "…",
        }
    }
}

/// Extract the best snippet of `raw_text` for the analyzed query terms.
///
/// Returns `None` when the text contains no query term at all (callers
/// typically fall back to the leading words). `vocab` and `model` must
/// be the corpus vocabulary and whole-document model the query was
/// analyzed against.
pub fn best_snippet(
    raw_text: &str,
    query_terms: &[TermId],
    vocab: &Vocabulary,
    model: &TfIdfModel,
    config: &SnippetConfig,
) -> Option<String> {
    if raw_text.is_empty() || query_terms.is_empty() || config.window == 0 {
        return None;
    }
    let query: HashSet<TermId> = query_terms.iter().copied().collect();
    let raw_words: Vec<&str> = raw_text.split_whitespace().collect();
    // Stemmed view, aligned with raw_words: each raw word may tokenize
    // into several tokens; we take its first token's stem (adequate for
    // display alignment).
    let stemmed: Vec<Option<TermId>> = raw_words
        .iter()
        .map(|w| {
            tokenize(w)
                .first()
                .map(|t| porter_stem(t))
                .and_then(|s| vocab.get(&s))
        })
        .collect();

    let window = config.window.min(raw_words.len());
    let score_at = |start: usize| -> f64 {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut score = 0.0;
        for s in stemmed[start..start + window].iter().flatten() {
            if query.contains(s) && seen.insert(*s) {
                // Floor keeps ubiquitous terms (idf ≈ 0) contributing:
                // a window containing the query term always beats one
                // without it.
                score += model.idf(*s).max(0.05);
            }
        }
        score
    };
    let mut best_start = 0usize;
    let mut best_score = 0.0f64;
    for start in 0..=(raw_words.len() - window) {
        let s = score_at(start);
        if s > best_score {
            best_score = s;
            best_start = start;
        }
    }
    if best_score <= 0.0 {
        return None;
    }
    let mut out = String::new();
    if best_start > 0 {
        out.push_str(config.ellipsis);
        out.push(' ');
    }
    out.push_str(&raw_words[best_start..best_start + window].join(" "));
    if best_start + window < raw_words.len() {
        out.push(' ');
        out.push_str(config.ellipsis);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;

    fn setup(texts: &[&str]) -> (Vocabulary, TfIdfModel) {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Vec<TermId>> = texts
            .iter()
            .map(|t| analyze(t).iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let model = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        (vocab, model)
    }

    fn q(vocab: &Vocabulary, text: &str) -> Vec<TermId> {
        analyze(text).iter().filter_map(|t| vocab.get(t)).collect()
    }

    #[test]
    fn snippet_centers_on_query_terms() {
        let text = "alpha beta gamma delta epsilon zeta eta theta kinase signaling iota kappa lambda mu nu xi";
        let (vocab, model) = setup(&[text]);
        let query = q(&vocab, "kinase signaling");
        let cfg = SnippetConfig {
            window: 4,
            ellipsis: "…",
        };
        let s = best_snippet(text, &query, &vocab, &model, &cfg).unwrap();
        assert!(s.contains("kinase"), "{s}");
        assert!(s.contains("signaling"), "{s}");
        assert!(
            s.starts_with("…"),
            "interior window gets a left ellipsis: {s}"
        );
        assert!(
            s.ends_with("…"),
            "interior window gets a right ellipsis: {s}"
        );
    }

    #[test]
    fn no_match_returns_none() {
        let text = "alpha beta gamma";
        let (vocab, model) = setup(&[text, "zebra unrelated"]);
        let query = q(&vocab, "zebra");
        assert!(best_snippet(text, &query, &vocab, &model, &SnippetConfig::default()).is_none());
    }

    #[test]
    fn window_larger_than_text_returns_whole_text() {
        let text = "kinase activity measured";
        let (vocab, model) = setup(&[text]);
        let query = q(&vocab, "kinase");
        let s = best_snippet(text, &query, &vocab, &model, &SnippetConfig::default()).unwrap();
        assert_eq!(s, text);
    }

    #[test]
    fn stemming_bridges_inflection() {
        // Query "signaling", text has "signals" — stems must meet.
        let text = "the cell signals through cascades constantly";
        let (vocab, model) = setup(&[text]);
        let query = q(&vocab, "signals");
        let s = best_snippet(text, &query, &vocab, &model, &SnippetConfig::default());
        assert!(s.is_some());
    }

    #[test]
    fn rarer_terms_win_the_window() {
        // Two candidate windows: one with a common word, one with a rare
        // one; the rare-term window must win.
        let common_then_rare =
            "gene gene gene gene gene gene gene gene filler filler filler filler raregene9 filler";
        let (vocab, model) = setup(&[
            common_then_rare,
            "gene gene gene",
            "gene stuff",
            "gene things",
        ]);
        let query = q(&vocab, "gene raregene9");
        let cfg = SnippetConfig {
            window: 3,
            ellipsis: "…",
        };
        let s = best_snippet(common_then_rare, &query, &vocab, &model, &cfg).unwrap();
        assert!(s.contains("raregene9"), "{s}");
    }

    #[test]
    fn empty_inputs() {
        let (vocab, model) = setup(&["a b"]);
        assert!(
            best_snippet("", &[TermId(0)], &vocab, &model, &SnippetConfig::default()).is_none()
        );
        assert!(best_snippet("text", &[], &vocab, &model, &SnippetConfig::default()).is_none());
    }
}
