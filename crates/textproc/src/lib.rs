//! Text-processing substrate for context-based literature search.
//!
//! This crate provides everything the search paradigm of Ratprasartporn et
//! al. (ICDE 2007) needs from "plain" information retrieval:
//!
//! * [`tokenize`] — unicode-aware word tokenization,
//! * [`stem`] — a from-scratch Porter stemmer,
//! * [`stopwords`] — a standard English stopword list,
//! * [`vocab`] — string interning into dense [`vocab::TermId`]s,
//! * [`sparse`] — sparse term-weight vectors with cosine similarity,
//! * [`tfidf`] — corpus-level TF-IDF weighting (Salton's vector model,
//!   the paper's reference \[6\]),
//! * [`index`] — an inverted index over documents,
//! * [`search`] — a TF-IDF cosine keyword search engine (the paper's
//!   "standard keyword-based search" baseline),
//! * [`phrase`] — n-gram/phrase counting used by the apriori-style
//!   significant-term mining of the pattern score function.
//!
//! The pipeline composes as: raw text → [`analyze`] (tokenize + stopword
//! filter + stem) → intern via [`vocab::Vocabulary`] → count into
//! [`sparse::SparseVector`]s → weight with [`tfidf::TfIdfModel`] → search
//! via [`search::SearchEngine`].

pub mod index;
pub mod phrase;
pub mod search;
pub mod snippet;
pub mod sparse;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use index::{CandidateScratch, InvertedIndex};
pub use search::{SearchEngine, SearchHit};
pub use sparse::SparseVector;
pub use tfidf::TfIdfModel;
pub use vocab::{TermId, Vocabulary};

/// Full analysis pipeline: tokenize, drop stopwords, drop very short
/// tokens, Porter-stem each remaining token.
///
/// This is the canonical way every component of the reproduction (corpus
/// generation, context assignment, pattern mining, query processing) turns
/// raw text into index terms, so that the same surface string always maps
/// to the same term.
pub fn analyze(text: &str) -> Vec<String> {
    tokenize::tokenize(text)
        .into_iter()
        .filter(|t| t.len() >= 2 && !stopwords::is_stopword(t))
        .map(|t| stem::porter_stem(&t))
        .collect()
}

/// Like [`analyze`] but keeps stopwords (needed for pattern left/right
/// tuples, where surrounding words may be function words).
pub fn analyze_keep_stopwords(text: &str) -> Vec<String> {
    tokenize::tokenize(text)
        .into_iter()
        .map(|t| stem::porter_stem(&t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_stems_and_filters() {
        let toks = analyze("The kinases are regulating the transcription of genes");
        // "the", "are", "of" are stopwords; the rest is stemmed.
        assert!(toks.contains(&"kinas".to_string()));
        assert!(toks.contains(&"regul".to_string()));
        assert!(toks.contains(&"transcript".to_string()));
        assert!(toks.contains(&"gene".to_string()));
        assert!(!toks.iter().any(|t| t == "the" || t == "are" || t == "of"));
    }

    #[test]
    fn analyze_empty_input() {
        assert!(analyze("").is_empty());
        assert!(analyze("   \t\n").is_empty());
    }

    #[test]
    fn analyze_keep_stopwords_keeps_them() {
        let toks = analyze_keep_stopwords("the gene of interest");
        assert!(toks.iter().any(|t| t == "the"));
        assert!(toks.iter().any(|t| t == "of"));
    }
}
