//! TF-IDF weighting (Salton's vector-space model, the paper's ref \[6\]).
//!
//! Weights are `(1 + ln tf) * ln((N + 1) / (df + 1))` — log-damped term
//! frequency times smoothed inverse document frequency. The +1 smoothing
//! keeps idf finite for terms that occur in every document and defined
//! for query terms never seen at fit time.

use crate::sparse::SparseVector;
use crate::vocab::TermId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Accumulates document-frequency statistics one document at a time.
#[derive(Debug, Default, Clone)]
pub struct TfIdfBuilder {
    n_docs: u64,
    df: Vec<u32>,
}

impl TfIdfBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one document's terms (duplicates within the document are
    /// counted once toward document frequency).
    pub fn add_document(&mut self, terms: &[TermId]) {
        self.n_docs += 1;
        let distinct: HashSet<TermId> = terms.iter().copied().collect();
        for t in distinct {
            let i = t.index();
            if i >= self.df.len() {
                self.df.resize(i + 1, 0);
            }
            self.df[i] += 1;
        }
    }

    /// Finalize into an immutable model.
    pub fn build(self) -> TfIdfModel {
        TfIdfModel {
            n_docs: self.n_docs,
            df: self.df,
        }
    }
}

/// An immutable TF-IDF weighting model fitted on a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfModel {
    n_docs: u64,
    df: Vec<u32>,
}

impl TfIdfModel {
    /// Fit a model over an iterator of documents in one pass.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a [TermId]>) -> Self {
        let mut b = TfIdfBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build()
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Document frequency of `term` (0 for unseen terms).
    pub fn df(&self, term: TermId) -> u32 {
        self.df.get(term.index()).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency of `term`.
    pub fn idf(&self, term: TermId) -> f64 {
        ((self.n_docs as f64 + 1.0) / (self.df(term) as f64 + 1.0)).ln()
    }

    /// TF-IDF weight for a raw in-document frequency of `term`.
    pub fn weight(&self, term: TermId, tf: f64) -> f64 {
        if tf <= 0.0 {
            return 0.0;
        }
        (1.0 + tf.ln()) * self.idf(term)
    }

    /// Turn a token sequence into a TF-IDF vector (not normalized).
    pub fn vectorize(&self, terms: &[TermId]) -> SparseVector {
        let counts = SparseVector::from_counts(terms);
        SparseVector::from_pairs(
            counts
                .entries()
                .iter()
                .map(|&(t, tf)| (t, self.weight(t, tf)))
                .collect(),
        )
    }

    /// Turn a token sequence into a unit-norm TF-IDF vector.
    pub fn vectorize_normalized(&self, terms: &[TermId]) -> SparseVector {
        self.vectorize(terms).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> Vec<TermId> {
        ids.iter().map(|&i| TermId(i)).collect()
    }

    #[test]
    fn rarer_terms_get_higher_idf() {
        // term 0 in all 3 docs, term 1 in 1 doc.
        let docs = [doc(&[0, 1]), doc(&[0]), doc(&[0])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        assert!(m.idf(TermId(1)) > m.idf(TermId(0)));
        assert_eq!(m.df(TermId(0)), 3);
        assert_eq!(m.df(TermId(1)), 1);
    }

    #[test]
    fn duplicate_terms_count_once_for_df() {
        let docs = [doc(&[7, 7, 7])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        assert_eq!(m.df(TermId(7)), 1);
    }

    #[test]
    fn unseen_term_has_maximal_idf() {
        let docs = [doc(&[0]), doc(&[0])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        let idf_unseen = m.idf(TermId(99));
        assert!(idf_unseen >= m.idf(TermId(0)));
        assert!(idf_unseen.is_finite());
    }

    #[test]
    fn vectorize_uses_log_tf() {
        let docs = [doc(&[0, 1]), doc(&[2])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        let v = m.vectorize(&doc(&[0, 0, 0, 1]));
        // tf=3 → 1+ln3; tf=1 → 1.
        let w0 = v.get(TermId(0));
        let w1 = v.get(TermId(1));
        assert!((w0 / m.idf(TermId(0)) - (1.0 + 3f64.ln())).abs() < 1e-12);
        assert!((w1 / m.idf(TermId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vectorize_empty_doc_is_empty() {
        let docs = [doc(&[0])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        assert!(m.vectorize(&[]).is_empty());
    }

    #[test]
    fn normalized_vector_is_unit() {
        let docs = [doc(&[0, 1, 2]), doc(&[0])];
        let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        let v = m.vectorize_normalized(&doc(&[0, 1, 1, 2]));
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn weights_are_nonnegative_and_finite(
            corpus in proptest::collection::vec(
                proptest::collection::vec(0u32..40, 1..30), 1..20),
            query in proptest::collection::vec(0u32..60, 0..30),
        ) {
            let docs: Vec<Vec<TermId>> = corpus.iter().map(|d| doc(d)).collect();
            let m = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
            let v = m.vectorize(&doc(&query));
            for &(_, w) in v.entries() {
                proptest::prop_assert!(w >= 0.0 && w.is_finite());
            }
        }
    }
}
