//! String interning: maps term strings to dense [`TermId`]s.
//!
//! Every component of the reproduction (TF-IDF vectors, the inverted
//! index, pattern tuples, context term words) speaks in `TermId`s so that
//! comparisons are integer comparisons and vectors are sparse arrays.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned term. `u32` keeps postings and sparse
/// vectors compact (see the type-size guidance in the Rust perf book).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only interner from term strings to [`TermId`]s.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id =
            TermId(u32::try_from(self.terms.len()).expect("vocabulary exceeds u32::MAX terms"));
        self.terms.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Intern every token in `tokens`.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TermId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Look up an existing term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for `id`, if allocated.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over (id, term) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("gene");
        let b = v.intern("gene");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        let c = v.intern("gamma");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(v.term(b), Some("beta"));
        assert_eq!(v.get("gamma"), Some(c));
        assert_eq!(v.get("delta"), None);
    }

    #[test]
    fn iter_round_trips() {
        let mut v = Vocabulary::new();
        for w in ["x", "y", "z"] {
            v.intern(w);
        }
        let collected: Vec<_> = v.iter().map(|(id, t)| (id.0, t.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    proptest::proptest! {
        #[test]
        fn interning_any_strings_round_trips(words in proptest::collection::vec("[a-z]{1,8}", 0..50)) {
            let mut v = Vocabulary::new();
            let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
            for (w, id) in words.iter().zip(&ids) {
                proptest::prop_assert_eq!(v.term(*id), Some(w.as_str()));
                proptest::prop_assert_eq!(v.get(w), Some(*id));
            }
            // Dense: ids all < len.
            for id in ids {
                proptest::prop_assert!(id.index() < v.len());
            }
        }
    }
}
