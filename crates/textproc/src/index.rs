//! Inverted index over documents.
//!
//! Maps each term to a postings list of `(document, weight)` pairs. With
//! unit-normalized document vectors, accumulating `query_weight *
//! posting_weight` over query terms computes exact cosine scores while
//! touching only postings of query terms.

use crate::sparse::SparseVector;
use crate::vocab::TermId;
use serde::{Deserialize, Serialize};

/// Index of a document within the collection the index was built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single posting: a document and the indexed weight of the term in it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// The document containing the term.
    pub doc: DocId,
    /// The (normalized TF-IDF) weight of the term in that document.
    pub weight: f32,
}

/// An immutable inverted index built from per-document sparse vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: Vec<Vec<Posting>>,
    n_docs: u32,
}

/// Reusable accumulation state for [`InvertedIndex::search_columns`].
///
/// Holds a dense per-document score array stamped with a query epoch —
/// a slot is "live" only when its stamp equals the current epoch, so
/// consecutive queries skip the O(n_docs) zeroing that
/// [`InvertedIndex::score_all`] pays per call. The output is a pair of
/// parallel columns (`docs` ascending, `scores` aligned), ready for
/// merge-intersection against other sorted id columns.
///
/// One scratch must not be shared across threads; keep one per worker
/// (the serve path pools one per thread).
#[derive(Debug, Default)]
pub struct CandidateScratch {
    /// Dense accumulator, indexed by doc id.
    acc: Vec<f64>,
    /// Epoch stamp per doc: `stamp[d] == epoch` ⇔ `acc[d]` is live.
    stamp: Vec<u32>,
    /// The current query's epoch.
    epoch: u32,
    /// Output column: matching documents, ascending.
    docs: Vec<DocId>,
    /// Output column: scores parallel to `docs`.
    scores: Vec<f64>,
}

impl CandidateScratch {
    /// An empty scratch; arrays grow to the index's size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidate columns of the most recent
    /// [`InvertedIndex::search_columns`] call: documents ascending, with
    /// their scores parallel.
    pub fn columns(&self) -> (&[DocId], &[f64]) {
        (&self.docs, &self.scores)
    }

    /// Number of candidates produced by the most recent search.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the most recent search produced no candidates.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Advance to a fresh epoch, growing the dense arrays to `n` slots.
    /// On u32 wraparound every stamp is cleared so stale stamps from
    /// ~4 billion queries ago cannot alias the new epoch.
    fn begin(&mut self, n: usize) {
        if self.acc.len() < n {
            self.acc.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.docs.clear();
        self.scores.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }
}

impl InvertedIndex {
    /// Build from unit-normalized document vectors, in `DocId` order.
    pub fn build(doc_vectors: &[SparseVector]) -> Self {
        let _span = obs::span("textproc.inverted_index.build");
        let max_term = doc_vectors
            .iter()
            .flat_map(|v| v.terms())
            .map(TermId::index)
            .max()
            .map_or(0, |m| m + 1);
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); max_term];
        for (d, v) in doc_vectors.iter().enumerate() {
            let doc = DocId(d as u32);
            for &(t, w) in v.entries() {
                postings[t.index()].push(Posting {
                    doc,
                    weight: w as f32,
                });
            }
        }
        obs::gauge("textproc.inverted_index.terms", postings.len() as f64);
        obs::gauge("textproc.inverted_index.docs", doc_vectors.len() as f64);
        Self {
            postings,
            n_docs: doc_vectors.len() as u32,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Postings list for `term` (empty slice if the term is unindexed).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Documents containing `term`.
    pub fn docs_containing(&self, term: TermId) -> impl Iterator<Item = DocId> + '_ {
        self.postings(term).iter().map(|p| p.doc)
    }

    /// Score every document against a query vector by postings
    /// accumulation; returns dense per-document scores.
    pub fn score_all(&self, query: &SparseVector) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.n_docs as usize];
        for &(t, qw) in query.entries() {
            for p in self.postings(t) {
                scores[p.doc.index()] += qw * p.weight as f64;
            }
        }
        scores
    }

    /// Columnar search: accumulate cosine scores into `scratch` and emit
    /// the candidates strictly above `min_score` as doc-id-ascending
    /// parallel columns (read them via [`CandidateScratch::columns`]).
    ///
    /// Candidate set and score bits are identical to [`search`] — the
    /// accumulation visits `(term, posting)` pairs in the same order, so
    /// every floating-point sum associates identically; only the output
    /// order differs (ascending doc instead of descending score).
    /// Allocation-free after warm-up: the dense accumulator is epoch-
    /// stamped instead of re-zeroed, and the output columns are reused.
    ///
    /// [`search`]: InvertedIndex::search
    pub fn search_columns(
        &self,
        query: &SparseVector,
        min_score: f64,
        scratch: &mut CandidateScratch,
    ) {
        scratch.begin(self.n_docs as usize);
        let epoch = scratch.epoch;
        for &(t, qw) in query.entries() {
            for p in self.postings(t) {
                let i = p.doc.index();
                if scratch.stamp[i] != epoch {
                    scratch.stamp[i] = epoch;
                    scratch.acc[i] = 0.0;
                    scratch.docs.push(p.doc);
                }
                scratch.acc[i] += qw * p.weight as f64;
            }
        }
        scratch.docs.sort_unstable();
        let mut kept = 0;
        for r in 0..scratch.docs.len() {
            let d = scratch.docs[r];
            let s = scratch.acc[d.index()];
            if s > min_score {
                scratch.docs[kept] = d;
                scratch.scores.push(s);
                kept += 1;
            }
        }
        scratch.docs.truncate(kept);
    }

    /// Score and return `(doc, score)` pairs above `min_score`, sorted by
    /// descending score (ties broken by ascending doc id for determinism).
    pub fn search(&self, query: &SparseVector, min_score: f64) -> Vec<(DocId, f64)> {
        let scores = self.score_all(query);
        let mut hits: Vec<(DocId, f64)> = scores
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s > min_score)
            .map(|(d, s)| (DocId(d as u32), s))
            .collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::TfIdfModel;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn tiny_index() -> (InvertedIndex, TfIdfModel) {
        // doc0: {0,1}; doc1: {1,2}; doc2: {2,2,3}
        let docs = [ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 2, 3])];
        let model = TfIdfModel::fit(docs.iter().map(Vec::as_slice));
        let vecs: Vec<SparseVector> = docs.iter().map(|d| model.vectorize_normalized(d)).collect();
        (InvertedIndex::build(&vecs), model)
    }

    #[test]
    fn postings_reflect_documents() {
        let (idx, _) = tiny_index();
        let d: Vec<u32> = idx.docs_containing(TermId(1)).map(|d| d.0).collect();
        assert_eq!(d, vec![0, 1]);
        let d: Vec<u32> = idx.docs_containing(TermId(3)).map(|d| d.0).collect();
        assert_eq!(d, vec![2]);
        assert!(idx.postings(TermId(99)).is_empty());
    }

    #[test]
    fn search_ranks_exact_match_first() {
        let (idx, model) = tiny_index();
        let q = model.vectorize_normalized(&ids(&[2, 3]));
        let hits = idx.search(&q, 0.0);
        assert_eq!(hits[0].0, DocId(2));
        assert!(hits[0].1 > hits.last().unwrap().1 || hits.len() == 1);
    }

    #[test]
    fn search_scores_are_cosines() {
        let (idx, model) = tiny_index();
        let docs = [ids(&[0, 1]), ids(&[1, 2]), ids(&[2, 2, 3])];
        let q = model.vectorize_normalized(&ids(&[1]));
        let hits = idx.search(&q, -1.0);
        for (doc, score) in hits {
            let dv = model.vectorize_normalized(&docs[doc.index()]);
            assert!((score - q.cosine(&dv)).abs() < 1e-6, "doc {doc:?}");
        }
    }

    #[test]
    fn min_score_filters() {
        let (idx, model) = tiny_index();
        let q = model.vectorize_normalized(&ids(&[1]));
        let all = idx.search(&q, 0.0);
        let none = idx.search(&q, 1.1);
        assert!(!all.is_empty());
        assert!(none.is_empty());
    }

    #[test]
    fn empty_query_matches_nothing() {
        let (idx, _) = tiny_index();
        let hits = idx.search(&SparseVector::new(), 0.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn empty_index_is_sane() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.n_docs(), 0);
        assert!(idx.search(&SparseVector::new(), 0.0).is_empty());
        let mut scratch = CandidateScratch::new();
        idx.search_columns(&SparseVector::new(), 0.0, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn search_columns_matches_search_bit_for_bit() {
        let (idx, model) = tiny_index();
        let mut scratch = CandidateScratch::new();
        for (q, min) in [
            (ids(&[1]), 0.0),
            (ids(&[2, 3]), 0.0),
            (ids(&[0, 1, 2, 3]), 0.05),
            (ids(&[1]), 1.1),
        ] {
            let qv = model.vectorize_normalized(&q);
            let mut reference = idx.search(&qv, min);
            reference.sort_unstable_by_key(|&(d, _)| d);
            idx.search_columns(&qv, min, &mut scratch);
            let (docs, scores) = scratch.columns();
            assert_eq!(docs.len(), reference.len(), "query {q:?}");
            for (i, &(d, s)) in reference.iter().enumerate() {
                assert_eq!(docs[i], d);
                assert_eq!(scores[i].to_bits(), s.to_bits(), "doc {d:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_across_queries() {
        let (idx, model) = tiny_index();
        let mut scratch = CandidateScratch::new();
        // A broad query first, then a narrow one: stale accumulator
        // slots from the broad query must not surface.
        idx.search_columns(
            &model.vectorize_normalized(&ids(&[0, 1, 2, 3])),
            0.0,
            &mut scratch,
        );
        let broad = scratch.len();
        idx.search_columns(&model.vectorize_normalized(&ids(&[3])), 0.0, &mut scratch);
        let (docs, _) = scratch.columns();
        assert!(scratch.len() < broad);
        assert_eq!(docs, &[DocId(2)], "only doc2 contains term 3");
        // And the epoch discipline survives many reuses.
        for _ in 0..100 {
            idx.search_columns(&model.vectorize_normalized(&ids(&[1])), 0.0, &mut scratch);
            let (docs, _) = scratch.columns();
            assert_eq!(docs, &[DocId(0), DocId(1)]);
        }
    }
}
