//! Sparse term-weight vectors.
//!
//! The workhorse data structure for all text similarity in the paper:
//! documents, document sections, queries, and context centroids are all
//! sparse vectors over [`TermId`]s, compared with cosine similarity.
//!
//! Entries are kept sorted by term id, which makes dot products linear
//! merges and keeps construction allocation-friendly.

use crate::vocab::TermId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse vector of `(term, weight)` entries, sorted by term id with no
/// duplicate terms and no explicitly stored zeros.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted (possibly duplicated) pairs; duplicate term
    /// weights are summed, zero weights dropped.
    pub fn from_pairs(mut pairs: Vec<(TermId, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            match entries.last_mut() {
                Some((lt, lw)) if *lt == t => *lw += w,
                _ => entries.push((t, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        Self { entries }
    }

    /// Build a term-frequency vector by counting `terms`.
    pub fn from_counts(terms: &[TermId]) -> Self {
        let mut counts: HashMap<TermId, f64> = HashMap::with_capacity(terms.len());
        for &t in terms {
            *counts.entry(t).or_insert(0.0) += 1.0;
        }
        // lint:allow(hashmap-order-leak, from_pairs sorts by term id before storing)
        Self::from_pairs(counts.into_iter().collect())
    }

    /// The entries, sorted by term id.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of `term` (0.0 if absent).
    pub fn get(&self, term: TermId) -> f64 {
        match self.entries.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Sum of weights (L1 mass for non-negative vectors).
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Dot product by sorted merge: O(nnz(a) + nnz(b)).
    pub fn dot(&self, other: &Self) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity; 0.0 when either vector is empty or zero-norm.
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// In-place scale by `factor`.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for (_, w) in &mut self.entries {
            *w *= factor;
        }
    }

    /// Element-wise sum of two vectors.
    pub fn add(&self, other: &Self) -> Self {
        let (a, b) = (&self.entries, &other.entries);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let w = a[i].1 + b[j].1;
                    if w != 0.0 {
                        out.push((a[i].0, w));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Self { entries: out }
    }

    /// Normalize to unit L2 norm (no-op on zero vectors).
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        let mut v = self.clone();
        v.scale(1.0 / n);
        v
    }

    /// Centroid (arithmetic mean) of a set of vectors; empty input gives
    /// the empty vector. Used by the AC-answer-set text expansion.
    pub fn centroid<'a>(vectors: impl IntoIterator<Item = &'a SparseVector>) -> Self {
        let mut acc = SparseVector::new();
        let mut n = 0usize;
        for v in vectors {
            acc = acc.add(v);
            n += 1;
        }
        if n > 0 {
            acc.scale(1.0 / n as f64);
        }
        acc
    }

    /// Iterate over term ids present in the vector.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.entries.iter().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)).collect())
    }

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let a = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (2, 0.0)]);
        assert_eq!(a.entries(), &[(TermId(1), 2.0), (TermId(3), 3.0)]);
    }

    #[test]
    fn from_counts_counts() {
        let terms = vec![TermId(5), TermId(2), TermId(5), TermId(5)];
        let a = SparseVector::from_counts(&terms);
        assert_eq!(a.get(TermId(5)), 3.0);
        assert_eq!(a.get(TermId(2)), 1.0);
        assert_eq!(a.get(TermId(7)), 0.0);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        let a = v(&[(1, 1.0), (3, 1.0)]);
        let b = v(&[(2, 5.0), (4, 5.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = v(&[(1, 2.0), (7, 3.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_empty_is_zero() {
        let a = v(&[(1, 2.0)]);
        let e = SparseVector::new();
        assert_eq!(a.cosine(&e), 0.0);
        assert_eq!(e.cosine(&e), 0.0);
    }

    #[test]
    fn add_merges() {
        let a = v(&[(1, 1.0), (2, 1.0)]);
        let b = v(&[(2, 2.0), (3, 3.0)]);
        let c = a.add(&b);
        assert_eq!(
            c.entries(),
            &[(TermId(1), 1.0), (TermId(2), 3.0), (TermId(3), 3.0)]
        );
    }

    #[test]
    fn add_cancellation_removes_entry() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(1, -1.0)]);
        assert!(a.add(&b).is_empty());
    }

    #[test]
    fn centroid_averages() {
        let a = v(&[(1, 2.0)]);
        let b = v(&[(1, 4.0), (2, 2.0)]);
        let c = SparseVector::centroid([&a, &b]);
        assert_eq!(c.get(TermId(1)), 3.0);
        assert_eq!(c.get(TermId(2)), 1.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(1, 3.0), (2, 4.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn cosine_is_symmetric_and_bounded(
            xs in proptest::collection::vec((0u32..50, 0.1f64..10.0), 0..20),
            ys in proptest::collection::vec((0u32..50, 0.1f64..10.0), 0..20),
        ) {
            let a = v(&xs.iter().map(|&(t, w)| (t, w)).collect::<Vec<_>>());
            let b = v(&ys.iter().map(|&(t, w)| (t, w)).collect::<Vec<_>>());
            let ab = a.cosine(&b);
            let ba = b.cosine(&a);
            proptest::prop_assert!((ab - ba).abs() < 1e-12);
            proptest::prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn dot_matches_naive(
            xs in proptest::collection::vec((0u32..30, -5.0f64..5.0), 0..20),
            ys in proptest::collection::vec((0u32..30, -5.0f64..5.0), 0..20),
        ) {
            let a = v(&xs);
            let b = v(&ys);
            let naive: f64 = (0..30).map(|t| a.get(TermId(t)) * b.get(TermId(t))).sum();
            proptest::prop_assert!((a.dot(&b) - naive).abs() < 1e-9);
        }

        #[test]
        fn add_is_commutative(
            xs in proptest::collection::vec((0u32..30, -5.0f64..5.0), 0..20),
            ys in proptest::collection::vec((0u32..30, -5.0f64..5.0), 0..20),
        ) {
            let a = v(&xs);
            let b = v(&ys);
            proptest::prop_assert_eq!(a.add(&b), b.add(&a));
        }
    }
}
