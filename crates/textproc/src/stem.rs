//! Porter stemming algorithm, implemented from scratch.
//!
//! A faithful Rust port of M.F. Porter's 1980 algorithm ("An algorithm
//! for suffix stripping"), the stemmer conventionally paired with the
//! TF-IDF vector model the paper uses (Salton, "Automatic Text
//! Processing"). Operates on lowercase ASCII; tokens containing
//! non-ASCII-alphabetic bytes are returned unchanged.

/// Stem a single lowercase token with the Porter algorithm.
///
/// ```
/// use textproc::stem::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("regulation"), "regul");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() - 1,
        j: 0,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    // The entry guard verified every byte is ascii-lowercase and the
    // algorithm only ever writes ascii, so this is always valid UTF-8;
    // lossy keeps the serve path panic-free regardless.
    String::from_utf8_lossy(&s.b[..=s.k]).into_owned()
}

struct Stemmer {
    b: Vec<u8>,
    /// Index of the last valid byte of the current word.
    k: usize,
    /// Index of the last byte of the stem candidate (set by `ends`).
    /// Signed because a suffix can cover the whole word (Porter's original
    /// C code uses a signed int for the same reason).
    j: isize,
}

// The step functions below mirror Porter's published step structure
// line-for-line; clippy's structural suggestions would obscure the
// correspondence with the reference algorithm.
#[allow(clippy::collapsible_match, clippy::if_same_then_else)]
impl Stemmer {
    /// Is b[i] a consonant?
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of b[0..=j]: the number of VC sequences.
    fn m(&self) -> usize {
        if self.j < 0 {
            return 0;
        }
        let j = self.j as usize;
        let mut n = 0;
        let mut i = 0usize;
        loop {
            if i > j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Does b[0..=j] contain a vowel?
    fn vowel_in_stem(&self) -> bool {
        self.j >= 0 && (0..=self.j as usize).any(|i| !self.cons(i))
    }

    /// Is b[i-1..=i] a double consonant?
    fn doublec(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// Is b[i-2..=i] consonant-vowel-consonant, with the final consonant
    /// not w, x or y? Used to restore a trailing 'e' (e.g. cav(e), lov(e)).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Does b[..=k] end with `s`? If so set j to the stem end.
    fn ends(&mut self, s: &[u8]) -> bool {
        if s.len() > self.k + 1 {
            return false;
        }
        if &self.b[self.k + 1 - s.len()..=self.k] != s {
            return false;
        }
        self.j = self.k as isize - s.len() as isize;
        true
    }

    /// Replace b[j+1..=k] with `s` and update k. Callers guarantee the
    /// result is non-empty (either `s` is non-empty or m() > 0 held, which
    /// implies j >= 1).
    fn setto(&mut self, s: &[u8]) {
        self.b.truncate((self.j + 1) as usize);
        self.b.extend_from_slice(s);
        self.k = (self.j + s.len() as isize) as usize;
    }

    /// `setto` guarded by m() > 0.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.setto(s);
        }
    }

    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.setto(b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j as usize;
            if self.ends(b"at") {
                self.setto(b"ate");
            } else if self.ends(b"bl") {
                self.setto(b"ble");
            } else if self.ends(b"iz") {
                self.setto(b"ize");
            } else if self.doublec(self.k) {
                if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k -= 1;
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.setto(b"e");
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.r(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"bli") {
                    self.r(b"ble");
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") {
                    self.r(b"ate");
                } else if self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            b'g' => {
                if self.ends(b"logi") {
                    self.r(b"log");
                }
            }
            _ => {}
        }
    }

    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.r(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.r(b"");
                }
            }
            _ => {}
        }
    }

    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j as usize], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j as usize;
        }
    }

    fn step5(&mut self) {
        self.j = self.k as isize;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k] == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical vocabulary pairs from Porter's published test data.
    #[test]
    fn canonical_pairs() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn domain_terms() {
        assert_eq!(porter_stem("transcription"), "transcript");
        assert_eq!(porter_stem("transcriptional"), "transcript");
        assert_eq!(porter_stem("regulation"), "regul");
        assert_eq!(porter_stem("regulatory"), "regulatori");
        assert_eq!(porter_stem("binding"), "bind");
        assert_eq!(porter_stem("kinases"), "kinas");
    }

    #[test]
    fn short_and_nonascii_unchanged() {
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("naïve"), "naïve");
        assert_eq!(porter_stem("p53"), "p53");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in [
            "regulation",
            "binding",
            "cellular",
            "activities",
            "responses",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but must not panic and
            // must keep output ascii-lowercase for ascii input.
            assert!(twice
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        }
    }
}
