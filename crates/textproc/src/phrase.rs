//! Frequent contiguous phrase (n-gram) mining.
//!
//! The pattern-based score function (paper §3.3) builds its "significant
//! terms" from frequent terms/phrases in a context's training papers,
//! "combined using a procedure similar to the apriori algorithm" (paper
//! ref \[5\]). This module implements that: level-wise mining of contiguous
//! token sequences with document-level support, where the candidate
//! (n+1)-grams are generated only from frequent n-grams (the apriori
//! pruning property — every sub-phrase of a frequent phrase is frequent).

use crate::vocab::TermId;
use std::collections::{HashMap, HashSet};

/// A mined phrase with its document-level support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentPhrase {
    /// The phrase as a contiguous token-id sequence (length ≥ 1).
    pub tokens: Vec<TermId>,
    /// Number of documents containing the phrase at least once.
    pub support: u32,
}

/// Mine phrases of length `1..=max_len` appearing in at least
/// `min_support` documents.
///
/// Results are sorted by descending support then ascending token
/// sequence, for deterministic output.
pub fn frequent_phrases(
    docs: &[Vec<TermId>],
    min_support: u32,
    max_len: usize,
) -> Vec<FrequentPhrase> {
    if max_len == 0 || docs.is_empty() {
        return Vec::new();
    }
    let mut result: Vec<FrequentPhrase> = Vec::new();

    // Level 1: unigram document frequencies.
    let mut frequent_prev: HashSet<Vec<TermId>> = HashSet::new();
    let mut counts: HashMap<Vec<TermId>, u32> = HashMap::new();
    for doc in docs {
        let distinct: HashSet<TermId> = doc.iter().copied().collect();
        for t in distinct {
            *counts.entry(vec![t]).or_insert(0) += 1;
        }
    }
    collect_level(&mut counts, min_support, &mut frequent_prev, &mut result);

    // Levels 2..=max_len: count candidate n-grams whose two (n-1)-length
    // sub-phrases are both frequent.
    for n in 2..=max_len {
        if frequent_prev.is_empty() {
            break;
        }
        let mut counts: HashMap<Vec<TermId>, u32> = HashMap::new();
        for doc in docs {
            if doc.len() < n {
                continue;
            }
            let mut seen: HashSet<&[TermId]> = HashSet::new();
            for window in doc.windows(n) {
                if seen.contains(window) {
                    continue;
                }
                // Apriori pruning: both length-(n-1) sub-windows frequent.
                if !frequent_prev.contains(&window[..n - 1])
                    || !frequent_prev.contains(&window[1..])
                {
                    continue;
                }
                seen.insert(window);
                *counts.entry(window.to_vec()).or_insert(0) += 1;
            }
        }
        frequent_prev.clear();
        collect_level(&mut counts, min_support, &mut frequent_prev, &mut result);
    }

    result.sort_by(|a, b| b.support.cmp(&a.support).then(a.tokens.cmp(&b.tokens)));
    result
}

fn collect_level(
    counts: &mut HashMap<Vec<TermId>, u32>,
    min_support: u32,
    frequent: &mut HashSet<Vec<TermId>>,
    result: &mut Vec<FrequentPhrase>,
) {
    for (phrase, support) in counts.drain() {
        if support >= min_support {
            frequent.insert(phrase.clone());
            result.push(FrequentPhrase {
                tokens: phrase,
                support,
            });
        }
    }
}

/// Count occurrences (not documents) of each n-gram of length `n` in one
/// token sequence. Used for pattern occurrence-frequency statistics.
pub fn ngram_occurrences(doc: &[TermId], n: usize) -> HashMap<Vec<TermId>, u32> {
    let mut out = HashMap::new();
    if n == 0 || doc.len() < n {
        return out;
    }
    for w in doc.windows(n) {
        *out.entry(w.to_vec()).or_insert(0) += 1;
    }
    out
}

/// Find all start positions where `needle` occurs contiguously in
/// `haystack`.
pub fn find_occurrences(haystack: &[TermId], needle: &[TermId]) -> Vec<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return Vec::new();
    }
    haystack
        .windows(needle.len())
        .enumerate()
        .filter(|(_, w)| *w == needle)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    #[test]
    fn unigrams_counted_per_document() {
        let docs = vec![ids(&[1, 1, 2]), ids(&[1, 3])];
        let phrases = frequent_phrases(&docs, 2, 1);
        assert_eq!(phrases.len(), 1);
        assert_eq!(phrases[0].tokens, ids(&[1]));
        assert_eq!(phrases[0].support, 2);
    }

    #[test]
    fn bigrams_require_frequent_parts() {
        // "1 2" occurs in both docs; "3 4" only in one.
        let docs = vec![ids(&[1, 2, 3, 4]), ids(&[1, 2, 5])];
        let phrases = frequent_phrases(&docs, 2, 2);
        let bigrams: Vec<_> = phrases.iter().filter(|p| p.tokens.len() == 2).collect();
        assert_eq!(bigrams.len(), 1);
        assert_eq!(bigrams[0].tokens, ids(&[1, 2]));
    }

    #[test]
    fn trigram_mining() {
        let docs = vec![ids(&[1, 2, 3]), ids(&[0, 1, 2, 3]), ids(&[1, 2, 3, 9])];
        let phrases = frequent_phrases(&docs, 3, 3);
        assert!(phrases.iter().any(|p| p.tokens == ids(&[1, 2, 3])));
    }

    #[test]
    fn support_is_document_level() {
        // Phrase repeated many times in one doc still counts support 1.
        let docs = vec![ids(&[7, 8, 7, 8, 7, 8])];
        let phrases = frequent_phrases(&docs, 1, 2);
        let p = phrases.iter().find(|p| p.tokens == ids(&[7, 8])).unwrap();
        assert_eq!(p.support, 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(frequent_phrases(&[], 1, 3).is_empty());
        assert!(frequent_phrases(&[ids(&[1])], 1, 0).is_empty());
        let none = frequent_phrases(&[ids(&[])], 1, 2);
        assert!(none.is_empty());
    }

    #[test]
    fn find_occurrences_finds_all() {
        let hay = ids(&[1, 2, 1, 2, 1]);
        assert_eq!(find_occurrences(&hay, &ids(&[1, 2])), vec![0, 2]);
        assert_eq!(find_occurrences(&hay, &ids(&[2, 1])), vec![1, 3]);
        assert!(find_occurrences(&hay, &ids(&[9])).is_empty());
        assert!(find_occurrences(&hay, &ids(&[])).is_empty());
    }

    #[test]
    fn ngram_occurrences_counts_tokens() {
        let doc = ids(&[1, 2, 1, 2]);
        let bi = ngram_occurrences(&doc, 2);
        assert_eq!(bi[&ids(&[1, 2])], 2);
        assert_eq!(bi[&ids(&[2, 1])], 1);
    }

    proptest::proptest! {
        /// Apriori downward-closure: every sub-phrase of a reported
        /// frequent phrase must itself be frequent with >= support.
        #[test]
        fn downward_closure(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 0..12), 1..8),
            min_support in 1u32..3,
        ) {
            let docs: Vec<Vec<TermId>> = docs.iter().map(|d| ids(d)).collect();
            let phrases = frequent_phrases(&docs, min_support, 3);
            let by_tokens: HashMap<&[TermId], u32> =
                phrases.iter().map(|p| (p.tokens.as_slice(), p.support)).collect();
            for p in &phrases {
                if p.tokens.len() >= 2 {
                    let left = &p.tokens[..p.tokens.len() - 1];
                    let right = &p.tokens[1..];
                    proptest::prop_assert!(by_tokens.get(left).copied().unwrap_or(0) >= p.support);
                    proptest::prop_assert!(by_tokens.get(right).copied().unwrap_or(0) >= p.support);
                }
            }
        }
    }
}
