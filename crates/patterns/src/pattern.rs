//! Pattern type and regular-pattern construction.
//!
//! A regular pattern is the paper's ⟨left, middle, right⟩ triple: the
//! middle tuple is a significant-term word sequence, the left and right
//! tuples are the word *sets* observed around its occurrences in the
//! context's training papers (window of `window` words each side).

use crate::join;
use crate::score::{regular_pattern_score, total_term_score, RegularScoreInputs, Selectivity};
use crate::sigterms::SignificantPhrase;
use std::collections::{BTreeSet, HashSet};
use textproc::phrase::find_occurrences;
use textproc::TermId;

/// How a pattern was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Directly from a significant phrase's occurrences.
    Regular,
    /// Side-joined from two patterns with right/left tuple overlap.
    SideJoined,
    /// Middle-joined from two patterns with middle/side tuple overlap.
    MiddleJoined,
}

/// One ⟨left, middle, right⟩ pattern with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Word set observed immediately left of the middle.
    pub left: BTreeSet<TermId>,
    /// The middle tuple: a contiguous word sequence.
    pub middle: Vec<TermId>,
    /// Word set observed immediately right of the middle.
    pub right: BTreeSet<TermId>,
    /// Construction kind.
    pub kind: PatternKind,
    /// The pattern's score (unnormalized; context-level max-normalization
    /// happens in the prestige function).
    pub score: f64,
}

/// Configuration for pattern construction.
#[derive(Debug, Clone)]
pub struct PatternConfig {
    /// Words captured on each side of a middle occurrence.
    pub window: usize,
    /// Minimum training-document support for mined frequent phrases.
    pub min_support: u32,
    /// Maximum mined phrase length.
    pub max_phrase_len: usize,
    /// The paper's `t` exponent on `1/PaperCoverage`.
    pub coverage_exponent: f64,
    /// The paper's `c` weight on the frequency terms.
    pub freq_weight: f64,
    /// Keep at most this many regular patterns (best-scored first).
    pub max_regular: usize,
    /// Construct at most this many extended patterns.
    pub max_extended: usize,
}

impl Default for PatternConfig {
    fn default() -> Self {
        Self {
            window: 2,
            min_support: 2,
            max_phrase_len: 4,
            coverage_exponent: 0.35,
            freq_weight: 0.5,
            max_regular: 48,
            max_extended: 32,
        }
    }
}

/// Build the scored pattern set of one context.
///
/// * `significant` — from [`crate::sigterms::extract_significant_terms`],
/// * `context_words` — analyzed context-term name tokens,
/// * `training_docs` — analyzed training-paper token streams,
/// * `selectivity` — word selectivity across all context names,
/// * `coverage_of` — estimator of the fraction of *all database* papers
///   containing a middle tuple (the caller supplies it since only the
///   full corpus index can answer; a min-unigram-DF estimate is fine),
/// * `config` — knobs.
///
/// Regular patterns are built first, then extended patterns are joined
/// from the regular ones ([`crate::join`]). Output is sorted by
/// descending score.
pub fn build_patterns(
    significant: &[SignificantPhrase],
    context_words: &[TermId],
    training_docs: &[Vec<TermId>],
    selectivity: &Selectivity,
    coverage_of: &dyn Fn(&[TermId]) -> f64,
    config: &PatternConfig,
) -> Vec<Pattern> {
    let context_set: HashSet<TermId> = context_words.iter().copied().collect();
    let n_training = training_docs.len();
    let mut patterns: Vec<Pattern> = Vec::with_capacity(significant.len());

    for phrase in significant {
        let mut left = BTreeSet::new();
        let mut right = BTreeSet::new();
        let mut occurrences = 0u32;
        let mut containing_docs = 0u32;
        for doc in training_docs {
            let occs = find_occurrences(doc, &phrase.tokens);
            if !occs.is_empty() {
                containing_docs += 1;
            }
            occurrences += occs.len() as u32;
            for &start in &occs {
                let lo = start.saturating_sub(config.window);
                left.extend(doc[lo..start].iter().copied());
                let end = start + phrase.tokens.len();
                let hi = (end + config.window).min(doc.len());
                right.extend(doc[end..hi].iter().copied());
            }
        }
        let ctx_selectivities: Vec<f64> = phrase
            .tokens
            .iter()
            .filter(|t| context_set.contains(t))
            .map(|&t| selectivity.selectivity(t))
            .collect();
        let inputs = RegularScoreInputs {
            source: phrase.source,
            total_term_score: total_term_score(&ctx_selectivities),
            occurrences,
            training_paper_fraction: if n_training == 0 {
                0.0
            } else {
                containing_docs as f64 / n_training as f64
            },
            coverage: coverage_of(&phrase.tokens),
        };
        patterns.push(Pattern {
            left,
            middle: phrase.tokens.clone(),
            right,
            kind: PatternKind::Regular,
            score: regular_pattern_score(&inputs, config.coverage_exponent, config.freq_weight),
        });
    }

    sort_by_score(&mut patterns);
    patterns.truncate(config.max_regular);

    let extended = join::extend_patterns(&patterns, config.max_extended);
    patterns.extend(extended);
    sort_by_score(&mut patterns);
    patterns
}

pub(crate) fn sort_by_score(patterns: &mut [Pattern]) {
    patterns.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.middle.cmp(&b.middle))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigterms::extract_significant_terms;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn uniform_coverage(_: &[TermId]) -> f64 {
        0.1
    }

    fn build(context: &[u32], docs: &[Vec<TermId>], config: &PatternConfig) -> Vec<Pattern> {
        let ctx = ids(context);
        let sig = extract_significant_terms(&ctx, docs, config.min_support, config.max_phrase_len);
        let sel = Selectivity::new([ctx.as_slice()]);
        build_patterns(&sig, &ctx, docs, &sel, &uniform_coverage, config)
    }

    #[test]
    fn captures_surrounding_windows() {
        // Context word 5 occurs as "... 1 2 [5] 3 4 ..." in training.
        let docs = vec![ids(&[1, 2, 5, 3, 4]), ids(&[9, 1, 5, 3, 8])];
        let ps = build(&[5], &docs, &PatternConfig::default());
        let p = ps
            .iter()
            .find(|p| p.middle == ids(&[5]) && p.kind == PatternKind::Regular)
            .expect("middle [5]");
        assert!(p.left.contains(&TermId(1)));
        assert!(p.left.contains(&TermId(2)));
        assert!(p.right.contains(&TermId(3)));
        assert!(p.right.contains(&TermId(4)));
        assert!(p.right.contains(&TermId(8)));
    }

    #[test]
    fn window_is_bounded() {
        let docs = vec![ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9])];
        let ps = build(
            &[5],
            &docs,
            &PatternConfig {
                window: 1,
                ..Default::default()
            },
        );
        let p = ps.iter().find(|p| p.middle == ids(&[5])).unwrap();
        assert_eq!(p.left.iter().copied().collect::<Vec<_>>(), ids(&[4]));
        assert_eq!(p.right.iter().copied().collect::<Vec<_>>(), ids(&[6]));
    }

    #[test]
    fn patterns_sorted_by_score() {
        let docs = vec![
            ids(&[1, 5, 2, 7, 7]),
            ids(&[1, 5, 3, 7, 7]),
            ids(&[1, 5, 4]),
        ];
        let ps = build(&[5], &docs, &PatternConfig::default());
        for w in ps.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(!ps.is_empty());
    }

    #[test]
    fn context_phrase_without_training_still_patterns() {
        // No training docs at all: the context's own words become a
        // pattern with empty sides — the basis of the paper's
        // "simplified pattern" context assignment (§4).
        let ps = build(&[5, 6], &[], &PatternConfig::default());
        assert!(ps.iter().any(|p| p.middle == ids(&[5, 6])));
        for p in &ps {
            assert!(p.left.is_empty() && p.right.is_empty());
            assert!(p.score > 0.0);
        }
    }

    #[test]
    fn truncation_respects_max_regular() {
        let docs: Vec<Vec<TermId>> = (0..6).map(|i| ids(&[i, i + 1, 5, i + 2, i + 3])).collect();
        let ps = build(
            &[5],
            &docs,
            &PatternConfig {
                max_regular: 2,
                max_extended: 0,
                min_support: 1,
                ..Default::default()
            },
        );
        assert!(ps.len() <= 2);
    }

    #[test]
    fn rarer_context_words_score_higher() {
        // Two contexts sharing selectivity data: word 1 appears in both
        // names, word 2 in one.
        let names = [ids(&[1, 2]), ids(&[1, 3])];
        let sel = Selectivity::new(names.iter().map(Vec::as_slice));
        let docs = vec![ids(&[9, 1, 8]), ids(&[9, 2, 8])];
        let ctx = ids(&[1, 2]);
        let sig = extract_significant_terms(&ctx, &docs, 2, 3);
        let ps = build_patterns(
            &sig,
            &ctx,
            &docs,
            &sel,
            &uniform_coverage,
            &Default::default(),
        );
        let score_of = |mid: &[u32]| {
            ps.iter()
                .find(|p| p.middle == ids(mid))
                .map(|p| p.score)
                .unwrap()
        };
        assert!(
            score_of(&[2]) > score_of(&[1]),
            "more selective context word must outscore"
        );
    }
}
