//! Extended-pattern construction (paper §3.3, ref \[4\]): "by virtually
//! walking from one pattern to another".
//!
//! * **Side-joined**: pattern 1's *right* tuple overlaps pattern 2's
//!   *left* tuple. E.g. P1 = ⟨A,B,C⟩, P2 = ⟨C,D,E⟩ ⇒ P3 = ⟨A, B·C·D, E⟩
//!   — the shared side words become part of a longer middle. Score:
//!   `(S1 + S2)²`.
//! * **Middle-joined**: pattern 1's *middle* overlaps pattern 2's left
//!   or right tuple. The combined pattern keeps P1's middle; its score
//!   is `DOO1·S1 + DOO2·S2`, where each DegreeOfOverlap is the fraction
//!   of that pattern's middle covered by the overlap.

use crate::pattern::{Pattern, PatternKind};
use crate::score::{middle_joined_score, side_joined_score};
use std::collections::BTreeSet;
use textproc::TermId;

/// Construct up to `max_extended` extended patterns from `regular`
/// patterns (best-scored joins kept).
pub fn extend_patterns(regular: &[Pattern], max_extended: usize) -> Vec<Pattern> {
    if max_extended == 0 || regular.len() < 2 {
        return Vec::new();
    }
    let mut out: Vec<Pattern> = Vec::new();
    let mut seen: BTreeSet<Vec<TermId>> = BTreeSet::new();
    for (i, p1) in regular.iter().enumerate() {
        for (j, p2) in regular.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(p) = side_join(p1, p2) {
                if seen.insert(p.middle.clone()) {
                    out.push(p);
                }
            }
            if i < j {
                if let Some(p) = middle_join(p1, p2) {
                    if seen.insert(p.middle.clone()) {
                        out.push(p);
                    }
                }
            }
        }
    }
    crate::pattern::sort_by_score(&mut out);
    out.truncate(max_extended);
    out
}

/// Side-join `p1` and `p2` if `p1.right ∩ p2.left ≠ ∅`: the new middle
/// is `p1.middle · shared · p2.middle` (shared words in sorted order),
/// left from `p1`, right from `p2`.
pub fn side_join(p1: &Pattern, p2: &Pattern) -> Option<Pattern> {
    if p1.middle == p2.middle {
        return None;
    }
    let shared: Vec<TermId> = p1.right.intersection(&p2.left).copied().collect();
    if shared.is_empty() {
        return None;
    }
    let mut middle = Vec::with_capacity(p1.middle.len() + shared.len() + p2.middle.len());
    middle.extend_from_slice(&p1.middle);
    middle.extend(shared);
    middle.extend_from_slice(&p2.middle);
    Some(Pattern {
        left: p1.left.clone(),
        middle,
        right: p2.right.clone(),
        kind: PatternKind::SideJoined,
        score: side_joined_score(p1.score, p2.score),
    })
}

/// Middle-join `p1` and `p2` if `p1.middle` overlaps `p2.left ∪
/// p2.right`: keeps the union middle ordered as p1's middle followed by
/// p2's non-shared middle, sides unioned; score weighted by the degrees
/// of overlap.
pub fn middle_join(p1: &Pattern, p2: &Pattern) -> Option<Pattern> {
    if p1.middle == p2.middle || p1.middle.is_empty() || p2.middle.is_empty() {
        return None;
    }
    let m1: BTreeSet<TermId> = p1.middle.iter().copied().collect();
    let sides2: BTreeSet<TermId> = p2.left.union(&p2.right).copied().collect();
    let overlap1: Vec<TermId> = m1.intersection(&sides2).copied().collect();
    if overlap1.is_empty() {
        return None;
    }
    // Symmetric degree for p2: its middle's overlap with p1's sides.
    let m2: BTreeSet<TermId> = p2.middle.iter().copied().collect();
    let sides1: BTreeSet<TermId> = p1.left.union(&p1.right).copied().collect();
    let overlap2: Vec<TermId> = m2.intersection(&sides1).copied().collect();

    let doo1 = overlap1.len() as f64 / p1.middle.len() as f64;
    let doo2 = overlap2.len() as f64 / p2.middle.len() as f64;

    let mut middle = p1.middle.clone();
    middle.extend(p2.middle.iter().filter(|t| !m1.contains(t)));
    Some(Pattern {
        left: p1.left.union(&p2.left).copied().collect(),
        middle,
        right: p1.right.union(&p2.right).copied().collect(),
        kind: PatternKind::MiddleJoined,
        score: middle_joined_score(p1.score, doo1.min(1.0), p2.score, doo2.min(1.0)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn set(xs: &[u32]) -> BTreeSet<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn pat(left: &[u32], middle: &[u32], right: &[u32], score: f64) -> Pattern {
        Pattern {
            left: set(left),
            middle: ids(middle),
            right: set(right),
            kind: PatternKind::Regular,
            score,
        }
    }

    #[test]
    fn side_join_on_overlap() {
        let p1 = pat(&[1], &[2], &[3], 2.0);
        let p2 = pat(&[3], &[4], &[5], 3.0);
        let j = side_join(&p1, &p2).expect("should join");
        assert_eq!(j.middle, ids(&[2, 3, 4]));
        assert_eq!(j.left, set(&[1]));
        assert_eq!(j.right, set(&[5]));
        assert_eq!(j.kind, PatternKind::SideJoined);
        assert_eq!(j.score, 25.0);
    }

    #[test]
    fn side_join_requires_overlap() {
        let p1 = pat(&[1], &[2], &[3], 1.0);
        let p2 = pat(&[9], &[4], &[5], 1.0);
        assert!(side_join(&p1, &p2).is_none());
    }

    #[test]
    fn side_join_rejects_identical_middles() {
        let p1 = pat(&[1], &[2], &[3], 1.0);
        let p2 = pat(&[3], &[2], &[5], 1.0);
        assert!(side_join(&p1, &p2).is_none());
    }

    #[test]
    fn middle_join_on_middle_side_overlap() {
        // p1's middle {2} appears in p2's left tuple.
        let p1 = pat(&[1], &[2], &[3], 4.0);
        let p2 = pat(&[2], &[7], &[8], 6.0);
        let j = middle_join(&p1, &p2).expect("should join");
        assert_eq!(j.kind, PatternKind::MiddleJoined);
        assert_eq!(j.middle, ids(&[2, 7]));
        // doo1 = 1/1 = 1; doo2 = overlap of {7} with p1 sides {1,3} = 0.
        assert_eq!(j.score, 4.0);
    }

    #[test]
    fn middle_join_requires_overlap() {
        let p1 = pat(&[1], &[2], &[3], 1.0);
        let p2 = pat(&[9], &[7], &[8], 1.0);
        assert!(middle_join(&p1, &p2).is_none());
    }

    #[test]
    fn extend_respects_cap_and_dedupes() {
        let ps = vec![
            pat(&[1], &[2], &[3], 2.0),
            pat(&[3], &[4], &[5], 3.0),
            pat(&[5], &[6], &[7], 1.0),
        ];
        let ext = extend_patterns(&ps, 10);
        assert!(!ext.is_empty());
        let mut middles: Vec<&Vec<TermId>> = ext.iter().map(|p| &p.middle).collect();
        let before = middles.len();
        middles.dedup();
        assert_eq!(middles.len(), before, "deduped middles");
        let capped = extend_patterns(&ps, 1);
        assert_eq!(capped.len(), 1);
        // best-scored join kept
        assert!(capped[0].score >= ext.iter().map(|p| p.score).fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn extend_empty_or_single_is_empty() {
        assert!(extend_patterns(&[], 5).is_empty());
        assert!(extend_patterns(&[pat(&[1], &[2], &[3], 1.0)], 5).is_empty());
    }
}
