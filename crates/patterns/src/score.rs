//! Pattern scoring (paper §3.3).
//!
//! Regular patterns: `RegularPatternScore = BaseScore · (1/PaperCoverage)^t`
//! with `BaseScore = MiddleTypeScore + TotalTermScore +
//! c·(PatternOccFreq + PatternPaperFreq)`:
//!
//! * **MiddleTypeScore** — middles of only frequent terms, only
//!   context-term words, or both score high / higher / highest,
//! * **TotalTermScore** — context-term words with higher *selectivity*
//!   (rarer across all context term names) score higher,
//! * **PaperCoverage** — a middle frequent across the whole database is
//!   unspecific; score is inversely proportional to coverage,
//! * **PatternOccFreq / PatternPaperFreq** — middles frequent in the
//!   context's own training papers score higher.
//!
//! Extended patterns: side-joined score `(S1 + S2)²`; middle-joined
//! score `DOO1·S1 + DOO2·S2` with DegreeOfOverlap the proportion of a
//! pattern's middle included in the other's side tuple.

use crate::sigterms::PhraseSource;
use std::collections::HashMap;
use textproc::TermId;

/// Word selectivity across all context term names: a word occurring in
/// few term names is highly selective.
#[derive(Debug, Clone, Default)]
pub struct Selectivity {
    counts: HashMap<TermId, u32>,
    n_names: usize,
}

impl Selectivity {
    /// Build from the analyzed name-token lists of every context term.
    pub fn new<'a>(term_names: impl IntoIterator<Item = &'a [TermId]>) -> Self {
        let mut counts: HashMap<TermId, u32> = HashMap::new();
        let mut n_names = 0usize;
        for name in term_names {
            n_names += 1;
            let distinct: std::collections::HashSet<TermId> = name.iter().copied().collect();
            for w in distinct {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        Self { counts, n_names }
    }

    /// Number of term names the word occurs in.
    pub fn name_count(&self, word: TermId) -> u32 {
        self.counts.get(&word).copied().unwrap_or(0)
    }

    /// Selectivity in (0, 1]: `1 / max(1, name_count)`. A word in every
    /// term name is minimally selective; a word in one name (or none —
    /// conservatively treated as unique) is maximally selective.
    pub fn selectivity(&self, word: TermId) -> f64 {
        1.0 / self.name_count(word).max(1) as f64
    }

    /// Number of names observed.
    pub fn n_names(&self) -> usize {
        self.n_names
    }
}

/// The paper's "high / higher / highest" middle-type scores.
pub fn middle_type_score(source: PhraseSource) -> f64 {
    match source {
        PhraseSource::FrequentOnly => 1.0,
        PhraseSource::ContextOnly => 2.0,
        PhraseSource::Both => 3.0,
    }
}

/// `TotalTermScore`: summed selectivity of the middle's context-term
/// words. `context_word_selectivities` are the selectivities of exactly
/// those middle words that are context-term words.
pub fn total_term_score(context_word_selectivities: &[f64]) -> f64 {
    context_word_selectivities.iter().sum()
}

/// Inputs for a regular pattern's score.
#[derive(Debug, Clone, Copy)]
pub struct RegularScoreInputs {
    /// Middle composition class.
    pub source: PhraseSource,
    /// Summed selectivity of middle context words.
    pub total_term_score: f64,
    /// Occurrences of the middle in the training papers.
    pub occurrences: u32,
    /// Fraction of training papers containing the middle, in [0, 1].
    pub training_paper_fraction: f64,
    /// Fraction of *all database* papers containing the middle, in
    /// (0, 1]; callers clamp to at least `1/N`.
    pub coverage: f64,
}

/// `RegularPatternScore = BaseScore · (1/PaperCoverage)^t` with
/// `BaseScore = MiddleTypeScore + TotalTermScore + c·(OccFreq + PaperFreq)`.
///
/// `PatternOccFreq` is saturated as `occ/(occ+3)` so one spammy
/// training paper cannot dominate.
pub fn regular_pattern_score(inputs: &RegularScoreInputs, t: f64, c: f64) -> f64 {
    let occ_freq = inputs.occurrences as f64 / (inputs.occurrences as f64 + 3.0);
    let base = middle_type_score(inputs.source)
        + inputs.total_term_score
        + c * (occ_freq + inputs.training_paper_fraction);
    let coverage = inputs.coverage.clamp(f64::MIN_POSITIVE, 1.0);
    base * (1.0 / coverage).powf(t)
}

/// Side-joined pattern score: `(Score(P1) + Score(P2))²`.
pub fn side_joined_score(s1: f64, s2: f64) -> f64 {
    let s = s1 + s2;
    s * s
}

/// Middle-joined pattern score: `DOO1·S1 + DOO2·S2`.
pub fn middle_joined_score(s1: f64, doo1: f64, s2: f64, doo2: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&doo1) && (0.0..=1.0).contains(&doo2));
    doo1 * s1 + doo2 * s2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    #[test]
    fn selectivity_inverse_to_name_frequency() {
        let names = [ids(&[1, 2]), ids(&[1, 3]), ids(&[1, 4])];
        let s = Selectivity::new(names.iter().map(Vec::as_slice));
        assert_eq!(s.name_count(TermId(1)), 3);
        assert!((s.selectivity(TermId(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.selectivity(TermId(2)), 1.0);
        assert_eq!(s.selectivity(TermId(99)), 1.0); // unseen = unique
    }

    #[test]
    fn middle_type_ordering_matches_paper() {
        assert!(
            middle_type_score(PhraseSource::FrequentOnly)
                < middle_type_score(PhraseSource::ContextOnly)
        );
        assert!(
            middle_type_score(PhraseSource::ContextOnly) < middle_type_score(PhraseSource::Both)
        );
    }

    #[test]
    fn low_coverage_boosts_score() {
        let base = RegularScoreInputs {
            source: PhraseSource::Both,
            total_term_score: 1.0,
            occurrences: 5,
            training_paper_fraction: 0.5,
            coverage: 0.5,
        };
        let rare = RegularScoreInputs {
            coverage: 0.01,
            ..base
        };
        assert!(regular_pattern_score(&rare, 0.35, 0.5) > regular_pattern_score(&base, 0.35, 0.5));
    }

    #[test]
    fn training_frequency_boosts_score() {
        let lo = RegularScoreInputs {
            source: PhraseSource::ContextOnly,
            total_term_score: 0.5,
            occurrences: 1,
            training_paper_fraction: 0.1,
            coverage: 0.1,
        };
        let hi = RegularScoreInputs {
            occurrences: 20,
            training_paper_fraction: 0.9,
            ..lo
        };
        assert!(regular_pattern_score(&hi, 0.35, 0.5) > regular_pattern_score(&lo, 0.35, 0.5));
    }

    #[test]
    fn zero_exponent_ignores_coverage() {
        let a = RegularScoreInputs {
            source: PhraseSource::ContextOnly,
            total_term_score: 0.0,
            occurrences: 0,
            training_paper_fraction: 0.0,
            coverage: 0.001,
        };
        let b = RegularScoreInputs { coverage: 1.0, ..a };
        assert!(
            (regular_pattern_score(&a, 0.0, 0.5) - regular_pattern_score(&b, 0.0, 0.5)).abs()
                < 1e-12
        );
    }

    #[test]
    fn side_join_is_superadditive() {
        assert_eq!(side_joined_score(2.0, 3.0), 25.0);
        assert!(side_joined_score(2.0, 3.0) > 2.0 + 3.0);
    }

    #[test]
    fn middle_join_weights_by_overlap() {
        assert_eq!(middle_joined_score(10.0, 0.5, 4.0, 1.0), 9.0);
        assert_eq!(middle_joined_score(10.0, 0.0, 4.0, 0.0), 0.0);
    }

    #[test]
    fn total_term_score_sums() {
        assert_eq!(total_term_score(&[0.5, 0.25]), 0.75);
        assert_eq!(total_term_score(&[]), 0.0);
    }
}
