//! Pattern ↔ paper matching and the pattern-based paper score.
//!
//! Paper §3.3: `Score(P) = Σ_{pt ∈ Ptr(P)} Score(pt) · M(P, pt)` where
//! `Ptr(P)` are the patterns matching paper `P`, and the matching
//! strength `M(P, pt)` is influenced by (1) the paper *section*
//! containing the match and (2) the similarity between the pattern and
//! the matching phrase — here, the fidelity of the words surrounding
//! the occurrence to the pattern's left/right tuples.

use crate::pattern::Pattern;
use std::collections::HashSet;
use textproc::phrase::find_occurrences;
use textproc::TermId;

/// A paper's sections as token streams, in the shape the matcher needs.
#[derive(Debug, Clone, Copy)]
pub struct SectionTokens<'a> {
    /// Title tokens.
    pub title: &'a [TermId],
    /// Abstract tokens.
    pub abstract_text: &'a [TermId],
    /// Body tokens.
    pub body: &'a [TermId],
    /// Index-term tokens.
    pub index_terms: &'a [TermId],
}

impl<'a> SectionTokens<'a> {
    fn all(&self) -> [(&'a [TermId], f64); 4] {
        [
            (self.title, 0.0),
            (self.abstract_text, 0.0),
            (self.body, 0.0),
            (self.index_terms, 0.0),
        ]
    }
}

/// Matching configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Section weights: a title or index-term match signals more than a
    /// body mention. Order: title, abstract, body, index terms.
    pub section_weights: [f64; 4],
    /// Words inspected on each side of an occurrence for left/right
    /// tuple fidelity.
    pub window: usize,
    /// Weight of surrounding-context fidelity inside `M` (0 ⇒ only the
    /// section matters, 1 ⇒ only fidelity).
    pub context_weight: f64,
    /// The simplified §4 variant: match middles only, ignoring
    /// left/right tuples entirely (used for the pattern-based context
    /// paper set).
    pub middle_only: bool,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            section_weights: [1.0, 0.75, 0.5, 0.9],
            window: 2,
            context_weight: 0.4,
            middle_only: false,
        }
    }
}

/// Matching strength `M(P, pt)` of one pattern against one paper: the
/// best occurrence quality across all sections, 0.0 if the pattern's
/// middle never occurs.
pub fn match_strength(
    pattern: &Pattern,
    sections: &SectionTokens<'_>,
    config: &MatcherConfig,
) -> f64 {
    let mut sections_arr = sections.all();
    for (i, w) in config.section_weights.iter().enumerate() {
        sections_arr[i].1 = *w;
    }
    let mut best = 0.0f64;
    for (tokens, weight) in sections_arr {
        if weight <= 0.0 || tokens.len() < pattern.middle.len() {
            continue;
        }
        for start in find_occurrences(tokens, &pattern.middle) {
            let fidelity = if config.middle_only {
                1.0
            } else {
                side_fidelity(pattern, tokens, start, config.window)
            };
            let quality =
                weight * ((1.0 - config.context_weight) + config.context_weight * fidelity);
            if quality > best {
                best = quality;
            }
        }
    }
    best
}

/// Fraction of the pattern's side words observed around the occurrence
/// (1.0 when the pattern has no side words).
fn side_fidelity(pattern: &Pattern, tokens: &[TermId], start: usize, window: usize) -> f64 {
    let n_side = pattern.left.len() + pattern.right.len();
    if n_side == 0 {
        return 1.0;
    }
    let lo = start.saturating_sub(window);
    let end = start + pattern.middle.len();
    let hi = (end + window).min(tokens.len());
    let left_window: HashSet<TermId> = tokens[lo..start].iter().copied().collect();
    let right_window: HashSet<TermId> = tokens[end..hi].iter().copied().collect();
    let hit = pattern
        .left
        .iter()
        .filter(|t| left_window.contains(t))
        .count()
        + pattern
            .right
            .iter()
            .filter(|t| right_window.contains(t))
            .count();
    hit as f64 / n_side as f64
}

/// The paper's pattern-based score of one paper against one context's
/// pattern set: `Σ Score(pt) · M(P, pt)`.
pub fn score_paper(
    patterns: &[Pattern],
    sections: &SectionTokens<'_>,
    config: &MatcherConfig,
) -> f64 {
    patterns
        .iter()
        .map(|pt| {
            let m = match_strength(pt, sections, config);
            if m > 0.0 {
                pt.score * m
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use std::collections::BTreeSet;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn set(xs: &[u32]) -> BTreeSet<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    fn pat(left: &[u32], middle: &[u32], right: &[u32], score: f64) -> Pattern {
        Pattern {
            left: set(left),
            middle: ids(middle),
            right: set(right),
            kind: PatternKind::Regular,
            score,
        }
    }

    fn sections<'a>(
        title: &'a [TermId],
        abstract_text: &'a [TermId],
        body: &'a [TermId],
        index_terms: &'a [TermId],
    ) -> SectionTokens<'a> {
        SectionTokens {
            title,
            abstract_text,
            body,
            index_terms,
        }
    }

    #[test]
    fn no_occurrence_means_zero() {
        let p = pat(&[], &[5], &[], 2.0);
        let t = ids(&[1, 2, 3]);
        let s = sections(&t, &t, &t, &t);
        assert_eq!(match_strength(&p, &s, &MatcherConfig::default()), 0.0);
        assert_eq!(score_paper(&[p], &s, &MatcherConfig::default()), 0.0);
    }

    #[test]
    fn title_match_beats_body_match() {
        let p = pat(&[], &[5], &[], 2.0);
        let title = ids(&[5]);
        let body = ids(&[5]);
        let empty = ids(&[]);
        let cfg = MatcherConfig::default();
        let title_hit = match_strength(&p, &sections(&title, &empty, &empty, &empty), &cfg);
        let body_hit = match_strength(&p, &sections(&empty, &empty, &body, &empty), &cfg);
        assert!(title_hit > body_hit);
    }

    #[test]
    fn side_fidelity_raises_strength() {
        let p = pat(&[1], &[5], &[2], 1.0);
        let with_context = ids(&[1, 5, 2]);
        let without = ids(&[8, 5, 9]);
        let empty = ids(&[]);
        let cfg = MatcherConfig::default();
        let hi = match_strength(&p, &sections(&with_context, &empty, &empty, &empty), &cfg);
        let lo = match_strength(&p, &sections(&without, &empty, &empty, &empty), &cfg);
        assert!(hi > lo, "{hi} vs {lo}");
        assert!(lo > 0.0, "middle-only match still counts some");
    }

    #[test]
    fn middle_only_mode_ignores_sides() {
        let p = pat(&[1], &[5], &[2], 1.0);
        let without = ids(&[8, 5, 9]);
        let empty = ids(&[]);
        let cfg = MatcherConfig {
            middle_only: true,
            ..Default::default()
        };
        let m = match_strength(&p, &sections(&without, &empty, &empty, &empty), &cfg);
        assert_eq!(m, cfg.section_weights[0]);
    }

    #[test]
    fn score_paper_sums_weighted_scores() {
        let p1 = pat(&[], &[5], &[], 2.0);
        let p2 = pat(&[], &[6], &[], 3.0);
        let p3 = pat(&[], &[99], &[], 100.0); // never matches
        let title = ids(&[5, 6]);
        let empty = ids(&[]);
        let cfg = MatcherConfig {
            section_weights: [1.0, 0.0, 0.0, 0.0],
            context_weight: 0.0,
            ..Default::default()
        };
        let s = score_paper(
            &[p1, p2, p3],
            &sections(&title, &empty, &empty, &empty),
            &cfg,
        );
        assert!((s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn multi_word_middles_match_contiguously() {
        let p = pat(&[], &[5, 6], &[], 1.0);
        let has = ids(&[4, 5, 6, 7]);
        let scattered = ids(&[5, 9, 6]);
        let empty = ids(&[]);
        let cfg = MatcherConfig::default();
        assert!(match_strength(&p, &sections(&has, &empty, &empty, &empty), &cfg) > 0.0);
        assert_eq!(
            match_strength(&p, &sections(&scattered, &empty, &empty, &empty), &cfg),
            0.0
        );
    }

    #[test]
    fn empty_pattern_set_scores_zero() {
        let t = ids(&[1]);
        let s = sections(&t, &t, &t, &t);
        assert_eq!(score_paper(&[], &s, &MatcherConfig::default()), 0.0);
    }
}
