//! Significant-term extraction (paper §3.3, pattern-construction phase).
//!
//! "Significant terms are constructed from two sources: (i) words in
//! the context term, and (ii) frequent terms (phrases) in the training
//! papers. During the frequent phrase construction, significant terms
//! from each source are combined using a procedure similar to the
//! apriori algorithm."
//!
//! We mine frequent contiguous phrases from the training papers with
//! the apriori-style miner in [`textproc::phrase`], keep the context
//! term's word sequence (and its individual content words) as
//! significant regardless of support, and tag every phrase with its
//! source — the tag drives `MiddleTypeScore` later.

use std::collections::HashSet;
use textproc::phrase::frequent_phrases;
use textproc::TermId;

/// Where a significant phrase's words come from (determines
/// `MiddleTypeScore`: frequent-only < context-only < both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhraseSource {
    /// Only frequent-in-training-papers words.
    FrequentOnly,
    /// Only words of the context term's name.
    ContextOnly,
    /// A mix of both (the strongest signal).
    Both,
}

/// One significant term (phrase) of a context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignificantPhrase {
    /// Contiguous token sequence (length ≥ 1).
    pub tokens: Vec<TermId>,
    /// Source classification.
    pub source: PhraseSource,
    /// Document-level support in the training papers (0 for context
    /// name phrases that never occur there).
    pub support: u32,
}

/// Extract the significant phrases of a context.
///
/// `context_words` is the analyzed token sequence of the context term's
/// name; `training_docs` are the analyzed token streams of its training
/// papers. Frequent phrases need `min_support` training documents;
/// phrases longer than `max_phrase_len` are not mined.
pub fn extract_significant_terms(
    context_words: &[TermId],
    training_docs: &[Vec<TermId>],
    min_support: u32,
    max_phrase_len: usize,
) -> Vec<SignificantPhrase> {
    let context_set: HashSet<TermId> = context_words.iter().copied().collect();
    let mut out: Vec<SignificantPhrase> = Vec::new();
    let mut seen: HashSet<Vec<TermId>> = HashSet::new();

    // Source (ii): frequent phrases from training papers, classified by
    // their overlap with the context words.
    for fp in frequent_phrases(training_docs, min_support, max_phrase_len) {
        let n_ctx = fp.tokens.iter().filter(|t| context_set.contains(t)).count();
        let source = if n_ctx == 0 {
            PhraseSource::FrequentOnly
        } else if n_ctx == fp.tokens.len() {
            PhraseSource::ContextOnly
        } else {
            PhraseSource::Both
        };
        if seen.insert(fp.tokens.clone()) {
            out.push(SignificantPhrase {
                tokens: fp.tokens,
                source,
                support: fp.support,
            });
        }
    }

    // Source (i): the context term's own word sequence and words are
    // significant even without training support.
    if !context_words.is_empty() && seen.insert(context_words.to_vec()) {
        out.push(SignificantPhrase {
            tokens: context_words.to_vec(),
            source: PhraseSource::ContextOnly,
            support: count_docs_containing(training_docs, context_words),
        });
    }
    for &w in &context_set {
        let phrase = vec![w];
        if seen.insert(phrase.clone()) {
            out.push(SignificantPhrase {
                support: count_docs_containing(training_docs, &phrase),
                tokens: phrase,
                source: PhraseSource::ContextOnly,
            });
        }
    }
    out
}

fn count_docs_containing(docs: &[Vec<TermId>], phrase: &[TermId]) -> u32 {
    docs.iter()
        .filter(|d| !textproc::phrase::find_occurrences(d, phrase).is_empty())
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<TermId> {
        xs.iter().map(|&x| TermId(x)).collect()
    }

    #[test]
    fn context_words_always_significant() {
        let sig = extract_significant_terms(&ids(&[1, 2]), &[], 2, 3);
        // full phrase [1,2] + words [1], [2]
        assert!(sig.iter().any(|p| p.tokens == ids(&[1, 2])));
        assert!(sig.iter().any(|p| p.tokens == ids(&[1])));
        assert!(sig.iter().any(|p| p.tokens == ids(&[2])));
        assert!(sig.iter().all(|p| p.source == PhraseSource::ContextOnly));
    }

    #[test]
    fn frequent_phrases_get_classified() {
        // Context words {1}. Training docs make [1,5] and [7,8] frequent.
        let docs = vec![ids(&[1, 5, 7, 8]), ids(&[1, 5, 7, 8])];
        let sig = extract_significant_terms(&ids(&[1]), &docs, 2, 2);
        let find = |toks: &[u32]| {
            sig.iter()
                .find(|p| p.tokens == ids(toks))
                .unwrap_or_else(|| panic!("missing {toks:?}"))
        };
        assert_eq!(find(&[1, 5]).source, PhraseSource::Both);
        assert_eq!(find(&[7, 8]).source, PhraseSource::FrequentOnly);
        assert_eq!(find(&[1]).source, PhraseSource::ContextOnly);
        assert_eq!(find(&[1, 5]).support, 2);
    }

    #[test]
    fn support_counted_for_context_phrases() {
        let docs = vec![ids(&[1, 2, 9]), ids(&[9, 9])];
        let sig = extract_significant_terms(&ids(&[1, 2]), &docs, 5, 3);
        let full = sig.iter().find(|p| p.tokens == ids(&[1, 2])).unwrap();
        assert_eq!(full.support, 1);
    }

    #[test]
    fn no_duplicate_phrases() {
        let docs = vec![ids(&[1, 1, 1]), ids(&[1])];
        let sig = extract_significant_terms(&ids(&[1]), &docs, 1, 2);
        let mut seen = HashSet::new();
        for p in &sig {
            assert!(seen.insert(p.tokens.clone()), "dup {:?}", p.tokens);
        }
    }

    #[test]
    fn empty_context_and_docs() {
        let sig = extract_significant_terms(&[], &[], 1, 3);
        assert!(sig.is_empty());
    }
}
