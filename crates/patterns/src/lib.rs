//! Textual-pattern substrate for the pattern-based prestige score
//! function (paper §3.3, drawing on the authors' PSB 2007 pattern
//! annotation work, paper ref \[4\]).
//!
//! Pipeline per context:
//!
//! 1. [`sigterms`] — extract *significant terms*: words of the context
//!    term's name plus frequent phrases mined from the context's
//!    training (annotation-evidence) papers, combined apriori-style.
//! 2. [`pattern`] — construct regular ⟨left, middle, right⟩ patterns
//!    around significant-term occurrences in the training papers.
//! 3. [`join`] — derive *extended* patterns: side-joined (right/left
//!    tuple overlap) and middle-joined (middle/side tuple overlap).
//! 4. [`score`] — score patterns: `BaseScore · (1/PaperCoverage)^t`
//!    with `BaseScore = MiddleTypeScore + TotalTermScore +
//!    c·(PatternOccFreq + PatternPaperFreq)`; `(S1+S2)²` for
//!    side-joined; DegreeOfOverlap-weighted for middle-joined.
//! 5. [`matcher`] — match patterns against a paper's sections and
//!    compute the matching strength `M(P, pt)` (section weight ×
//!    surrounding-context fidelity), giving
//!    `Score(P) = Σ_{pt∈Ptr(P)} Score(pt) · M(P, pt)`.

pub mod join;
pub mod matcher;
pub mod pattern;
pub mod score;
pub mod sigterms;

pub use matcher::{score_paper, MatcherConfig, SectionTokens};
pub use pattern::{build_patterns, Pattern, PatternConfig, PatternKind};
pub use score::Selectivity;
pub use sigterms::{extract_significant_terms, PhraseSource, SignificantPhrase};
