//! Prepared corpus state shared by every stage of the paradigm:
//! per-section and whole-paper TF-IDF vectors, the inverted index that
//! backs both the keyword-search baseline and pattern-candidate
//! generation, the citation graph with a global PageRank, co-author
//! adjacency, and the analyzed ontology-term names.

use crate::config::TextSimWeights;
use citegraph::{pagerank, CitationGraph, PageRankConfig};
use corpus::{AuthorId, Corpus, PaperId, Section};
use ontology::Ontology;
use patterns::Selectivity;
use std::collections::{HashMap, HashSet};
use textproc::index::{DocId, InvertedIndex};
use textproc::{CandidateScratch, SparseVector, TermId, TfIdfModel};

/// Immutable prepared state over one (ontology, corpus) pair.
pub struct CorpusIndex {
    /// Whole-paper TF-IDF model (title+abstract+body+index terms).
    pub model: TfIdfModel,
    /// Unit-norm whole-paper vectors, by paper id.
    pub doc_vectors: Vec<SparseVector>,
    /// Inverted index over the whole-paper vectors.
    pub inverted: InvertedIndex,
    /// Per-section TF-IDF models, indexed by [`section_index`].
    pub section_models: [TfIdfModel; 4],
    /// Per-section unit-norm vectors, `section_vectors[s][paper]`.
    pub section_vectors: [Vec<SparseVector>; 4],
    /// The corpus citation graph (node i == paper i).
    pub graph: CitationGraph,
    /// Global (whole-corpus) PageRank as a probability distribution
    /// (used by the AC-answer citation expansion's quantile cut).
    pub global_pagerank: Vec<f64>,
    /// Co-author adjacency (excluding self).
    pub coauthors: HashMap<AuthorId, HashSet<AuthorId>>,
    /// Analyzed term-name tokens per ontology term (corpus vocabulary).
    pub term_name_tokens: Vec<Vec<TermId>>,
    /// Sorted, deduped name tokens per term — the prepared column
    /// behind context selection, so the query path never re-sorts a
    /// name.
    pub name_terms_sorted: Vec<Vec<TermId>>,
    /// IDF mass of each term's name, summed in ascending term order at
    /// build time (bit-identical to summing the sorted tokens per
    /// query, which is what selection used to do).
    pub name_idf_mass: Vec<f64>,
    /// Word selectivity across all term names (§3.3 TotalTermScore).
    pub selectivity: Selectivity,
}

/// Dense index of a [`Section`] into the per-section arrays.
pub fn section_index(section: Section) -> usize {
    match section {
        Section::Title => 0,
        Section::Abstract => 1,
        Section::Body => 2,
        Section::IndexTerms => 3,
    }
}

impl CorpusIndex {
    /// Build all prepared state. The heavyweight step of engine
    /// construction — everything after this is per-context work.
    pub fn build(ontology: &Ontology, corpus: &Corpus, pagerank_cfg: &PageRankConfig) -> Self {
        let _span = obs::span("index.build");
        let n = corpus.len();

        // Whole-paper model + vectors + index.
        let (model, doc_vectors, inverted) = {
            let _s = obs::span("index.tfidf_whole");
            let concat_docs: Vec<Vec<TermId>> = corpus
                .paper_ids()
                .map(|id| corpus.analyzed(id).concat())
                .collect();
            let model = TfIdfModel::fit(concat_docs.iter().map(Vec::as_slice));
            let doc_vectors: Vec<SparseVector> = concat_docs
                .iter()
                .map(|d| model.vectorize_normalized(d))
                .collect();
            let inverted = InvertedIndex::build(&doc_vectors);
            (model, doc_vectors, inverted)
        };

        // Per-section models + vectors.
        let _sections = obs::span("index.tfidf_sections");
        let mut section_models: Vec<TfIdfModel> = Vec::with_capacity(4);
        let mut section_vectors: Vec<Vec<SparseVector>> = Vec::with_capacity(4);
        for section in Section::ALL {
            let docs: Vec<&[TermId]> = corpus
                .paper_ids()
                .map(|id| corpus.analyzed(id).section(section))
                .collect();
            let m = TfIdfModel::fit(docs.iter().copied());
            let vecs: Vec<SparseVector> = docs.iter().map(|d| m.vectorize_normalized(d)).collect();
            section_models.push(m);
            section_vectors.push(vecs);
        }
        let section_models: [TfIdfModel; 4] = section_models
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly four sections"));
        let section_vectors: [Vec<SparseVector>; 4] = section_vectors
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly four sections"));
        drop(_sections);

        // Citations.
        let (graph, global_pagerank) = {
            let _s = obs::span("index.citation_graph");
            let graph = CitationGraph::from_edges(n as u32, &corpus.citation_edges());
            let global_pagerank = pagerank(&graph, pagerank_cfg).scores;
            (graph, global_pagerank)
        };

        // Co-authors.
        let _aux = obs::span("index.aux_tables");
        let mut coauthors: HashMap<AuthorId, HashSet<AuthorId>> = HashMap::new();
        for p in corpus.papers() {
            for &a in &p.authors {
                for &b in &p.authors {
                    if a != b {
                        coauthors.entry(a).or_default().insert(b);
                    }
                }
            }
        }

        // Term names (analyzed against the corpus vocabulary, which
        // interned them at corpus build).
        let term_name_tokens: Vec<Vec<TermId>> = ontology
            .term_ids()
            .map(|t| corpus.analyze_known(&ontology.term(t).name))
            .collect();
        let selectivity = Selectivity::new(term_name_tokens.iter().map(Vec::as_slice));
        let name_terms_sorted: Vec<Vec<TermId>> = term_name_tokens
            .iter()
            .map(|name| {
                let mut terms = name.clone();
                terms.sort_unstable();
                terms.dedup();
                terms
            })
            .collect();
        let name_idf_mass: Vec<f64> = name_terms_sorted
            .iter()
            .map(|terms| terms.iter().map(|&t| model.idf(t)).sum())
            .collect();
        drop(_aux);

        Self {
            model,
            doc_vectors,
            inverted,
            section_models,
            section_vectors,
            graph,
            global_pagerank,
            coauthors,
            term_name_tokens,
            name_terms_sorted,
            name_idf_mass,
            selectivity,
        }
    }

    /// Unit-norm query vector over the whole-paper model (unknown words
    /// dropped).
    pub fn query_vector(&self, corpus: &Corpus, text: &str) -> SparseVector {
        let ids = corpus.analyze_known(text);
        self.model.vectorize_normalized(&ids)
    }

    /// Keyword search (the PubMed-style baseline): cosine scores above
    /// `min_score`, descending.
    pub fn keyword_search(&self, query: &SparseVector, min_score: f64) -> Vec<(PaperId, f64)> {
        self.inverted
            .search(query, min_score)
            .into_iter()
            .map(|(DocId(d), s)| (PaperId(d), s))
            .collect()
    }

    /// Columnar keyword search into a reusable scratch: candidate doc
    /// ids ascending, scores parallel. Same candidate set and score
    /// bits as [`keyword_search`](Self::keyword_search), minus the
    /// descending sort (the caller's ranking stage replaces it) and
    /// the per-call allocation.
    pub fn keyword_search_columns(
        &self,
        query: &SparseVector,
        min_score: f64,
        scratch: &mut CandidateScratch,
    ) {
        self.inverted.search_columns(query, min_score, scratch);
    }

    /// Whole-paper cosine between a paper and an arbitrary unit vector.
    pub fn whole_cosine(&self, paper: PaperId, v: &SparseVector) -> f64 {
        self.doc_vectors[paper.index()].cosine(v)
    }

    /// Per-section cosine between two papers.
    pub fn section_cosine(&self, section: Section, a: PaperId, b: PaperId) -> f64 {
        let vecs = &self.section_vectors[section_index(section)];
        vecs[a.index()].cosine(&vecs[b.index()])
    }

    /// Estimated fraction of corpus papers containing a middle tuple:
    /// the minimum unigram document frequency of its words (an upper
    /// bound on the phrase frequency, adequate for the `(1/coverage)^t`
    /// boost). Floor `1/N` keeps the score finite.
    pub fn coverage_estimate(&self, middle: &[TermId]) -> f64 {
        let n = self.doc_vectors.len().max(1) as f64;
        let min_df = middle.iter().map(|&t| self.model.df(t)).min().unwrap_or(0) as f64;
        (min_df.max(1.0)) / n
    }

    /// Papers whose analyzed sections contain `phrase` contiguously.
    /// Candidates come from the postings of the phrase's rarest word;
    /// contiguity is verified per section (never across boundaries).
    pub fn papers_containing_phrase(&self, corpus: &Corpus, phrase: &[TermId]) -> Vec<PaperId> {
        if phrase.is_empty() {
            return Vec::new();
        }
        let rarest = phrase
            .iter()
            .copied()
            .min_by_key(|&t| self.model.df(t))
            .expect("non-empty phrase");
        let mut out = Vec::new();
        for doc in self.inverted.docs_containing(rarest) {
            let paper = PaperId(doc.0);
            let a = corpus.analyzed(paper);
            let found = Section::ALL
                .iter()
                .any(|&s| !textproc::phrase::find_occurrences(a.section(s), phrase).is_empty());
            if found {
                out.push(paper);
            }
        }
        out
    }

    /// The §3.2 author similarity:
    /// `SimAuthors = L0Weight·SimL0 + L1Weight·SimL1`, where level 0 is
    /// shared authors and level 1 is authors who co-wrote a third paper.
    pub fn author_similarity(
        &self,
        corpus: &Corpus,
        a: PaperId,
        b: PaperId,
        weights: &TextSimWeights,
    ) -> f64 {
        let aa = &corpus.paper(a).authors;
        let ab = &corpus.paper(b).authors;
        if aa.is_empty() || ab.is_empty() {
            return 0.0;
        }
        let set_a: HashSet<AuthorId> = aa.iter().copied().collect();
        let set_b: HashSet<AuthorId> = ab.iter().copied().collect();
        let l0 =
            set_a.intersection(&set_b).count() as f64 / ((set_a.len() * set_b.len()) as f64).sqrt();

        // Level 1: an author of `a` and an author of `b` co-wrote some
        // third paper ⇔ b's author appears in the coauthor set of a's
        // author.
        let neighbors_a: HashSet<AuthorId> = set_a
            .iter()
            .flat_map(|x| self.coauthors.get(x).into_iter().flatten())
            .copied()
            .collect();
        let l1_hits = set_b.iter().filter(|x| neighbors_a.contains(x)).count() as f64;
        let l1 = (l1_hits / set_b.len() as f64).min(1.0);

        (weights.l0_author * l0 + weights.l1_author * l1).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (Ontology, Corpus, CorpusIndex) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 60,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 80,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let idx = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        (onto, corpus, idx)
    }

    #[test]
    fn vectors_are_unit_norm() {
        let (_, corpus, idx) = setup();
        for id in corpus.paper_ids().take(10) {
            let v = &idx.doc_vectors[id.index()];
            assert!((v.norm() - 1.0).abs() < 1e-9 || v.is_empty());
        }
    }

    #[test]
    fn self_cosine_is_one() {
        let (_, _, idx) = setup();
        let p = PaperId(0);
        assert!((idx.whole_cosine(p, &idx.doc_vectors[0]) - 1.0).abs() < 1e-9);
        assert!((idx.section_cosine(Section::Title, p, p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn keyword_search_finds_title_words() {
        let (_, corpus, idx) = setup();
        let title = corpus.paper(PaperId(3)).title.clone();
        let q = idx.query_vector(&corpus, &title);
        let hits = idx.keyword_search(&q, 0.05);
        assert!(
            hits.iter().take(5).any(|&(p, _)| p == PaperId(3)),
            "paper should rank highly for its own title"
        );
    }

    #[test]
    fn phrase_candidates_actually_contain_phrase() {
        let (onto, corpus, idx) = setup();
        // Use a term name that some paper's title starts with.
        let primary = corpus.paper(PaperId(0)).true_topics[0];
        let phrase = &idx.term_name_tokens[primary.index()];
        assert!(!phrase.is_empty());
        let papers = idx.papers_containing_phrase(&corpus, phrase);
        assert!(
            papers.contains(&PaperId(0)),
            "paper 0's title starts with its topic name"
        );
        let _ = onto;
    }

    #[test]
    fn coverage_estimate_in_unit_range() {
        let (_, corpus, idx) = setup();
        let toks = corpus.analyze_known(&corpus.paper(PaperId(0)).title);
        let c = idx.coverage_estimate(&toks);
        assert!(c > 0.0 && c <= 1.0);
        // Unknown token → floor.
        let unknown = idx.coverage_estimate(&[TermId(9_999_999)]);
        assert!((unknown - 1.0 / corpus.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn author_similarity_self_is_high() {
        let (_, corpus, idx) = setup();
        let w = TextSimWeights::default();
        let s = idx.author_similarity(&corpus, PaperId(0), PaperId(0), &w);
        assert!(s > 0.5, "self author similarity: {s}");
        assert!(s <= 1.0);
    }

    #[test]
    fn global_pagerank_is_a_distribution() {
        let (_, _, idx) = setup();
        let total: f64 = idx.global_pagerank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(idx.global_pagerank.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn term_names_are_analyzed() {
        let (onto, _, idx) = setup();
        let non_empty = idx
            .term_name_tokens
            .iter()
            .filter(|v| !v.is_empty())
            .count();
        assert!(non_empty > onto.len() / 2);
    }
}
