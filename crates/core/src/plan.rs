//! A small stage-DAG executor for the offline prepare phase.
//!
//! The paradigm's expensive work — corpus indexing, context-set
//! construction, pattern mining, and the three prestige functions — is
//! a dependency graph of pure stages, not a pipeline: text sets and
//! pattern mining only need the index; the per-(set, function) prestige
//! tables only need their sets. [`Plan`] captures that graph explicitly
//! and runs independent stages concurrently on a small worker pool
//! (`build_threads` in [`crate::EngineConfig`]), with one `obs` span
//! per stage so the schedule is visible in metrics and traces.
//!
//! Stages communicate through write-once slots owned by the caller
//! (`std::sync::OnceLock` for multi-consumer outputs, [`Slot`] for
//! single-consumer handoffs that need mutation); the executor itself
//! only sequences closures. Because every stage is a pure function of
//! its inputs, the parallel schedule is result-identical to the
//! sequential one (`threads == 1` runs stages in deterministic
//! topological order) — the property the snapshot tests assert.

use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
// The vendored parking_lot shim wraps std's Mutex (its guard IS
// std::sync::MutexGuard), so std's Condvar pairs with it directly.
use std::sync::Condvar;

/// A write-once, take-once handoff cell for single-consumer stage
/// outputs (e.g. a raw prestige table consumed by its propagation
/// stage). Multi-consumer outputs should use `std::sync::OnceLock`.
pub struct Slot<T>(Mutex<Option<T>>);

impl<T> Slot<T> {
    /// An empty slot.
    pub const fn new() -> Self {
        Self(Mutex::new(None))
    }

    /// Store a value (panics if the slot is already full — a plan
    /// wiring bug, not a runtime condition).
    pub fn put(&self, value: T) {
        let mut guard = self.0.lock();
        assert!(guard.is_none(), "Slot::put on a full slot");
        *guard = Some(value);
    }

    /// Take the value out, leaving the slot empty.
    pub fn take(&self) -> Option<T> {
        self.0.lock().take()
    }
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A stage body, boxed for storage in the plan.
type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

struct Stage<'a> {
    name: &'static str,
    deps: Vec<&'static str>,
    run: Option<Job<'a>>,
}

/// A build plan: named stages with explicit dependencies.
///
/// Stage names double as `obs` span names, so use the full dotted form
/// (`"prepare.index"`). See [`Plan::run`] for execution semantics.
#[derive(Default)]
pub struct Plan<'a> {
    stages: Vec<Stage<'a>>,
}

/// A malformed plan (caught before any stage runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Two stages share a name.
    DuplicateStage(&'static str),
    /// A stage depends on a name no stage has.
    UnknownDep {
        /// The stage with the bad dependency.
        stage: &'static str,
        /// The missing dependency name.
        dep: &'static str,
    },
    /// The dependency graph has a cycle through this stage.
    Cycle(&'static str),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateStage(s) => write!(f, "duplicate stage {s:?}"),
            Self::UnknownDep { stage, dep } => {
                write!(f, "stage {stage:?} depends on unknown stage {dep:?}")
            }
            Self::Cycle(s) => write!(f, "dependency cycle through stage {s:?}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl<'a> Plan<'a> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a stage. `deps` are names of stages that must complete
    /// before this one starts.
    pub fn stage(
        &mut self,
        name: &'static str,
        deps: &[&'static str],
        run: impl FnOnce() + Send + 'a,
    ) -> &mut Self {
        self.stages.push(Stage {
            name,
            deps: deps.to_vec(),
            run: Some(Box::new(run)),
        });
        self
    }

    /// Validate the graph and run every stage exactly once, respecting
    /// dependencies. `threads == 1` executes sequentially in
    /// deterministic topological (insertion-biased Kahn) order;
    /// `threads == 0` uses the available parallelism; otherwise up to
    /// `threads` stages run concurrently. A panicking stage aborts the
    /// plan (stages not yet started are skipped) and the panic is
    /// re-raised on the caller's thread.
    pub fn run(mut self, threads: usize) -> Result<(), PlanError> {
        let topo = self.validate()?;
        let n = self.stages.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        }
        .min(n.max(1));

        if threads <= 1 {
            for &i in &topo {
                let job = self.stages[i].run.take().expect("stage runs once");
                let _span = obs::span(self.stages[i].name);
                job();
            }
            return Ok(());
        }

        // Dependents adjacency + remaining-dependency counts.
        let index_of = |name: &str| self.stages.iter().position(|s| s.name == name).unwrap();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining: Vec<usize> = vec![0; n];
        for (i, s) in self.stages.iter().enumerate() {
            remaining[i] = s.deps.len();
            for d in &s.deps {
                dependents[index_of(d)].push(i);
            }
        }

        struct Sched {
            remaining: Vec<usize>,
            started: Vec<bool>,
            n_done: usize,
            panics: Vec<Box<dyn std::any::Any + Send>>,
        }
        let state = Mutex::new(Sched {
            remaining,
            started: vec![false; n],
            n_done: 0,
            panics: Vec::new(),
        });
        let ready = Condvar::new();
        let jobs: Vec<Mutex<Option<Job<'a>>>> = self
            .stages
            .iter_mut()
            .map(|s| Mutex::new(s.run.take()))
            .collect();
        let names: Vec<&'static str> = self.stages.iter().map(|s| s.name).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut guard = state.lock();
                    loop {
                        if guard.n_done == n || !guard.panics.is_empty() {
                            ready.notify_all();
                            return;
                        }
                        // Lowest-index ready stage keeps claiming
                        // deterministic even under contention.
                        let next = (0..n).find(|&i| !guard.started[i] && guard.remaining[i] == 0);
                        let Some(i) = next else {
                            guard = ready
                                .wait(guard)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            continue;
                        };
                        guard.started[i] = true;
                        drop(guard);
                        let job = jobs[i].lock().take().expect("claimed once");
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let _span = obs::span(names[i]);
                            job();
                        }));
                        guard = state.lock();
                        match result {
                            Ok(()) => {
                                guard.n_done += 1;
                                for &dep in &dependents[i] {
                                    guard.remaining[dep] -= 1;
                                }
                            }
                            Err(payload) => guard.panics.push(payload),
                        }
                        ready.notify_all();
                    }
                });
            }
        });

        let mut guard = state.lock();
        if let Some(payload) = guard.panics.pop() {
            resume_unwind(payload);
        }
        Ok(())
    }

    /// Check names and dependencies; return a topological order.
    fn validate(&self) -> Result<Vec<usize>, PlanError> {
        for (i, s) in self.stages.iter().enumerate() {
            if self.stages[..i].iter().any(|t| t.name == s.name) {
                return Err(PlanError::DuplicateStage(s.name));
            }
        }
        let index_of = |name: &str| self.stages.iter().position(|s| s.name == name);
        let n = self.stages.len();
        let mut remaining: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in self.stages.iter().enumerate() {
            for d in &s.deps {
                let Some(j) = index_of(d) else {
                    return Err(PlanError::UnknownDep {
                        stage: s.name,
                        dep: d,
                    });
                };
                remaining[i] += 1;
                dependents[j].push(i);
            }
        }
        // Kahn's algorithm, always taking the lowest ready index:
        // deterministic order for the sequential path, cycle check for
        // both.
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            order.push(i);
            for &d in &dependents[i] {
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    // Keep `ready` sorted so `first` is the min index.
                    let pos = ready.partition_point(|&x| x < d);
                    ready.insert(pos, d);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|i| !order.contains(i)).expect("cycle member");
            return Err(PlanError::Cycle(self.stages[stuck].name));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    /// Run a diamond a->{b,c}->d and record completion order.
    fn run_diamond(threads: usize) -> Vec<&'static str> {
        let log: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let mut plan = Plan::new();
        plan.stage("a", &[], || log.lock().push("a"));
        plan.stage("b", &["a"], || log.lock().push("b"));
        plan.stage("c", &["a"], || log.lock().push("c"));
        plan.stage("d", &["b", "c"], || log.lock().push("d"));
        plan.run(threads).expect("valid plan");
        log.into_inner()
    }

    #[test]
    fn diamond_respects_dependencies() {
        for threads in [1, 2, 4] {
            let order = run_diamond(threads);
            assert_eq!(order.len(), 4, "threads={threads}");
            let pos = |s| order.iter().position(|&x| x == s).unwrap();
            assert!(pos("a") < pos("b"));
            assert!(pos("a") < pos("c"));
            assert!(pos("b") < pos("d"));
            assert!(pos("c") < pos("d"));
        }
    }

    #[test]
    fn sequential_order_is_topological_and_deterministic() {
        assert_eq!(run_diamond(1), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn stage_outputs_flow_through_slots() {
        let a_out: OnceLock<u32> = OnceLock::new();
        let b_out: Slot<u32> = Slot::new();
        let c_out: OnceLock<u32> = OnceLock::new();
        let mut plan = Plan::new();
        plan.stage("a", &[], || {
            a_out.set(20).unwrap();
        });
        plan.stage("b", &["a"], || b_out.put(a_out.get().unwrap() + 1));
        plan.stage("c", &["b"], || {
            c_out.set(b_out.take().unwrap() * 2).unwrap();
        });
        plan.run(2).unwrap();
        assert_eq!(c_out.into_inner(), Some(42));
        assert_eq!(b_out.take(), None, "b's output was consumed");
    }

    #[test]
    fn unknown_dependency_is_an_error() {
        let mut plan = Plan::new();
        plan.stage("a", &["ghost"], || {});
        assert_eq!(
            plan.run(1),
            Err(PlanError::UnknownDep {
                stage: "a",
                dep: "ghost"
            })
        );
    }

    #[test]
    fn duplicate_stage_is_an_error() {
        let mut plan = Plan::new();
        plan.stage("a", &[], || {});
        plan.stage("a", &[], || {});
        assert_eq!(plan.run(1), Err(PlanError::DuplicateStage("a")));
    }

    #[test]
    fn cycle_is_an_error() {
        let mut plan = Plan::new();
        plan.stage("a", &["b"], || {});
        plan.stage("b", &["a"], || {});
        assert!(matches!(plan.run(2), Err(PlanError::Cycle(_))));
    }

    #[test]
    fn every_stage_runs_exactly_once() {
        for threads in [1, 3] {
            let count = AtomicUsize::new(0);
            let mut plan = Plan::new();
            plan.stage("a", &[], || {
                count.fetch_add(1, Ordering::SeqCst);
            });
            plan.stage("b", &["a"], || {
                count.fetch_add(1, Ordering::SeqCst);
            });
            plan.stage("c", &["a"], || {
                count.fetch_add(1, Ordering::SeqCst);
            });
            plan.run(threads).unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn panicking_stage_propagates_and_skips_dependents() {
        let ran_dependent = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut plan = Plan::new();
            plan.stage("boom", &[], || panic!("stage failed"));
            plan.stage("after", &["boom"], || {
                ran_dependent.fetch_add(1, Ordering::SeqCst);
            });
            plan.run(2).unwrap();
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(ran_dependent.load(Ordering::SeqCst), 0);
    }
}
