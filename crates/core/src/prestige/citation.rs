//! Citation-based prestige (paper §3.1): the PageRank variant run on
//! each context's *induced* citation subgraph — "only citation
//! information between papers in the given context is used", so a paper
//! heavily cited from outside a context earns nothing inside it. This
//! restriction, combined with cross-context citation noise, is what
//! makes the in-context graphs sparse and the citation scores tie-heavy
//! (the paper's accuracy and separability findings).

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::prestige::{PrestigeScores, ScoreFunction};
use citegraph::{hits, pagerank, CitationGraph, HitsConfig};
use corpus::PaperId;
use std::collections::HashMap;

/// Map relative PageRank prominence `r` (multiples of the uniform
/// share) into [0, 1) as `r / (r + 1)`: a paper at the uniform share —
/// e.g. every member of an edgeless context graph — sits at 0.5, and
/// in-context citation hubs approach 1. This mirrors the effect of the
/// paper's `E1 = d` fixed point, where an uncited paper's score equals
/// the teleport constant (mid-scale, far from zero): whole contexts of
/// tied mid-scale scores pass moderate relevancy thresholds wholesale,
/// which is exactly how the citation function dilutes precision in the
/// paper's Figs 5.1–5.2.
fn squash_prominence(r: f64) -> f64 {
    (r / (r + 1.0)).clamp(0.0, 1.0)
}

/// Compute citation-based prestige for every context in `sets`.
pub fn citation_prestige(
    sets: &ContextPaperSets,
    graph: &CitationGraph,
    config: &EngineConfig,
) -> PrestigeScores {
    // `sets.contexts()` already iterates in ascending id order — the
    // deterministic population for the parallel map.
    let contexts: Vec<ContextId> = sets.contexts().collect();
    let computed: Vec<(ContextId, Vec<(PaperId, f64)>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            (context, context_pagerank(sets, graph, config, context))
        });
    PrestigeScores::new(
        computed.into_iter().collect::<HashMap<_, _>>(),
        ScoreFunction::Citation,
    )
}

fn context_pagerank(
    sets: &ContextPaperSets,
    graph: &CitationGraph,
    config: &EngineConfig,
    context: ContextId,
) -> Vec<(PaperId, f64)> {
    let _span = obs::span("prestige.context_pagerank");
    let members: Vec<u32> = sets.members(context).iter().map(|p| p.0).collect();
    let (sub, node_map) = graph.induced_subgraph(&members);
    let result = pagerank(&sub, &config.pagerank);
    obs::observe_ns(
        "prestige.context_pagerank.iterations",
        result.iterations as u64,
    );
    obs::observe_ns("prestige.context_pagerank.members", members.len() as u64);
    obs::counter(
        "prestige.context_pagerank.converged_contexts",
        result.converged as u64,
    );
    if obs::trace_enabled() {
        obs::trace_instant(
            "prestige.context",
            vec![
                ("context".to_string(), context.index().into()),
                ("members".to_string(), members.len().into()),
                ("iterations".to_string(), (result.iterations as u64).into()),
                ("converged".to_string(), result.converged.into()),
            ],
        );
    }
    let n = node_map.len() as f64;
    node_map
        .into_iter()
        .zip(result.scores)
        .map(|(paper, p_mass)| {
            // Relative prominence vs the uniform share, log-squashed.
            (PaperId(paper), squash_prominence(p_mass * n))
        })
        .collect()
}

/// The HITS alternative §3.1 mentions ("PageRank and HITS algorithms
/// can be used in paper score computation"): per-context authority
/// scores. The paper's ref \[11\] found HITS and PageRank highly
/// correlated on the ACM SIGMOD Anthology — the ablation bench checks
/// the same on the synthetic corpus.
pub fn hits_citation_prestige(
    sets: &ContextPaperSets,
    graph: &CitationGraph,
    config: &EngineConfig,
) -> PrestigeScores {
    let contexts: Vec<ContextId> = sets.contexts().collect();
    let computed: Vec<(ContextId, Vec<(PaperId, f64)>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            let members: Vec<u32> = sets.members(context).iter().map(|p| p.0).collect();
            let (sub, node_map) = graph.induced_subgraph(&members);
            let scores = hits(&sub, &HitsConfig::default());
            (
                context,
                node_map
                    .into_iter()
                    .zip(scores.authorities)
                    .map(|(p, a)| (PaperId(p), a))
                    .collect(),
            )
        });
    PrestigeScores::new(
        computed.into_iter().collect::<HashMap<_, _>>(),
        ScoreFunction::Citation,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextSetKind;
    use ontology::TermId;

    fn graph() -> CitationGraph {
        // 0..5; 1,2,3 cite 0; 4 cites 5 (outside-context pair).
        CitationGraph::from_edges(6, &[(1, 0), (2, 0), (3, 0), (4, 5)])
    }

    fn sets(members: &[(u32, &[u32])]) -> ContextPaperSets {
        let m = members
            .iter()
            .map(|&(c, ps)| (TermId(c), ps.iter().map(|&p| PaperId(p)).collect()))
            .collect();
        ContextPaperSets::new(m, ContextSetKind::PatternBased)
    }

    #[test]
    fn in_context_citations_count() {
        let s = sets(&[(0, &[0, 1, 2, 3])]);
        let p = citation_prestige(&s, &graph(), &EngineConfig::default());
        let cited = p.get(TermId(0), PaperId(0)).unwrap();
        let citer = p.get(TermId(0), PaperId(1)).unwrap();
        assert!(cited > citer, "cited paper outranks citers");
        assert!(cited > squash_prominence(1.0), "above the tie baseline");
    }

    #[test]
    fn out_of_context_citations_are_ignored() {
        // Context {0, 4}: 0's three citations come from outside, 4's
        // reference points outside → edgeless subgraph → all tied.
        let s = sets(&[(0, &[0, 4])]);
        let p = citation_prestige(&s, &graph(), &EngineConfig::default());
        let a = p.get(TermId(0), PaperId(0)).unwrap();
        let b = p.get(TermId(0), PaperId(4)).unwrap();
        assert!((a - b).abs() < 1e-9, "sparse context ⇒ ties: {a} vs {b}");
        assert!(
            (a - squash_prominence(1.0)).abs() < 1e-9,
            "tied scores sit at the uniform baseline: {a}"
        );
    }

    #[test]
    fn paper_scores_differ_across_contexts() {
        // The paper's motivating example: p cited heavily in c1, barely
        // in c2 → p more prestigious in c1.
        let s = sets(&[(1, &[0, 1, 2, 3]), (2, &[0, 4])]);
        let p = citation_prestige(&s, &graph(), &EngineConfig::default());
        let in_c1 = p.get(TermId(1), PaperId(0)).unwrap();
        let in_c2 = p.get(TermId(2), PaperId(0)).unwrap();
        assert!(
            in_c1 > in_c2,
            "same paper, more prestige where it is cited: {in_c1} vs {in_c2}"
        );
        // c1 distinguishes its members, c2 (edgeless) cannot.
        let others_c1 = p.get(TermId(1), PaperId(1)).unwrap();
        let others_c2 = p.get(TermId(2), PaperId(4)).unwrap();
        assert!(in_c1 > others_c1);
        assert!((in_c2 - others_c2).abs() < 1e-9);
    }

    #[test]
    fn hits_prestige_ranks_cited_papers_first() {
        let s = sets(&[(0, &[0, 1, 2, 3])]);
        let p = hits_citation_prestige(&s, &graph(), &EngineConfig::default());
        let cited = p.get(TermId(0), PaperId(0)).unwrap();
        let citer = p.get(TermId(0), PaperId(1)).unwrap();
        assert!(cited > citer);
        assert_eq!(cited, 1.0, "authorities are max-normalized");
    }

    #[test]
    fn hits_prestige_covers_all_members() {
        let s = sets(&[(0, &[0, 1, 2, 3, 4, 5])]);
        let p = hits_citation_prestige(&s, &graph(), &EngineConfig::default());
        assert_eq!(p.scores(TermId(0)).len(), 6);
    }

    #[test]
    fn every_member_gets_a_score() {
        let s = sets(&[(0, &[0, 1, 2, 3, 4, 5])]);
        let p = citation_prestige(&s, &graph(), &EngineConfig::default());
        assert_eq!(p.scores(TermId(0)).len(), 6);
        for &(_, score) in p.scores(TermId(0)).iter() {
            assert!((0.0..=1.0).contains(&score));
        }
    }
}
