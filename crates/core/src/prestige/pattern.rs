//! Pattern-based prestige (paper §3.3 / §4): a paper's prestige in a
//! context is `Σ_{pt matches} Score(pt) · M(paper, pt)` over the
//! context's pattern set, max-normalized within the context. Contexts
//! that inherited their paper set from an ancestor (§4 fallback) reuse
//! the ancestor's scores decayed by `RateOfDecay = I(ancs)/I(desc)`.

use crate::assign::ContextPatterns;
use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use crate::prestige::{max_normalize, PrestigeScores, ScoreFunction};
use corpus::{Corpus, PaperId};
use ontology::{rate_of_decay, Ontology};
use patterns::matcher::match_strength;
use patterns::{MatcherConfig, SectionTokens};
use std::collections::HashMap;

/// Compute pattern-based prestige for every context in `sets`.
///
/// `simplified` selects the §4 variant (middle-only matching), used for
/// the pattern-based context paper set experiments; the full §3.3
/// matcher also weighs left/right tuple fidelity.
pub fn pattern_prestige(
    ontology: &Ontology,
    sets: &ContextPaperSets,
    corpus: &Corpus,
    index: &CorpusIndex,
    patterns: &ContextPatterns,
    config: &EngineConfig,
    simplified: bool,
) -> PrestigeScores {
    let matcher = MatcherConfig {
        middle_only: simplified,
        ..config.matcher.clone()
    };

    // Score contexts that own their paper sets.
    // `sets.contexts()` iterates ascending — deterministic population.
    let own_contexts: Vec<ContextId> = sets
        .contexts()
        .filter(|c| !sets.inherited_from.contains_key(c))
        .collect();
    let computed: Vec<(ContextId, Vec<(PaperId, f64)>)> =
        crate::parallel_map(config.threads, &own_contexts, |&context| {
            (
                context,
                score_context(sets, corpus, index, patterns, &matcher, context),
            )
        });
    let mut by_context: HashMap<ContextId, Vec<(PaperId, f64)>> = computed.into_iter().collect();

    // Inherited contexts: ancestor's scores × RateOfDecay.
    let inherited: Vec<(ContextId, ContextId)> = {
        let mut v: Vec<_> = sets.inherited_from.iter().map(|(&c, &a)| (c, a)).collect();
        v.sort_unstable();
        v
    };
    for (context, ancestor) in inherited {
        let decay = rate_of_decay(ontology, ancestor, context);
        let decayed: Vec<(PaperId, f64)> = by_context
            .get(&ancestor)
            .map(|scores| scores.iter().map(|&(p, s)| (p, s * decay)).collect())
            .unwrap_or_default();
        by_context.insert(context, decayed);
    }

    PrestigeScores::new(by_context, ScoreFunction::Pattern)
}

fn score_context(
    sets: &ContextPaperSets,
    corpus: &Corpus,
    index: &CorpusIndex,
    patterns: &ContextPatterns,
    matcher: &MatcherConfig,
    context: ContextId,
) -> Vec<(PaperId, f64)> {
    let members = sets.members(context);
    let pats = patterns.patterns(context);
    let mut acc: HashMap<PaperId, f64> = HashMap::with_capacity(members.len());
    // Candidate-driven accumulation: only papers containing a pattern's
    // middle are ever scored against it (postings prefilter), instead of
    // scanning every member against every pattern.
    for pat in pats {
        for paper in index.papers_containing_phrase(corpus, &pat.middle) {
            if members.binary_search(&paper).is_err() {
                continue;
            }
            let a = corpus.analyzed(paper);
            let sections = SectionTokens {
                title: &a.title,
                abstract_text: &a.abstract_text,
                body: &a.body,
                index_terms: &a.index_terms,
            };
            let m = match_strength(pat, &sections, matcher);
            if m > 0.0 {
                *acc.entry(paper).or_insert(0.0) += pat.score * m;
            }
        }
    }
    let mut scores: Vec<(PaperId, f64)> = members
        .iter()
        .map(|&p| (p, acc.get(&p).copied().unwrap_or(0.0)))
        .collect();
    max_normalize(&mut scores);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{build_pattern_sets, patterns_by_context};
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (
        Ontology,
        Corpus,
        CorpusIndex,
        EngineConfig,
        ContextPatterns,
        ContextPaperSets,
    ) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let config = EngineConfig::default();
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        let sets = build_pattern_sets(&onto, &corpus, &index, &pats, &config);
        (onto, corpus, index, config, pats, sets)
    }

    #[test]
    fn every_context_gets_scores_for_all_members() {
        let (onto, corpus, index, config, pats, sets) = setup();
        let prestige = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, true);
        for c in sets.contexts() {
            assert_eq!(
                prestige.scores(c).len(),
                sets.members(c).len(),
                "context {c}"
            );
        }
    }

    #[test]
    fn scores_are_unit_range() {
        let (onto, corpus, index, config, pats, sets) = setup();
        let prestige = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, true);
        for c in prestige.contexts() {
            for &(_, s) in prestige.scores(c).iter() {
                assert!((0.0..=1.0).contains(&s), "{s}");
            }
        }
    }

    #[test]
    fn direct_contexts_differentiate_members() {
        let (onto, corpus, index, config, pats, sets) = setup();
        let prestige = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, true);
        let mut differentiated = 0;
        for c in sets.contexts_with_min_size(5) {
            if sets.inherited_from.contains_key(&c) {
                continue;
            }
            let distinct: std::collections::HashSet<u64> = prestige
                .score_values(c)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            if distinct.len() > 1 {
                differentiated += 1;
            }
        }
        assert!(differentiated > 0, "some context must have varied scores");
    }

    #[test]
    fn inherited_contexts_are_decayed_copies() {
        let (onto, corpus, index, config, pats, sets) = setup();
        let prestige = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, true);
        for (&c, &a) in &sets.inherited_from {
            let decay = rate_of_decay(&onto, a, c);
            let anc = prestige.scores(a);
            let desc = prestige.scores(c);
            assert_eq!(anc.len(), desc.len());
            for (&(pa, sa), &(pd, sd)) in anc.iter().zip(desc.iter()) {
                assert_eq!(pa, pd);
                assert!((sd - sa * decay).abs() < 1e-9);
            }
            // Decay strictly shrinks unless ancestor IC dominates.
            assert!(decay <= 1.0);
        }
    }

    #[test]
    fn full_and_simplified_matching_can_disagree() {
        let (onto, corpus, index, config, pats, sets) = setup();
        let simp = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, true);
        let full = pattern_prestige(&onto, &sets, &corpus, &index, &pats, &config, false);
        // Same coverage either way.
        assert_eq!(simp.contexts().count(), full.contexts().count());
        // At least one paper somewhere should score differently (side
        // tuples matter in full matching).
        let mut any_diff = false;
        for c in sets.contexts_with_min_size(3) {
            for (&(p1, s1), &(p2, s2)) in simp.scores(c).iter().zip(full.scores(c).iter()) {
                assert_eq!(p1, p2);
                if (s1 - s2).abs() > 1e-9 {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff, "full matching should differ somewhere");
    }
}
