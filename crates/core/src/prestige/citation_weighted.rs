//! The paper's §7 future-work variant of the citation-based score:
//! "instead of omitting relationships from different contexts during
//! prestige score computations, we can assign weights to these
//! relationships. […] If c2 is not hierarchically related to c1,
//! assign the smallest weight. If c2 is hierarchically related to c1,
//! assign a higher weight. If pa is in c1, assign the highest weight."
//!
//! Realization: in-context citations keep driving a PageRank over the
//! member subgraph (the "highest weight" relationships — the walk
//! itself), while citations arriving from *outside* the context bias
//! the teleport vector, weighted by how hierarchically related the
//! external citer's contexts are (parent/child member → `related`,
//! anything else → `unrelated`). This is a personalized PageRank in
//! the style of Topic-Sensitive PageRank (the paper's ref \[17\], which
//! §6 explicitly compares against), and it degrades gracefully: with
//! zero external weights it reduces to the plain §3.1 function.

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::prestige::{PrestigeScores, ScoreFunction};
use citegraph::pagerank::pagerank_personalized;
use citegraph::CitationGraph;
use corpus::PaperId;
use ontology::Ontology;
use std::collections::HashMap;

/// The §7 relationship weights for *external* citers; in-context
/// citations are the walk itself (the "highest" weight).
#[derive(Debug, Clone)]
pub struct CrossContextWeights {
    /// Teleport bias contributed per citation from a member of a parent
    /// or child context ("higher" weight).
    pub related: f64,
    /// Teleport bias per citation from anywhere else ("smallest").
    pub unrelated: f64,
}

impl Default for CrossContextWeights {
    fn default() -> Self {
        Self {
            related: 0.5,
            unrelated: 0.1,
        }
    }
}

/// Compute the §7 weighted citation prestige for every context.
pub fn weighted_citation_prestige(
    ontology: &Ontology,
    sets: &ContextPaperSets,
    graph: &CitationGraph,
    config: &EngineConfig,
    weights: &CrossContextWeights,
) -> PrestigeScores {
    let contexts: Vec<ContextId> = sets.contexts().collect();
    let computed: Vec<(ContextId, Vec<(PaperId, f64)>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            (
                context,
                context_weighted_pagerank(ontology, sets, graph, config, weights, context),
            )
        });
    PrestigeScores::new(
        computed.into_iter().collect::<HashMap<_, _>>(),
        ScoreFunction::Citation,
    )
}

fn context_weighted_pagerank(
    ontology: &Ontology,
    sets: &ContextPaperSets,
    graph: &CitationGraph,
    config: &EngineConfig,
    weights: &CrossContextWeights,
    context: ContextId,
) -> Vec<(PaperId, f64)> {
    let members: Vec<u32> = sets.members(context).iter().map(|p| p.0).collect();
    let (sub, node_map) = graph.induced_subgraph(&members);
    let related_contexts: Vec<ContextId> = ontology
        .parents(context)
        .iter()
        .chain(ontology.children(context))
        .copied()
        .collect();

    // Teleport bias: 1 (uniform base) + weighted external endorsements.
    let bias: Vec<f64> = node_map
        .iter()
        .map(|&m| {
            let mut b = 1.0;
            for &citer in graph.citations(m) {
                let citer = PaperId(citer);
                if sets.is_member(context, citer) {
                    continue; // in-context citations are graph edges
                }
                if related_contexts.iter().any(|&rc| sets.is_member(rc, citer)) {
                    b += weights.related;
                } else {
                    b += weights.unrelated;
                }
            }
            b
        })
        .collect();

    let result = pagerank_personalized(&sub, &config.pagerank, &bias);
    let n = node_map.len() as f64;
    node_map
        .into_iter()
        .zip(result.scores)
        .map(|(paper, p_mass)| {
            let r = p_mass * n;
            (PaperId(paper), (r / (r + 1.0)).clamp(0.0, 1.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextSetKind;
    use ontology::{Term, TermId};

    fn chain_ontology() -> Ontology {
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.into(),
            name: acc.into(),
            namespace: "t".into(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        Ontology::new(vec![t("a", vec![]), t("b", vec![0]), t("c", vec![1])]).unwrap()
    }

    fn sets(members: &[(u32, &[u32])]) -> ContextPaperSets {
        let m = members
            .iter()
            .map(|&(c, ps)| (TermId(c), ps.iter().map(|&p| PaperId(p)).collect()))
            .collect();
        ContextPaperSets::new(m, ContextSetKind::PatternBased)
    }

    #[test]
    fn external_related_citations_now_count() {
        // Papers 0,1 in context 1 (child of 0); papers 2,3 in context 0
        // cite paper 0. The plain function sees an edgeless subgraph for
        // context 1; the weighted one credits paper 0.
        let onto = chain_ontology();
        let g = CitationGraph::from_edges(4, &[(2, 0), (3, 0)]);
        let s = sets(&[(1, &[0, 1]), (0, &[0, 1, 2, 3])]);
        let cfg = EngineConfig::default();
        let plain = crate::prestige::citation::citation_prestige(&s, &g, &cfg);
        let weighted =
            weighted_citation_prestige(&onto, &s, &g, &cfg, &CrossContextWeights::default());
        let p0 = plain.get(TermId(1), PaperId(0)).unwrap();
        let p1 = plain.get(TermId(1), PaperId(1)).unwrap();
        assert!((p0 - p1).abs() < 1e-9, "plain function ties");
        let w0 = weighted.get(TermId(1), PaperId(0)).unwrap();
        let w1 = weighted.get(TermId(1), PaperId(1)).unwrap();
        assert!(w0 > w1, "weighted credits external citations: {w0} vs {w1}");
    }

    #[test]
    fn unrelated_citers_count_less_than_related_ones() {
        // Context 2 holds {0, 5}. Paper 0 is cited by paper 1 (member of
        // the parent context 1 → related); paper 5 by paper 2 (member of
        // the grandparent only → unrelated, the smallest weight).
        let onto = chain_ontology();
        let g = CitationGraph::from_edges(6, &[(1, 0), (2, 5)]);
        let s = sets(&[(2, &[0, 5]), (1, &[1]), (0, &[2])]);
        let cfg = EngineConfig::default();
        let weighted =
            weighted_citation_prestige(&onto, &s, &g, &cfg, &CrossContextWeights::default());
        let related_boosted = weighted.get(TermId(2), PaperId(0)).unwrap();
        let unrelated_boosted = weighted.get(TermId(2), PaperId(5)).unwrap();
        assert!(
            related_boosted > unrelated_boosted,
            "{related_boosted} vs {unrelated_boosted}"
        );
    }

    #[test]
    fn zero_weights_reduce_to_plain_function() {
        let onto = chain_ontology();
        let g = CitationGraph::from_edges(6, &[(1, 0), (2, 0), (4, 3), (5, 3)]);
        let s = sets(&[(0, &[0, 1, 2, 3, 4, 5]), (1, &[0, 3])]);
        let cfg = EngineConfig::default();
        let plain = crate::prestige::citation::citation_prestige(&s, &g, &cfg);
        let zeroed = weighted_citation_prestige(
            &onto,
            &s,
            &g,
            &cfg,
            &CrossContextWeights {
                related: 0.0,
                unrelated: 0.0,
            },
        );
        for c in [TermId(0), TermId(1)] {
            for (&(pa, sa), &(pb, sb)) in plain.scores(c).iter().zip(zeroed.scores(c).iter()) {
                assert_eq!(pa, pb);
                assert!((sa - sb).abs() < 1e-9, "{sa} vs {sb} in {c}");
            }
        }
    }

    #[test]
    fn all_scores_in_unit_range() {
        let onto = chain_ontology();
        let g = CitationGraph::from_edges(6, &[(1, 0), (2, 0), (3, 4), (5, 4)]);
        let s = sets(&[(0, &[0, 1, 2, 3, 4, 5]), (1, &[0, 4]), (2, &[4])]);
        let weighted = weighted_citation_prestige(
            &onto,
            &s,
            &g,
            &EngineConfig::default(),
            &CrossContextWeights::default(),
        );
        for c in [TermId(0), TermId(1), TermId(2)] {
            for &(_, v) in weighted.scores(c).iter() {
                assert!((0.0..=1.0).contains(&v) && v.is_finite());
            }
        }
    }

    #[test]
    fn every_member_scored_no_externals_leak() {
        let onto = chain_ontology();
        let g = CitationGraph::from_edges(4, &[(2, 0), (3, 1)]);
        let s = sets(&[(1, &[0, 1])]);
        let weighted = weighted_citation_prestige(
            &onto,
            &s,
            &g,
            &EngineConfig::default(),
            &CrossContextWeights::default(),
        );
        let scored: Vec<PaperId> = weighted.scores(TermId(1)).iter().map(|&(p, _)| p).collect();
        assert_eq!(scored, vec![PaperId(0), PaperId(1)]);
    }
}
