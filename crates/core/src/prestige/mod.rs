//! Prestige scores: the paper's three §3 score functions and the
//! hierarchy max-propagation rule.

pub mod citation;
pub mod citation_weighted;
pub mod pattern;
pub mod text;

use crate::assign::ContextPatterns;
use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use std::collections::HashMap;
use std::sync::Arc;

/// Which prestige score function produced a score set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreFunction {
    /// §3.1 — per-context PageRank on the citation subgraph.
    Citation,
    /// §3.2 — similarity to the context's representative paper.
    Text,
    /// §3.3 — textual-pattern matching.
    Pattern,
}

impl ScoreFunction {
    /// Display name used in harness tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Citation => "citation",
            Self::Text => "text",
            Self::Pattern => "pattern",
        }
    }
}

/// Per-context prestige scores in [0, 1] (max-normalized per context).
///
/// Stored columnar: one CSR-style arena where `contexts` (ascending)
/// and `offsets` slice the shared `papers`/`values` columns, with
/// `papers` ascending within each context. The serve path reads the
/// two parallel columns of a context directly via [`columns`] and
/// merge-intersects them against the candidate column — no per-query
/// hashing, no pointer chasing. The map-shaped [`new`] constructor
/// remains the builder API for the offline score functions.
///
/// [`columns`]: PrestigeScores::columns
/// [`new`]: PrestigeScores::new
#[derive(Debug, Clone)]
pub struct PrestigeScores {
    /// Contexts with entries, ascending.
    contexts: Vec<ContextId>,
    /// `offsets[i]..offsets[i+1]` slices the columns of `contexts[i]`.
    offsets: Vec<usize>,
    /// Paper column, ascending within each context's slice.
    papers: Vec<PaperId>,
    /// Score column, parallel to `papers`.
    values: Vec<f64>,
    /// The function that produced these scores.
    pub function: ScoreFunction,
}

impl PrestigeScores {
    /// Wrap raw per-context score lists (sorted by paper id internally).
    pub fn new(
        by_context: HashMap<ContextId, Vec<(PaperId, f64)>>,
        function: ScoreFunction,
    ) -> Self {
        let mut entries: Vec<(ContextId, Vec<(PaperId, f64)>)> = by_context.into_iter().collect();
        entries.sort_unstable_by_key(|&(c, _)| c);
        for (_, v) in entries.iter_mut() {
            v.sort_unstable_by_key(|&(p, _)| p);
        }
        let total: usize = entries.iter().map(|(_, v)| v.len()).sum();
        let mut contexts = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut papers = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        offsets.push(0);
        for (c, v) in entries {
            contexts.push(c);
            for (p, s) in v {
                papers.push(p);
                values.push(s);
            }
            offsets.push(papers.len());
        }
        Self {
            contexts,
            offsets,
            papers,
            values,
            function,
        }
    }

    /// Build directly from per-context columns (snapshot v2 load path).
    /// Columns already sorted by paper id load zero-copy into the arena;
    /// unsorted input (a hand-edited file) is sorted on read. Each
    /// `(papers, values)` pair must be equal-length — the persist layer
    /// validates that before calling.
    pub(crate) fn from_context_columns(
        mut cols: Vec<(ContextId, Vec<PaperId>, Vec<f64>)>,
        function: ScoreFunction,
    ) -> Self {
        cols.sort_unstable_by_key(|&(c, _, _)| c);
        let total: usize = cols.iter().map(|(_, p, _)| p.len()).sum();
        let mut contexts = Vec::with_capacity(cols.len());
        let mut offsets = Vec::with_capacity(cols.len() + 1);
        let mut papers = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        offsets.push(0);
        for (c, ps, vs) in cols {
            contexts.push(c);
            if ps.is_sorted() {
                papers.extend(ps);
                values.extend(vs);
            } else {
                let mut pairs: Vec<(PaperId, f64)> = ps.into_iter().zip(vs).collect();
                pairs.sort_unstable_by_key(|&(p, _)| p);
                for (p, s) in pairs {
                    papers.push(p);
                    values.push(s);
                }
            }
            offsets.push(papers.len());
        }
        Self {
            contexts,
            offsets,
            papers,
            values,
            function,
        }
    }

    fn range(&self, context: ContextId) -> Option<std::ops::Range<usize>> {
        let i = self.contexts.binary_search(&context).ok()?;
        Some(self.offsets[i]..self.offsets[i + 1])
    }

    /// The two parallel columns of one context — papers (ascending) and
    /// their scores. Empty slices if the context has no entries. This is
    /// the serve path's accessor: borrowed, allocation-free.
    pub fn columns(&self, context: ContextId) -> (&[PaperId], &[f64]) {
        match self.range(context) {
            Some(r) => (&self.papers[r.clone()], &self.values[r]),
            None => (&[], &[]),
        }
    }

    /// Scores of one context as owned pairs, sorted by paper id.
    /// Allocates — offline/test convenience; the serve path uses
    /// [`columns`](Self::columns).
    pub fn scores(&self, context: ContextId) -> Vec<(PaperId, f64)> {
        let (ps, vs) = self.columns(context);
        ps.iter().copied().zip(vs.iter().copied()).collect()
    }

    /// The score of one paper in one context.
    pub fn get(&self, context: ContextId, paper: PaperId) -> Option<f64> {
        let (ps, vs) = self.columns(context);
        ps.binary_search(&paper).ok().map(|i| vs[i])
    }

    /// Contexts that have entries, in ascending id order.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        self.contexts.iter().copied()
    }

    /// Just the score values of one context (for separability).
    pub fn score_values(&self, context: ContextId) -> &[f64] {
        self.columns(context).1
    }

    /// Iterate every context's columns in ascending context order (the
    /// persistence layer writes these natively as snapshot v2).
    pub(crate) fn iter_columns(&self) -> impl Iterator<Item = (ContextId, &[PaperId], &[f64])> {
        self.contexts.iter().enumerate().map(|(i, &c)| {
            let r = self.offsets[i]..self.offsets[i + 1];
            (c, &self.papers[r.clone()], &self.values[r])
        })
    }

    /// The paper's hierarchy rule (§3): a paper residing in context `c`
    /// and in descendants of `c` takes the *maximum* of its scores
    /// there, because high prestige in a more specific context implies
    /// high relevance to the ancestor.
    ///
    /// Processes contexts in reverse topological order so each child is
    /// final before its parents look at it. Offline-only: works on a
    /// map-shaped copy and rebuilds the columnar arena at the end.
    pub fn propagate_hierarchy_max(&mut self, ontology: &Ontology, sets: &ContextPaperSets) {
        let mut by_context: HashMap<ContextId, Vec<(PaperId, f64)>> = self
            .iter_columns()
            .map(|(c, ps, vs)| (c, ps.iter().copied().zip(vs.iter().copied()).collect()))
            .collect();
        let topo: Vec<ContextId> = ontology.topological_order().to_vec();
        for &c in topo.iter().rev() {
            if !sets.contains_context(c) {
                continue;
            }
            // Collect child maxima for papers that also reside in c.
            let mut updates: Vec<(PaperId, f64)> = Vec::new();
            for &child in ontology.children(c) {
                if let Some(child_scores) = by_context.get(&child) {
                    for &(p, s) in child_scores {
                        if sets.is_member(c, p) {
                            updates.push((p, s));
                        }
                    }
                }
            }
            if updates.is_empty() {
                continue;
            }
            let v = by_context.entry(c).or_default();
            for (p, s) in updates {
                match v.binary_search_by_key(&p, |&(q, _)| q) {
                    Ok(i) => {
                        if s > v[i].1 {
                            v[i].1 = s;
                        }
                    }
                    Err(i) => v.insert(i, (p, s)),
                }
            }
        }
        *self = Self::new(by_context, self.function);
    }
}

/// Task 2 of the paradigm, shared by [`crate::ContextSearchEngine`] and
/// [`crate::Searcher`]: compute one prestige table with explicit
/// options. `patterns` is only invoked when `function` is
/// [`ScoreFunction::Pattern`] (the engine builds lazily; the searcher
/// reads the snapshot's mined patterns).
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_prestige(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
    sets: &ContextPaperSets,
    function: ScoreFunction,
    simplified: bool,
    propagate: bool,
    patterns: impl FnOnce() -> Arc<ContextPatterns>,
) -> PrestigeScores {
    let _span = obs::span("engine.prestige");
    if obs::trace_enabled() {
        obs::trace_instant(
            "prestige.compute",
            vec![
                ("function".to_string(), format!("{function:?}").into()),
                ("n_contexts".to_string(), sets.n_contexts().into()),
                ("simplified".to_string(), simplified.into()),
                ("propagate".to_string(), propagate.into()),
            ],
        );
    }
    let mut scores = match function {
        ScoreFunction::Citation => {
            let _s = obs::span("prestige.citation");
            citation::citation_prestige(sets, &index.graph, config)
        }
        ScoreFunction::Text => {
            let _s = obs::span("prestige.text");
            text::text_prestige(sets, corpus, index, config)
        }
        ScoreFunction::Pattern => {
            let patterns = patterns();
            let _s = obs::span("prestige.pattern");
            pattern::pattern_prestige(ontology, sets, corpus, index, &patterns, config, simplified)
        }
    };
    if propagate {
        let _s = obs::span("prestige.propagate");
        scores.propagate_hierarchy_max(ontology, sets);
    }
    scores
}

/// Max-normalize a score list so the best paper gets 1.0 (no-op when
/// everything is 0 — e.g. an edgeless citation context, whose uniform
/// zero scores are exactly the tie pathology the paper reports).
pub(crate) fn max_normalize(scores: &mut [(PaperId, f64)]) {
    let max = scores.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    if max > 0.0 {
        for (_, s) in scores.iter_mut() {
            *s /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextSetKind;
    use ontology::{Term, TermId};

    fn chain_ontology() -> Ontology {
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.into(),
            name: acc.into(),
            namespace: "t".into(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        // 0 <- 1 <- 2
        Ontology::new(vec![t("a", vec![]), t("b", vec![0]), t("c", vec![1])]).unwrap()
    }

    fn sets_and_scores() -> (ContextPaperSets, PrestigeScores) {
        let mut members = HashMap::new();
        members.insert(TermId(0), vec![PaperId(1), PaperId(2)]);
        members.insert(TermId(1), vec![PaperId(1), PaperId(2)]);
        members.insert(TermId(2), vec![PaperId(1)]);
        let sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        let mut scores = HashMap::new();
        scores.insert(TermId(0), vec![(PaperId(1), 0.1), (PaperId(2), 0.9)]);
        scores.insert(TermId(1), vec![(PaperId(1), 0.4), (PaperId(2), 0.2)]);
        scores.insert(TermId(2), vec![(PaperId(1), 1.0)]);
        (sets, PrestigeScores::new(scores, ScoreFunction::Pattern))
    }

    #[test]
    fn get_and_scores() {
        let (_, s) = sets_and_scores();
        assert_eq!(s.get(TermId(0), PaperId(2)), Some(0.9));
        assert_eq!(s.get(TermId(0), PaperId(7)), None);
        assert!(s.scores(TermId(9)).is_empty());
    }

    #[test]
    fn columns_are_sorted_and_parallel() {
        let (_, s) = sets_and_scores();
        let (ps, vs) = s.columns(TermId(0));
        assert_eq!(ps, &[PaperId(1), PaperId(2)]);
        assert_eq!(vs, &[0.1, 0.9]);
        assert_eq!(s.score_values(TermId(0)), &[0.1, 0.9]);
        let (ps, vs) = s.columns(TermId(9));
        assert!(ps.is_empty() && vs.is_empty());
        // Contexts iterate in ascending id order.
        let cs: Vec<ContextId> = s.contexts().collect();
        assert_eq!(cs, vec![TermId(0), TermId(1), TermId(2)]);
    }

    #[test]
    fn unsorted_input_columns_are_sorted_on_read() {
        let cols = vec![
            (TermId(4), vec![PaperId(9), PaperId(2)], vec![0.9, 0.2]),
            (TermId(1), vec![PaperId(3)], vec![0.3]),
        ];
        let s = PrestigeScores::from_context_columns(cols, ScoreFunction::Text);
        assert_eq!(s.columns(TermId(4)).0, &[PaperId(2), PaperId(9)]);
        assert_eq!(s.columns(TermId(4)).1, &[0.2, 0.9]);
        assert_eq!(s.get(TermId(1), PaperId(3)), Some(0.3));
        let cs: Vec<ContextId> = s.contexts().collect();
        assert_eq!(cs, vec![TermId(1), TermId(4)]);
    }

    #[test]
    fn hierarchy_max_propagates_up_the_chain() {
        let onto = chain_ontology();
        let (sets, mut s) = sets_and_scores();
        s.propagate_hierarchy_max(&onto, &sets);
        // Paper 1: leaf score 1.0 lifts its score in 1 and 0.
        assert_eq!(s.get(TermId(2), PaperId(1)), Some(1.0));
        assert_eq!(s.get(TermId(1), PaperId(1)), Some(1.0));
        assert_eq!(s.get(TermId(0), PaperId(1)), Some(1.0));
        // Paper 2: 0.9 in root stays (child has only 0.2).
        assert_eq!(s.get(TermId(0), PaperId(2)), Some(0.9));
        assert_eq!(s.get(TermId(1), PaperId(2)), Some(0.2));
    }

    #[test]
    fn propagation_respects_membership() {
        let onto = chain_ontology();
        let mut members = HashMap::new();
        // Paper 3 lives only in the leaf.
        members.insert(TermId(0), vec![PaperId(1)]);
        members.insert(TermId(2), vec![PaperId(3)]);
        let sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        let mut scores = HashMap::new();
        scores.insert(TermId(0), vec![(PaperId(1), 0.5)]);
        scores.insert(TermId(2), vec![(PaperId(3), 1.0)]);
        let mut s = PrestigeScores::new(scores, ScoreFunction::Text);
        s.propagate_hierarchy_max(&onto, &sets);
        assert_eq!(
            s.get(TermId(0), PaperId(3)),
            None,
            "non-members don't gain scores"
        );
    }

    #[test]
    fn max_normalize_works() {
        let mut v = vec![(PaperId(0), 2.0), (PaperId(1), 4.0)];
        max_normalize(&mut v);
        assert_eq!(v[0].1, 0.5);
        assert_eq!(v[1].1, 1.0);
        let mut zeros = vec![(PaperId(0), 0.0)];
        max_normalize(&mut zeros);
        assert_eq!(zeros[0].1, 0.0);
    }
}
