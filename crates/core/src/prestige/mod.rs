//! Prestige scores: the paper's three §3 score functions and the
//! hierarchy max-propagation rule.

pub mod citation;
pub mod citation_weighted;
pub mod pattern;
pub mod text;

use crate::assign::ContextPatterns;
use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use std::collections::HashMap;
use std::sync::Arc;

/// Which prestige score function produced a score set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreFunction {
    /// §3.1 — per-context PageRank on the citation subgraph.
    Citation,
    /// §3.2 — similarity to the context's representative paper.
    Text,
    /// §3.3 — textual-pattern matching.
    Pattern,
}

impl ScoreFunction {
    /// Display name used in harness tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Citation => "citation",
            Self::Text => "text",
            Self::Pattern => "pattern",
        }
    }
}

/// Per-context prestige scores in [0, 1] (max-normalized per context).
#[derive(Debug, Clone)]
pub struct PrestigeScores {
    by_context: HashMap<ContextId, Vec<(PaperId, f64)>>,
    /// The function that produced these scores.
    pub function: ScoreFunction,
}

impl PrestigeScores {
    /// Wrap raw per-context score lists (sorted by paper id internally).
    pub fn new(
        mut by_context: HashMap<ContextId, Vec<(PaperId, f64)>>,
        function: ScoreFunction,
    ) -> Self {
        for v in by_context.values_mut() {
            v.sort_unstable_by_key(|&(p, _)| p);
        }
        Self {
            by_context,
            function,
        }
    }

    /// Scores of one context, sorted by paper id.
    pub fn scores(&self, context: ContextId) -> &[(PaperId, f64)] {
        self.by_context
            .get(&context)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The score of one paper in one context.
    pub fn get(&self, context: ContextId, paper: PaperId) -> Option<f64> {
        let v = self.scores(context);
        v.binary_search_by_key(&paper, |&(p, _)| p)
            .ok()
            .map(|i| v[i].1)
    }

    /// Contexts that have scores.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        self.by_context.keys().copied()
    }

    /// Just the score values of one context (for separability).
    pub fn score_values(&self, context: ContextId) -> Vec<f64> {
        self.scores(context).iter().map(|&(_, s)| s).collect()
    }

    /// The paper's hierarchy rule (§3): a paper residing in context `c`
    /// and in descendants of `c` takes the *maximum* of its scores
    /// there, because high prestige in a more specific context implies
    /// high relevance to the ancestor.
    ///
    /// Processes contexts in reverse topological order so each child is
    /// final before its parents look at it.
    pub fn propagate_hierarchy_max(&mut self, ontology: &Ontology, sets: &ContextPaperSets) {
        let topo: Vec<ContextId> = ontology.topological_order().to_vec();
        for &c in topo.iter().rev() {
            if !sets.contains_context(c) {
                continue;
            }
            // Collect child maxima for papers that also reside in c.
            let mut updates: Vec<(PaperId, f64)> = Vec::new();
            for &child in ontology.children(c) {
                for &(p, s) in self.scores(child) {
                    if sets.is_member(c, p) {
                        updates.push((p, s));
                    }
                }
            }
            if updates.is_empty() {
                continue;
            }
            let v = self.by_context.entry(c).or_default();
            for (p, s) in updates {
                match v.binary_search_by_key(&p, |&(q, _)| q) {
                    Ok(i) => {
                        if s > v[i].1 {
                            v[i].1 = s;
                        }
                    }
                    Err(i) => v.insert(i, (p, s)),
                }
            }
        }
    }
}

/// Task 2 of the paradigm, shared by [`crate::ContextSearchEngine`] and
/// [`crate::Searcher`]: compute one prestige table with explicit
/// options. `patterns` is only invoked when `function` is
/// [`ScoreFunction::Pattern`] (the engine builds lazily; the searcher
/// reads the snapshot's mined patterns).
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_prestige(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
    sets: &ContextPaperSets,
    function: ScoreFunction,
    simplified: bool,
    propagate: bool,
    patterns: impl FnOnce() -> Arc<ContextPatterns>,
) -> PrestigeScores {
    let _span = obs::span("engine.prestige");
    if obs::trace_enabled() {
        obs::trace_instant(
            "prestige.compute",
            vec![
                ("function".to_string(), format!("{function:?}").into()),
                ("n_contexts".to_string(), sets.n_contexts().into()),
                ("simplified".to_string(), simplified.into()),
                ("propagate".to_string(), propagate.into()),
            ],
        );
    }
    let mut scores = match function {
        ScoreFunction::Citation => {
            let _s = obs::span("prestige.citation");
            citation::citation_prestige(sets, &index.graph, config)
        }
        ScoreFunction::Text => {
            let _s = obs::span("prestige.text");
            text::text_prestige(sets, corpus, index, config)
        }
        ScoreFunction::Pattern => {
            let patterns = patterns();
            let _s = obs::span("prestige.pattern");
            pattern::pattern_prestige(ontology, sets, corpus, index, &patterns, config, simplified)
        }
    };
    if propagate {
        let _s = obs::span("prestige.propagate");
        scores.propagate_hierarchy_max(ontology, sets);
    }
    scores
}

/// Max-normalize a score list so the best paper gets 1.0 (no-op when
/// everything is 0 — e.g. an edgeless citation context, whose uniform
/// zero scores are exactly the tie pathology the paper reports).
pub(crate) fn max_normalize(scores: &mut [(PaperId, f64)]) {
    let max = scores.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    if max > 0.0 {
        for (_, s) in scores.iter_mut() {
            *s /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextSetKind;
    use ontology::{Term, TermId};

    fn chain_ontology() -> Ontology {
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.into(),
            name: acc.into(),
            namespace: "t".into(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        // 0 <- 1 <- 2
        Ontology::new(vec![t("a", vec![]), t("b", vec![0]), t("c", vec![1])]).unwrap()
    }

    fn sets_and_scores() -> (ContextPaperSets, PrestigeScores) {
        let mut members = HashMap::new();
        members.insert(TermId(0), vec![PaperId(1), PaperId(2)]);
        members.insert(TermId(1), vec![PaperId(1), PaperId(2)]);
        members.insert(TermId(2), vec![PaperId(1)]);
        let sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        let mut scores = HashMap::new();
        scores.insert(TermId(0), vec![(PaperId(1), 0.1), (PaperId(2), 0.9)]);
        scores.insert(TermId(1), vec![(PaperId(1), 0.4), (PaperId(2), 0.2)]);
        scores.insert(TermId(2), vec![(PaperId(1), 1.0)]);
        (sets, PrestigeScores::new(scores, ScoreFunction::Pattern))
    }

    #[test]
    fn get_and_scores() {
        let (_, s) = sets_and_scores();
        assert_eq!(s.get(TermId(0), PaperId(2)), Some(0.9));
        assert_eq!(s.get(TermId(0), PaperId(7)), None);
        assert_eq!(s.scores(TermId(9)), &[]);
    }

    #[test]
    fn hierarchy_max_propagates_up_the_chain() {
        let onto = chain_ontology();
        let (sets, mut s) = sets_and_scores();
        s.propagate_hierarchy_max(&onto, &sets);
        // Paper 1: leaf score 1.0 lifts its score in 1 and 0.
        assert_eq!(s.get(TermId(2), PaperId(1)), Some(1.0));
        assert_eq!(s.get(TermId(1), PaperId(1)), Some(1.0));
        assert_eq!(s.get(TermId(0), PaperId(1)), Some(1.0));
        // Paper 2: 0.9 in root stays (child has only 0.2).
        assert_eq!(s.get(TermId(0), PaperId(2)), Some(0.9));
        assert_eq!(s.get(TermId(1), PaperId(2)), Some(0.2));
    }

    #[test]
    fn propagation_respects_membership() {
        let onto = chain_ontology();
        let mut members = HashMap::new();
        // Paper 3 lives only in the leaf.
        members.insert(TermId(0), vec![PaperId(1)]);
        members.insert(TermId(2), vec![PaperId(3)]);
        let sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        let mut scores = HashMap::new();
        scores.insert(TermId(0), vec![(PaperId(1), 0.5)]);
        scores.insert(TermId(2), vec![(PaperId(3), 1.0)]);
        let mut s = PrestigeScores::new(scores, ScoreFunction::Text);
        s.propagate_hierarchy_max(&onto, &sets);
        assert_eq!(
            s.get(TermId(0), PaperId(3)),
            None,
            "non-members don't gain scores"
        );
    }

    #[test]
    fn max_normalize_works() {
        let mut v = vec![(PaperId(0), 2.0), (PaperId(1), 4.0)];
        max_normalize(&mut v);
        assert_eq!(v[0].1, 0.5);
        assert_eq!(v[1].1, 1.0);
        let mut zeros = vec![(PaperId(0), 0.0)];
        max_normalize(&mut zeros);
        assert_eq!(zeros[0].1, 0.0);
    }
}
