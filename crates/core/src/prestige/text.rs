//! Text-based prestige (paper §3.2): a paper's prestige in a context is
//! its weighted similarity to the context's *representative paper*
//! across six components — title, abstract, body, and index-term
//! TF-IDF cosines, author overlap (level 0 + level 1), and citation
//! similarity (bibliographic coupling + co-citation).

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use crate::prestige::{PrestigeScores, ScoreFunction};
use citegraph::coupling::citation_similarity;
use corpus::{Corpus, PaperId, Section};
use std::collections::HashMap;

/// Compute text-based prestige for every context that has a
/// representative paper. Contexts without one (no annotation evidence)
/// get no text scores — mirroring the paper, where only 5,632 contexts
/// carried them.
pub fn text_prestige(
    sets: &ContextPaperSets,
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
) -> PrestigeScores {
    // `sets.contexts()` iterates ascending, so this is already the
    // deterministic population for the parallel map.
    let contexts: Vec<ContextId> = sets
        .contexts()
        .filter(|c| sets.representatives.contains_key(c))
        .collect();
    let computed: Vec<(ContextId, Vec<(PaperId, f64)>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            let rep = sets.representatives[&context];
            // Absolute similarities (already in [0, 1]): diffuse
            // upper-level contexts legitimately yield small scores — the
            // paper's Fig 5.5 observation depends on this.
            let scores: Vec<(PaperId, f64)> = sets
                .members(context)
                .iter()
                .map(|&p| (p, combined_similarity(corpus, index, config, p, rep)))
                .collect();
            (context, scores)
        });
    PrestigeScores::new(
        computed.into_iter().collect::<HashMap<_, _>>(),
        ScoreFunction::Text,
    )
}

/// The §3.2 similarity `Sim(PX, PC) = Σ weight_i · Sim_i(PX, PC)`.
pub fn combined_similarity(
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
    paper: PaperId,
    representative: PaperId,
) -> f64 {
    let w = &config.text_sim;
    let s_title = index.section_cosine(Section::Title, paper, representative);
    let s_abs = index.section_cosine(Section::Abstract, paper, representative);
    let s_body = index.section_cosine(Section::Body, paper, representative);
    let s_idx = index.section_cosine(Section::IndexTerms, paper, representative);
    let s_auth = index.author_similarity(corpus, paper, representative, w);
    let s_ref = citation_similarity(&index.graph, paper.0, representative.0, w.bib_weight);
    w.title * s_title
        + w.abstract_text * s_abs
        + w.body * s_body
        + w.index_terms * s_idx
        + w.authors * s_auth
        + w.references * s_ref
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::build_text_sets;
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig, Ontology};

    fn setup() -> (Ontology, Corpus, CorpusIndex, EngineConfig) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let config = EngineConfig::default();
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        (onto, corpus, index, config)
    }

    #[test]
    fn representative_scores_maximal() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        let prestige = text_prestige(&sets, &corpus, &index, &config);
        let mut checked = 0;
        for (&c, &rep) in &sets.representatives {
            if let Some(s) = prestige.get(c, rep) {
                // The representative's self-similarity dominates every
                // other member's similarity to it.
                for &(p, other) in prestige.scores(c).iter() {
                    if p != rep {
                        assert!(s >= other - 1e-9, "rep {s} vs {p:?} {other} in {c}");
                    }
                }
                checked += 1;
            }
        }
        assert!(checked > 3);
    }

    #[test]
    fn scores_are_in_unit_range_and_varied() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        let prestige = text_prestige(&sets, &corpus, &index, &config);
        let big = sets
            .contexts_with_min_size(5)
            .into_iter()
            .next()
            .expect("some sizable context");
        let values = prestige.score_values(big);
        assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let distinct: std::collections::HashSet<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert!(
            distinct.len() > 1,
            "text scores should differentiate members"
        );
    }

    #[test]
    fn only_contexts_with_representatives_get_scores() {
        let (onto, corpus, index, config) = setup();
        let mut sets = build_text_sets(&onto, &corpus, &index, &config);
        // Drop one representative; its context must get no scores.
        let victim = sets.contexts().next().unwrap();
        sets.representatives.remove(&victim);
        let prestige = text_prestige(&sets, &corpus, &index, &config);
        assert!(prestige.scores(victim).is_empty());
    }

    #[test]
    fn combined_similarity_is_bounded() {
        let (onto, corpus, index, config) = setup();
        let _ = onto;
        for a in 0..10u32 {
            for b in 0..10u32 {
                let s = combined_similarity(&corpus, &index, &config, PaperId(a), PaperId(b));
                assert!((0.0..=1.0 + 1e-9).contains(&s), "sim {s}");
            }
        }
    }

    #[test]
    fn self_similarity_is_maximal_among_pairs() {
        let (_, corpus, index, config) = setup();
        let s_self = combined_similarity(&corpus, &index, &config, PaperId(3), PaperId(3));
        for b in 0..20u32 {
            if b != 3 {
                let s = combined_similarity(&corpus, &index, &config, PaperId(3), PaperId(b));
                assert!(s_self >= s - 1e-9, "self {s_self} vs {b}: {s}");
            }
        }
    }
}
