//! Persistence of the offline-computed state.
//!
//! The paradigm's whole point is that context assignment and prestige
//! computation happen *before* query time (paper §1: "two query
//! independent pre-processing steps"). This module serializes the two
//! artifacts — [`ContextPaperSets`] and [`PrestigeScores`] — to a
//! stable JSON representation so a deployment can compute them once
//! and load them at search-service startup.

use crate::context::{ContextId, ContextPaperSets, ContextSetKind};
use crate::prestige::{PrestigeScores, ScoreFunction};
use corpus::PaperId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable on-disk form of [`ContextPaperSets`].
#[derive(Debug, Serialize, Deserialize)]
pub struct ContextSetsFile {
    /// "text" or "pattern".
    pub kind: String,
    /// `(context, members)` pairs, sorted by context id.
    pub members: Vec<(u32, Vec<u32>)>,
    /// `(context, representative)` pairs.
    pub representatives: Vec<(u32, u32)>,
    /// `(context, ancestor-it-inherited-from)` pairs.
    pub inherited_from: Vec<(u32, u32)>,
}

/// Stable on-disk form of [`PrestigeScores`].
#[derive(Debug, Serialize, Deserialize)]
pub struct PrestigeFile {
    /// "citation", "text", or "pattern".
    pub function: String,
    /// `(context, [(paper, score)])` entries, sorted by context id.
    pub scores: Vec<(u32, Vec<(u32, f64)>)>,
}

/// Errors raised when loading persisted state.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// An enum discriminant string was unknown.
    UnknownTag(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "malformed persisted state: {e}"),
            Self::UnknownTag(t) => write!(f, "unknown tag {t:?}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Serialize context paper sets to JSON.
pub fn context_sets_to_json(sets: &ContextPaperSets) -> String {
    let mut members: Vec<(u32, Vec<u32>)> = sets
        .contexts()
        .map(|c| (c.0, sets.members(c).iter().map(|p| p.0).collect()))
        .collect();
    members.sort_unstable_by_key(|&(c, _)| c);
    let mut representatives: Vec<(u32, u32)> = sets
        .representatives
        .iter()
        .map(|(&c, &p)| (c.0, p.0))
        .collect();
    representatives.sort_unstable();
    let mut inherited_from: Vec<(u32, u32)> = sets
        .inherited_from
        .iter()
        .map(|(&c, &a)| (c.0, a.0))
        .collect();
    inherited_from.sort_unstable();
    let file = ContextSetsFile {
        kind: match sets.kind {
            ContextSetKind::TextBased => "text".to_string(),
            ContextSetKind::PatternBased => "pattern".to_string(),
        },
        members,
        representatives,
        inherited_from,
    };
    serde_json::to_string(&file).expect("serializable")
}

/// Load context paper sets from JSON produced by
/// [`context_sets_to_json`].
pub fn context_sets_from_json(json: &str) -> Result<ContextPaperSets, PersistError> {
    let file: ContextSetsFile = serde_json::from_str(json)?;
    let kind = match file.kind.as_str() {
        "text" => ContextSetKind::TextBased,
        "pattern" => ContextSetKind::PatternBased,
        other => return Err(PersistError::UnknownTag(other.to_string())),
    };
    let members: HashMap<ContextId, Vec<PaperId>> = file
        .members
        .into_iter()
        .map(|(c, ps)| (ontology::TermId(c), ps.into_iter().map(PaperId).collect()))
        .collect();
    let mut sets = ContextPaperSets::new(members, kind);
    sets.representatives = file
        .representatives
        .into_iter()
        .map(|(c, p)| (ontology::TermId(c), PaperId(p)))
        .collect();
    sets.inherited_from = file
        .inherited_from
        .into_iter()
        .map(|(c, a)| (ontology::TermId(c), ontology::TermId(a)))
        .collect();
    Ok(sets)
}

/// Serialize prestige scores to JSON.
pub fn prestige_to_json(prestige: &PrestigeScores) -> String {
    let mut scores: Vec<(u32, Vec<(u32, f64)>)> = prestige
        .contexts()
        .map(|c| {
            (
                c.0,
                prestige.scores(c).iter().map(|&(p, s)| (p.0, s)).collect(),
            )
        })
        .collect();
    scores.sort_unstable_by_key(|&(c, _)| c);
    let file = PrestigeFile {
        function: prestige.function.name().to_string(),
        scores,
    };
    serde_json::to_string(&file).expect("serializable")
}

/// Load prestige scores from JSON produced by [`prestige_to_json`].
pub fn prestige_from_json(json: &str) -> Result<PrestigeScores, PersistError> {
    let file: PrestigeFile = serde_json::from_str(json)?;
    let function = match file.function.as_str() {
        "citation" => ScoreFunction::Citation,
        "text" => ScoreFunction::Text,
        "pattern" => ScoreFunction::Pattern,
        other => return Err(PersistError::UnknownTag(other.to_string())),
    };
    let by_context: HashMap<ContextId, Vec<(PaperId, f64)>> = file
        .scores
        .into_iter()
        .map(|(c, ps)| {
            (
                ontology::TermId(c),
                ps.into_iter().map(|(p, s)| (PaperId(p), s)).collect(),
            )
        })
        .collect();
    Ok(PrestigeScores::new(by_context, function))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;

    fn sample_sets() -> ContextPaperSets {
        let mut members = HashMap::new();
        members.insert(TermId(3), vec![PaperId(5), PaperId(1)]);
        members.insert(TermId(7), vec![PaperId(2)]);
        let mut sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        sets.representatives.insert(TermId(3), PaperId(1));
        sets.inherited_from.insert(TermId(7), TermId(3));
        sets
    }

    #[test]
    fn context_sets_round_trip() {
        let sets = sample_sets();
        let json = context_sets_to_json(&sets);
        let loaded = context_sets_from_json(&json).unwrap();
        assert_eq!(loaded.kind, sets.kind);
        assert_eq!(loaded.members(TermId(3)), sets.members(TermId(3)));
        assert_eq!(loaded.members(TermId(7)), sets.members(TermId(7)));
        assert_eq!(loaded.representatives, sets.representatives);
        assert_eq!(loaded.inherited_from, sets.inherited_from);
    }

    #[test]
    fn prestige_round_trips() {
        let mut scores = HashMap::new();
        scores.insert(TermId(3), vec![(PaperId(1), 0.25), (PaperId(5), 1.0)]);
        let prestige = PrestigeScores::new(scores, ScoreFunction::Text);
        let json = prestige_to_json(&prestige);
        let loaded = prestige_from_json(&json).unwrap();
        assert_eq!(loaded.function, ScoreFunction::Text);
        assert_eq!(loaded.scores(TermId(3)), prestige.scores(TermId(3)));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            context_sets_from_json("{"),
            Err(PersistError::Json(_))
        ));
        assert!(matches!(
            prestige_from_json(r#"{"function":"voodoo","scores":[]}"#),
            Err(PersistError::UnknownTag(_))
        ));
        assert!(matches!(
            context_sets_from_json(
                r#"{"kind":"voodoo","members":[],"representatives":[],"inherited_from":[]}"#
            ),
            Err(PersistError::UnknownTag(_))
        ));
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let sets = sample_sets();
        let a = context_sets_to_json(&sets);
        let b = context_sets_to_json(&sets);
        assert_eq!(a, b, "serialization must be deterministic");
        // Context 3 precedes context 7 in the output.
        assert!(a.find("[3,").unwrap() < a.find("[7,").unwrap());
    }
}
