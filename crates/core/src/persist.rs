//! Persistence of the offline-computed state.
//!
//! The paradigm's whole point is that context assignment and prestige
//! computation happen *before* query time (paper §1: "two query
//! independent pre-processing steps"). This module serializes the two
//! artifacts — [`ContextPaperSets`] and [`PrestigeScores`] — to a
//! stable JSON representation, and composes them (plus the ontology and
//! corpus) into a full [`EngineSnapshot`] directory via
//! [`save_snapshot`] / [`load_snapshot`], so a deployment prepares once
//! and warm-starts the search service from disk — skipping context
//! assignment, pattern mining, and every per-context prestige/PageRank
//! computation on load.
//!
//! Snapshot directory layout (versioned by [`SnapshotHeader`]):
//! `snapshot.json` (header, written last), `ontology.obo`,
//! `corpus.json`, `sets_{kind}.json`, and one
//! `prestige_{kind}_{function}.json` per prepared pair — the same file
//! names and JSON formats the `litsearch` CLI uses for its piecemeal
//! artifacts, so the two stay mutually readable.

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets, ContextSetKind};
use crate::indexes::CorpusIndex;
use crate::prestige::{PrestigeScores, ScoreFunction};
use crate::snapshot::{EngineSnapshot, PrestigePair};
use corpus::{Corpus, PaperId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Stable on-disk form of [`ContextPaperSets`].
#[derive(Debug, Serialize, Deserialize)]
pub struct ContextSetsFile {
    /// "text" or "pattern".
    pub kind: String,
    /// `(context, members)` pairs, sorted by context id.
    pub members: Vec<(u32, Vec<u32>)>,
    /// `(context, representative)` pairs.
    pub representatives: Vec<(u32, u32)>,
    /// `(context, ancestor-it-inherited-from)` pairs.
    pub inherited_from: Vec<(u32, u32)>,
}

/// Version-1 on-disk form of [`PrestigeScores`] (pair-shaped). Still
/// accepted by [`prestige_from_json`] so old snapshots keep loading;
/// new files are written as [`PrestigeFileV2`].
#[derive(Debug, Serialize, Deserialize)]
pub struct PrestigeFile {
    /// "citation", "text", or "pattern".
    pub function: String,
    /// `(context, [(paper, score)])` entries, sorted by context id.
    pub scores: Vec<(u32, Vec<(u32, f64)>)>,
}

/// Version-2 on-disk form of [`PrestigeScores`]: native sorted columns,
/// so loading is a validation pass instead of a rebuild-and-sort. The
/// field name (`columns` vs the v1 `scores`) is what distinguishes the
/// two shapes on read.
#[derive(Debug, Serialize, Deserialize)]
pub struct PrestigeFileV2 {
    /// "citation", "text", or "pattern".
    pub function: String,
    /// `(context, papers, values)` column triples: contexts ascending,
    /// papers ascending within each context, values parallel.
    pub columns: Vec<(u32, Vec<u32>, Vec<f64>)>,
}

/// The magic string identifying a snapshot directory's header file.
pub const SNAPSHOT_MAGIC: &str = "litsearch-snapshot";

/// Current on-disk snapshot format version. Bump on any layout change;
/// [`load_snapshot`] rejects versions outside
/// [`MIN_SNAPSHOT_VERSION`]`..=`[`SNAPSHOT_VERSION`] with a clean
/// [`PersistError::VersionMismatch`].
///
/// Version history: 1 = pair-shaped prestige files; 2 = columnar
/// prestige files ([`PrestigeFileV2`]).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Oldest snapshot format version this build still reads. Version-1
/// directories load through the pair-shaped fallback parse and produce
/// byte-identical engines.
pub const MIN_SNAPSHOT_VERSION: u32 = 1;

/// The `snapshot.json` header of a snapshot directory: identifies the
/// format, versions it, and records enough shape to cross-check the
/// payload files against.
#[derive(Debug, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Always [`SNAPSHOT_MAGIC`].
    pub magic: String,
    /// Always [`SNAPSHOT_VERSION`] for files this build writes.
    pub version: u32,
    /// Paper count of the persisted corpus.
    pub papers: usize,
    /// Term count of the persisted ontology.
    pub terms: usize,
    /// The prepared (kind, function) prestige pairs, by name.
    pub pairs: Vec<(String, String)>,
}

/// Errors raised when loading persisted state.
#[derive(Debug)]
pub enum PersistError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// An enum discriminant string was unknown.
    UnknownTag(String),
    /// A snapshot file could not be read or written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The header's magic string is not [`SNAPSHOT_MAGIC`] — this is
    /// not a snapshot directory.
    BadMagic(String),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// A payload file contradicts the header (wrong tag, wrong shape).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "malformed persisted state: {e}"),
            Self::UnknownTag(t) => write!(f, "unknown tag {t:?}"),
            Self::Io { path, source } => {
                write!(f, "snapshot I/O failed on {}: {source}", path.display())
            }
            Self::BadMagic(m) => write!(
                f,
                "not a snapshot: header magic is {m:?}, expected {SNAPSHOT_MAGIC:?}"
            ),
            Self::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads {MIN_SNAPSHOT_VERSION}..={expected})"
            ),
            Self::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Serialize context paper sets to JSON.
pub fn context_sets_to_json(sets: &ContextPaperSets) -> Result<String, PersistError> {
    let mut members: Vec<(u32, Vec<u32>)> = sets
        .contexts()
        .map(|c| (c.0, sets.members(c).iter().map(|p| p.0).collect()))
        .collect();
    members.sort_unstable_by_key(|&(c, _)| c);
    let mut representatives: Vec<(u32, u32)> = sets
        .representatives
        .iter()
        .map(|(&c, &p)| (c.0, p.0))
        .collect();
    representatives.sort_unstable();
    let mut inherited_from: Vec<(u32, u32)> = sets
        .inherited_from
        .iter()
        .map(|(&c, &a)| (c.0, a.0))
        .collect();
    inherited_from.sort_unstable();
    let file = ContextSetsFile {
        kind: match sets.kind {
            ContextSetKind::TextBased => "text".to_string(),
            ContextSetKind::PatternBased => "pattern".to_string(),
        },
        members,
        representatives,
        inherited_from,
    };
    Ok(serde_json::to_string(&file)?)
}

/// Load context paper sets from JSON produced by
/// [`context_sets_to_json`].
pub fn context_sets_from_json(json: &str) -> Result<ContextPaperSets, PersistError> {
    let file: ContextSetsFile = serde_json::from_str(json)?;
    let kind = match file.kind.as_str() {
        "text" => ContextSetKind::TextBased,
        "pattern" => ContextSetKind::PatternBased,
        other => return Err(PersistError::UnknownTag(other.to_string())),
    };
    let members: HashMap<ContextId, Vec<PaperId>> = file
        .members
        .into_iter()
        .map(|(c, ps)| (ontology::TermId(c), ps.into_iter().map(PaperId).collect()))
        .collect();
    let mut sets = ContextPaperSets::new(members, kind);
    sets.representatives = file
        .representatives
        .into_iter()
        .map(|(c, p)| (ontology::TermId(c), PaperId(p)))
        .collect();
    sets.inherited_from = file
        .inherited_from
        .into_iter()
        .map(|(c, a)| (ontology::TermId(c), ontology::TermId(a)))
        .collect();
    Ok(sets)
}

/// Serialize prestige scores to JSON (the v2 columnar shape — the
/// in-memory columns go to disk as-is, contexts ascending).
pub fn prestige_to_json(prestige: &PrestigeScores) -> Result<String, PersistError> {
    let columns: Vec<(u32, Vec<u32>, Vec<f64>)> = prestige
        .iter_columns()
        .map(|(c, papers, values)| (c.0, papers.iter().map(|p| p.0).collect(), values.to_vec()))
        .collect();
    let file = PrestigeFileV2 {
        function: prestige.function.name().to_string(),
        columns,
    };
    Ok(serde_json::to_string(&file)?)
}

/// Load prestige scores from JSON: the v2 columnar shape written by
/// [`prestige_to_json`], or the v1 pair shape (sorted into columns on
/// read), distinguished by field name. Both produce identical
/// in-memory state for the same scores.
pub fn prestige_from_json(json: &str) -> Result<PrestigeScores, PersistError> {
    if let Ok(file) = serde_json::from_str::<PrestigeFileV2>(json) {
        let function = function_from_name(&file.function)?;
        let mut cols: Vec<(ContextId, Vec<PaperId>, Vec<f64>)> =
            Vec::with_capacity(file.columns.len());
        for (c, papers, values) in file.columns {
            if papers.len() != values.len() {
                return Err(PersistError::Corrupt(format!(
                    "prestige context {c}: {} papers but {} values",
                    papers.len(),
                    values.len()
                )));
            }
            cols.push((
                ontology::TermId(c),
                papers.into_iter().map(PaperId).collect(),
                values,
            ));
        }
        return Ok(PrestigeScores::from_context_columns(cols, function));
    }
    let file: PrestigeFile = serde_json::from_str(json)?;
    let function = function_from_name(&file.function)?;
    let by_context: HashMap<ContextId, Vec<(PaperId, f64)>> = file
        .scores
        .into_iter()
        .map(|(c, ps)| {
            (
                ontology::TermId(c),
                ps.into_iter().map(|(p, s)| (PaperId(p), s)).collect(),
            )
        })
        .collect();
    Ok(PrestigeScores::new(by_context, function))
}

fn sets_file_name(kind: ContextSetKind) -> String {
    format!("sets_{}.json", kind.name())
}

fn prestige_file_name(kind: ContextSetKind, function: ScoreFunction) -> String {
    format!("prestige_{}_{}.json", kind.name(), function.name())
}

fn read_file(path: &Path) -> Result<String, PersistError> {
    std::fs::read_to_string(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn write_file(path: &Path, content: &str) -> Result<(), PersistError> {
    std::fs::write(path, content).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn kind_from_name(name: &str) -> Result<ContextSetKind, PersistError> {
    match name {
        "text" => Ok(ContextSetKind::TextBased),
        "pattern" => Ok(ContextSetKind::PatternBased),
        other => Err(PersistError::UnknownTag(other.to_string())),
    }
}

fn function_from_name(name: &str) -> Result<ScoreFunction, PersistError> {
    match name {
        "citation" => Ok(ScoreFunction::Citation),
        "text" => Ok(ScoreFunction::Text),
        "pattern" => Ok(ScoreFunction::Pattern),
        other => Err(PersistError::UnknownTag(other.to_string())),
    }
}

/// Write a full snapshot directory: header, ontology, corpus, both
/// context paper sets, and every prepared prestige table.
///
/// The header is written last, so a directory interrupted mid-save
/// never presents itself as loadable. The corpus is serialized with the
/// ontology's term names (in term-id order) as its extra texts — the
/// same convention `generate_corpus` and the CLI use — so the rebuilt
/// vocabulary, and therefore every TF-IDF vector and query analysis, is
/// bit-identical after [`load_snapshot`].
pub fn save_snapshot(snapshot: &EngineSnapshot, dir: &Path) -> Result<(), PersistError> {
    let _span = obs::span("persist.save_snapshot");
    std::fs::create_dir_all(dir).map_err(|source| PersistError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let ontology = snapshot.ontology();
    write_file(
        &dir.join("ontology.obo"),
        &ontology::obo::write_obo(ontology),
    )?;
    let term_names: Vec<String> = ontology
        .term_ids()
        .map(|t| ontology.term(t).name.clone())
        .collect();
    write_file(
        &dir.join("corpus.json"),
        &snapshot.corpus().to_json(&term_names),
    )?;
    for kind in [ContextSetKind::TextBased, ContextSetKind::PatternBased] {
        write_file(
            &dir.join(sets_file_name(kind)),
            &context_sets_to_json(snapshot.sets(kind))?,
        )?;
    }
    let pairs = snapshot.pairs();
    for &(kind, function) in &pairs {
        let table = snapshot.prestige(kind, function).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "pairs() listed unprepared table {}/{}",
                kind.name(),
                function.name()
            ))
        })?;
        write_file(
            &dir.join(prestige_file_name(kind, function)),
            &prestige_to_json(table)?,
        )?;
    }
    let header = SnapshotHeader {
        magic: SNAPSHOT_MAGIC.to_string(),
        version: SNAPSHOT_VERSION,
        papers: snapshot.corpus().len(),
        terms: ontology.len(),
        pairs: pairs
            .iter()
            .map(|&(k, f)| (k.name().to_string(), f.name().to_string()))
            .collect(),
    };
    write_file(
        &dir.join("snapshot.json"),
        &serde_json::to_string_pretty(&header)?,
    )?;
    obs::counter("persist.snapshots_saved", 1);
    Ok(())
}

/// Warm-start: load a snapshot directory written by [`save_snapshot`].
///
/// Rebuilds only the query-time index (tokenization, TF-IDF vectors,
/// the citation graph, and one global PageRank) — context assignment,
/// pattern mining, and every per-context prestige/PageRank computation
/// are read back from disk instead of recomputed. The returned snapshot
/// has `patterns() == None`.
pub fn load_snapshot(
    dir: &Path,
    config: EngineConfig,
) -> Result<Arc<EngineSnapshot>, PersistError> {
    let _span = obs::span("persist.load_snapshot");
    let clock = obs::MonotonicClock::default();
    let load_start_ns = obs::Clock::now_ns(&clock);
    let header: SnapshotHeader = serde_json::from_str(&read_file(&dir.join("snapshot.json"))?)?;
    if header.magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic(header.magic));
    }
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&header.version) {
        return Err(PersistError::VersionMismatch {
            found: header.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let ontology = ontology::obo::parse_obo(&read_file(&dir.join("ontology.obo"))?)
        .map_err(|e| PersistError::Corrupt(format!("ontology.obo: {e}")))?;
    let corpus = Corpus::from_json(&read_file(&dir.join("corpus.json"))?)?;
    if corpus.len() != header.papers || ontology.len() != header.terms {
        return Err(PersistError::Corrupt(format!(
            "header promises {} papers / {} terms, payload has {} / {}",
            header.papers,
            header.terms,
            corpus.len(),
            ontology.len()
        )));
    }
    let index = CorpusIndex::build(&ontology, &corpus, &config.pagerank);
    let mut sets_by_kind: HashMap<ContextSetKind, ContextPaperSets> = HashMap::new();
    for kind in [ContextSetKind::TextBased, ContextSetKind::PatternBased] {
        let name = sets_file_name(kind);
        let sets = context_sets_from_json(&read_file(&dir.join(&name))?)?;
        if sets.kind != kind {
            return Err(PersistError::Corrupt(format!(
                "{name} holds a {:?} set",
                sets.kind
            )));
        }
        sets_by_kind.insert(kind, sets);
    }
    let mut prestige: HashMap<PrestigePair, PrestigeScores> = HashMap::new();
    for (kind_name, function_name) in &header.pairs {
        let kind = kind_from_name(kind_name)?;
        let function = function_from_name(function_name)?;
        let name = prestige_file_name(kind, function);
        let table = prestige_from_json(&read_file(&dir.join(&name))?)?;
        if table.function != function {
            return Err(PersistError::Corrupt(format!(
                "{name} holds a {} table",
                table.function.name()
            )));
        }
        prestige.insert((kind, function), table);
    }
    let mut take_sets = |kind: ContextSetKind| {
        sets_by_kind.remove(&kind).ok_or_else(|| {
            PersistError::Corrupt(format!("no {} context sets were loaded", kind.name()))
        })
    };
    let text_sets = take_sets(ContextSetKind::TextBased)?;
    let pattern_sets = take_sets(ContextSetKind::PatternBased)?;
    obs::counter("persist.snapshots_loaded", 1);
    // Surface parse-bound load cost directly (the span only reaches the
    // histogram; the gauge makes the latest load time greppable in any
    // metrics snapshot, e.g. by load-smoke at larger corpus scales).
    let load_ms = (obs::Clock::now_ns(&clock).saturating_sub(load_start_ns)) as f64 / 1e6;
    obs::gauge("persist.load_snapshot_ms", load_ms);
    Ok(Arc::new(EngineSnapshot::from_parts(
        ontology,
        corpus,
        config,
        index,
        text_sets,
        pattern_sets,
        prestige,
        None,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;

    fn sample_sets() -> ContextPaperSets {
        let mut members = HashMap::new();
        members.insert(TermId(3), vec![PaperId(5), PaperId(1)]);
        members.insert(TermId(7), vec![PaperId(2)]);
        let mut sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
        sets.representatives.insert(TermId(3), PaperId(1));
        sets.inherited_from.insert(TermId(7), TermId(3));
        sets
    }

    #[test]
    fn context_sets_round_trip() {
        let sets = sample_sets();
        let json = context_sets_to_json(&sets).unwrap();
        let loaded = context_sets_from_json(&json).unwrap();
        assert_eq!(loaded.kind, sets.kind);
        assert_eq!(loaded.members(TermId(3)), sets.members(TermId(3)));
        assert_eq!(loaded.members(TermId(7)), sets.members(TermId(7)));
        assert_eq!(loaded.representatives, sets.representatives);
        assert_eq!(loaded.inherited_from, sets.inherited_from);
    }

    #[test]
    fn prestige_round_trips() {
        let mut scores = HashMap::new();
        scores.insert(TermId(3), vec![(PaperId(1), 0.25), (PaperId(5), 1.0)]);
        let prestige = PrestigeScores::new(scores, ScoreFunction::Text);
        let json = prestige_to_json(&prestige).unwrap();
        let loaded = prestige_from_json(&json).unwrap();
        assert_eq!(loaded.function, ScoreFunction::Text);
        assert_eq!(loaded.scores(TermId(3)), prestige.scores(TermId(3)));
    }

    #[test]
    fn v1_pair_shaped_prestige_json_still_loads() {
        // The exact shape SNAPSHOT_VERSION=1 builds wrote — unsorted
        // pairs included.
        let json = r#"{"function":"text","scores":[[3,[[5,1.0],[1,0.25]]]]}"#;
        let loaded = prestige_from_json(json).unwrap();
        assert_eq!(loaded.function, ScoreFunction::Text);
        assert_eq!(
            loaded.scores(TermId(3)),
            vec![(PaperId(1), 0.25), (PaperId(5), 1.0)]
        );
        // Re-serializing upgrades to the columnar shape, losslessly.
        let rewritten = prestige_to_json(&loaded).unwrap();
        assert!(rewritten.contains("\"columns\""));
        let again = prestige_from_json(&rewritten).unwrap();
        assert_eq!(again.scores(TermId(3)), loaded.scores(TermId(3)));
    }

    #[test]
    fn v2_column_length_mismatch_is_corrupt() {
        let json = r#"{"function":"text","columns":[[3,[1,5],[0.25]]]}"#;
        assert!(matches!(
            prestige_from_json(json),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            context_sets_from_json("{"),
            Err(PersistError::Json(_))
        ));
        assert!(matches!(
            prestige_from_json(r#"{"function":"voodoo","scores":[]}"#),
            Err(PersistError::UnknownTag(_))
        ));
        assert!(matches!(
            context_sets_from_json(
                r#"{"kind":"voodoo","members":[],"representatives":[],"inherited_from":[]}"#
            ),
            Err(PersistError::UnknownTag(_))
        ));
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let sets = sample_sets();
        let a = context_sets_to_json(&sets).unwrap();
        let b = context_sets_to_json(&sets).unwrap();
        assert_eq!(a, b, "serialization must be deterministic");
        // Context 3 precedes context 7 in the output.
        assert!(a.find("[3,").unwrap() < a.find("[7,").unwrap());
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("litsearch_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header_json(magic: &str, version: u32) -> String {
        format!(r#"{{"magic":{magic:?},"version":{version},"papers":0,"terms":0,"pairs":[]}}"#)
    }

    #[test]
    fn loading_a_non_snapshot_is_a_clean_error() {
        let dir = scratch_dir("badmagic");
        std::fs::write(dir.join("snapshot.json"), header_json("not-a-snapshot", 1)).unwrap();
        let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_a_future_version_is_a_clean_error() {
        let dir = scratch_dir("version");
        std::fs::write(dir.join("snapshot.json"), header_json(SNAPSHOT_MAGIC, 99)).unwrap();
        let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::VersionMismatch {
                    found: 99,
                    expected: SNAPSHOT_VERSION
                }
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_garbled_snapshot_files_are_clean_errors() {
        // No header at all → Io, not a panic.
        let dir = scratch_dir("missing");
        let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }), "{err}");
        // A valid header over garbage payloads → Json/Corrupt, not a panic.
        std::fs::write(dir.join("snapshot.json"), header_json(SNAPSHOT_MAGIC, 1)).unwrap();
        std::fs::write(dir.join("ontology.obo"), "[Term]\nthis is not obo").unwrap();
        let err = load_snapshot(&dir, EngineConfig::default()).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_) | PersistError::Io { .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
