//! Text-based context paper set (paper §4).
//!
//! "Created by using the text-based similarity measure between a
//! representative paper of a context and papers in our database."
//!
//! The representative of a context is the annotation-evidence paper
//! closest to the centroid of all its evidence papers (the single
//! evidence paper when there is only one). Every corpus paper whose
//! whole-text cosine to the representative reaches the assignment
//! threshold joins the context; evidence papers always belong.
//! Contexts without evidence get no representative and no paper set —
//! exactly the paper's situation, where only 5,632 of the contexts
//! carried text-based sets.

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets, ContextSetKind};
use crate::indexes::CorpusIndex;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use std::collections::HashMap;
use textproc::SparseVector;

/// Build the text-based context paper set.
pub fn build_text_sets(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
) -> ContextPaperSets {
    let candidates: Vec<ContextId> = ontology
        .term_ids()
        .filter(|&t| !corpus.evidence_for(t).is_empty())
        .collect();

    let threshold = config.assign.text_threshold;
    let results: Vec<(ContextId, PaperId, Vec<PaperId>)> =
        crate::parallel_map(config.threads, &candidates, |&context| {
            let evidence = corpus.evidence_for(context);
            let rep = pick_representative(index, evidence);
            let rep_vec = &index.doc_vectors[rep.index()];
            // `search` is strict (score > min); nudge so score == t joins.
            let mut members: Vec<PaperId> = index
                .keyword_search(rep_vec, threshold - 1e-12)
                .into_iter()
                .map(|(p, _)| p)
                .collect();
            members.extend_from_slice(evidence);
            (context, rep, members)
        });

    let mut members: HashMap<ContextId, Vec<PaperId>> = HashMap::with_capacity(results.len());
    let mut representatives: HashMap<ContextId, PaperId> = HashMap::with_capacity(results.len());
    for (context, rep, papers) in results {
        representatives.insert(context, rep);
        members.insert(context, papers);
    }
    let mut sets = ContextPaperSets::new(members, ContextSetKind::TextBased);
    sets.representatives = representatives;
    sets
}

/// The evidence paper closest to the evidence centroid ("a paper that
/// best characterizes the context", §1).
fn pick_representative(index: &CorpusIndex, evidence: &[PaperId]) -> PaperId {
    debug_assert!(!evidence.is_empty());
    if evidence.len() == 1 {
        return evidence[0];
    }
    let centroid = SparseVector::centroid(evidence.iter().map(|p| &index.doc_vectors[p.index()]));
    evidence
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let sa = index.whole_cosine(a, &centroid);
            let sb = index.whole_cosine(b, &centroid);
            sa.total_cmp(&sb).then(b.0.cmp(&a.0))
        })
        .expect("non-empty evidence")
}

#[cfg(test)]
mod tests {
    use super::*;
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (Ontology, Corpus, CorpusIndex, EngineConfig) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let config = EngineConfig::default();
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        (onto, corpus, index, config)
    }

    #[test]
    fn contexts_with_evidence_get_sets_and_representatives() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        assert!(sets.n_contexts() > 5);
        for c in sets.contexts() {
            assert!(
                sets.representatives.contains_key(&c),
                "every text context has a representative"
            );
            assert!(!corpus.evidence_for(c).is_empty());
        }
    }

    #[test]
    fn representative_is_an_evidence_paper_and_a_member() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        for (&c, &rep) in &sets.representatives {
            assert!(corpus.evidence_for(c).contains(&rep));
            assert!(sets.is_member(c, rep), "representative belongs to set");
        }
    }

    #[test]
    fn members_meet_similarity_threshold_or_are_evidence() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        let c = sets.contexts().next().unwrap();
        let rep = sets.representatives[&c];
        let rep_vec = &index.doc_vectors[rep.index()];
        for &p in sets.members(c) {
            let sim = index.whole_cosine(p, rep_vec);
            let is_evidence = corpus.evidence_for(c).contains(&p);
            assert!(
                sim >= config.assign.text_threshold - 1e-9 || is_evidence,
                "member {p:?} sim {sim}"
            );
        }
    }

    #[test]
    fn contexts_without_evidence_have_no_set() {
        let (onto, corpus, index, config) = setup();
        let sets = build_text_sets(&onto, &corpus, &index, &config);
        for t in onto.term_ids() {
            if corpus.evidence_for(t).is_empty() {
                assert!(!sets.contains_context(t));
            }
        }
    }

    #[test]
    fn higher_threshold_means_smaller_contexts() {
        let (onto, corpus, index, mut config) = setup();
        let loose = build_text_sets(&onto, &corpus, &index, &config);
        config.assign.text_threshold = 0.5;
        let tight = build_text_sets(&onto, &corpus, &index, &config);
        assert!(tight.mean_size() <= loose.mean_size());
    }
}
