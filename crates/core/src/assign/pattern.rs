//! Pattern-based context paper set (paper §4) and the shared
//! per-context pattern sets.
//!
//! The paper's simplified variant: "only middle tuples of patterns were
//! considered during pattern matching, extended patterns were not used,
//! and descendant contexts' papers were included with the ancestor
//! context. If the context contained zero papers, then the closest
//! ancestor's paper set was assigned to the context" — with the score
//! decay `RateOfDecay(Cancs, Cdesc) = I(Cancs)/I(Cdesc)` applied later
//! by the pattern prestige function.

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets, ContextSetKind};
use crate::indexes::CorpusIndex;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use patterns::{build_patterns, extract_significant_terms, MatcherConfig, Pattern, SectionTokens};
use std::collections::HashMap;

/// The scored pattern sets of every context that has any.
#[derive(Default)]
pub struct ContextPatterns {
    /// Patterns per context, best-scored first.
    pub by_context: HashMap<ContextId, Vec<Pattern>>,
}

impl ContextPatterns {
    /// Patterns of one context (empty slice if none).
    pub fn patterns(&self, context: ContextId) -> &[Pattern] {
        self.by_context
            .get(&context)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Build every context's pattern set from its term name and training
/// (annotation-evidence) papers. Contexts without evidence still get
/// patterns from their term name alone — that is what lets the
/// pattern-based paper set cover *all* contexts (§4), unlike the
/// text-based one.
pub fn patterns_by_context(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
) -> ContextPatterns {
    let mut pattern_cfg = config.pattern.clone();
    if !config.use_extended_patterns {
        pattern_cfg.max_extended = 0;
    }
    let contexts: Vec<ContextId> = ontology.term_ids().collect();
    let built: Vec<(ContextId, Vec<Pattern>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            let name_tokens = &index.term_name_tokens[context.index()];
            let training: Vec<Vec<textproc::TermId>> = corpus
                .evidence_for(context)
                .iter()
                .map(|&p| corpus.analyzed(p).concat())
                .collect();
            let sig = extract_significant_terms(
                name_tokens,
                &training,
                pattern_cfg.min_support,
                pattern_cfg.max_phrase_len,
            );
            let pats = build_patterns(
                &sig,
                name_tokens,
                &training,
                &index.selectivity,
                &|middle| index.coverage_estimate(middle),
                &pattern_cfg,
            );
            (context, pats)
        });
    ContextPatterns {
        by_context: built.into_iter().filter(|(_, p)| !p.is_empty()).collect(),
    }
}

/// Build the pattern-based context paper set using the simplified
/// (middle-only) matching.
pub fn build_pattern_sets(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    patterns: &ContextPatterns,
    config: &EngineConfig,
) -> ContextPaperSets {
    let matcher = MatcherConfig {
        middle_only: true,
        ..config.matcher.clone()
    };
    let contexts: Vec<ContextId> = ontology.term_ids().collect();

    // Direct assignment: candidate papers from the inverted index, then
    // middle-only match strength against the context's patterns.
    let direct: Vec<(ContextId, Vec<PaperId>)> =
        crate::parallel_map(config.threads, &contexts, |&context| {
            let pats = patterns.patterns(context);
            let mut members: Vec<PaperId> = Vec::new();
            for pat in pats {
                for paper in index.papers_containing_phrase(corpus, &pat.middle) {
                    let a = corpus.analyzed(paper);
                    let sections = SectionTokens {
                        title: &a.title,
                        abstract_text: &a.abstract_text,
                        body: &a.body,
                        index_terms: &a.index_terms,
                    };
                    let strength = patterns::matcher::match_strength(pat, &sections, &matcher);
                    if strength >= config.assign.pattern_min_strength {
                        members.push(paper);
                    }
                }
            }
            members.sort_unstable();
            members.dedup();
            (context, members)
        });
    let mut members: HashMap<ContextId, Vec<PaperId>> = direct.into_iter().collect();

    // Descendant aggregation: children's papers flow into ancestors.
    // Reverse topological order guarantees children are final first.
    let topo: Vec<ContextId> = ontology.topological_order().to_vec();
    for &c in topo.iter().rev() {
        let child_papers: Vec<PaperId> = ontology
            .children(c)
            .iter()
            .flat_map(|ch| members.get(ch).cloned().unwrap_or_default())
            .collect();
        if !child_papers.is_empty() {
            let e = members.entry(c).or_default();
            e.extend(child_papers);
            e.sort_unstable();
            e.dedup();
        }
    }

    // Empty contexts inherit the closest ancestor's set.
    let mut inherited_from: HashMap<ContextId, ContextId> = HashMap::new();
    for &c in &topo {
        // Topological order: ancestors settle before descendants, so an
        // inherited set can cascade further down.
        if members.get(&c).is_none_or(Vec::is_empty) {
            let mut cur = c;
            while let Some(ancestor) = ontology.closest_ancestor(cur) {
                if let Some(set) = members.get(&ancestor) {
                    if !set.is_empty() {
                        members.insert(c, set.clone());
                        // Record the *original* owner if the ancestor
                        // itself inherited.
                        let origin = inherited_from.get(&ancestor).copied().unwrap_or(ancestor);
                        inherited_from.insert(c, origin);
                        break;
                    }
                }
                cur = ancestor;
            }
        }
    }

    let mut sets = ContextPaperSets::new(members, ContextSetKind::PatternBased);
    sets.inherited_from = inherited_from;
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (Ontology, Corpus, CorpusIndex, EngineConfig) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let config = EngineConfig::default();
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        (onto, corpus, index, config)
    }

    #[test]
    fn all_terms_get_patterns() {
        let (onto, corpus, index, config) = setup();
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        // Every term has a name, so virtually every term has patterns.
        assert!(pats.by_context.len() as f64 > onto.len() as f64 * 0.9);
    }

    #[test]
    fn pattern_sets_cover_far_more_contexts_than_text_sets() {
        let (onto, corpus, index, config) = setup();
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        let pattern_sets = build_pattern_sets(&onto, &corpus, &index, &pats, &config);
        let text_sets = crate::assign::build_text_sets(&onto, &corpus, &index, &config);
        assert!(
            pattern_sets.n_contexts() > text_sets.n_contexts(),
            "pattern: {} vs text: {}",
            pattern_sets.n_contexts(),
            text_sets.n_contexts()
        );
    }

    #[test]
    fn ancestors_contain_descendant_papers() {
        let (onto, corpus, index, config) = setup();
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        let sets = build_pattern_sets(&onto, &corpus, &index, &pats, &config);
        for c in onto.term_ids() {
            if !sets.contains_context(c) || sets.inherited_from.contains_key(&c) {
                continue;
            }
            for &child in onto.children(c) {
                if sets.inherited_from.contains_key(&child) {
                    continue;
                }
                for &p in sets.members(child) {
                    assert!(
                        sets.is_member(c, p),
                        "paper {p:?} in child {child} missing from ancestor {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn inherited_contexts_copy_ancestor_sets() {
        let (onto, corpus, index, config) = setup();
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        let sets = build_pattern_sets(&onto, &corpus, &index, &pats, &config);
        for (&c, &a) in &sets.inherited_from {
            assert!(onto.is_descendant(c, a), "{c} must descend from {a}");
            assert_eq!(sets.members(c), sets.members(a));
            assert!(
                !sets.inherited_from.contains_key(&a),
                "inheritance records the original owner"
            );
        }
    }

    #[test]
    fn direct_members_match_a_middle() {
        let (onto, corpus, index, config) = setup();
        let pats = patterns_by_context(&onto, &corpus, &index, &config);
        let sets = build_pattern_sets(&onto, &corpus, &index, &pats, &config);
        // Pick a leaf context with direct members (no children, not
        // inherited): each member must contain some pattern middle.
        let leaf = onto
            .term_ids()
            .find(|&t| {
                onto.children(t).is_empty()
                    && sets.contains_context(t)
                    && !sets.inherited_from.contains_key(&t)
            })
            .expect("some leaf with direct members");
        for &p in sets.members(leaf).iter().take(10) {
            let a = corpus.analyzed(p);
            let any_middle = pats.patterns(leaf).iter().any(|pat| {
                corpus::Section::ALL.iter().any(|&s| {
                    !textproc::phrase::find_occurrences(
                        match s {
                            corpus::Section::Title => &a.title,
                            corpus::Section::Abstract => &a.abstract_text,
                            corpus::Section::Body => &a.body,
                            corpus::Section::IndexTerms => &a.index_terms,
                        },
                        &pat.middle,
                    )
                    .is_empty()
                })
            });
            assert!(any_middle, "member {p:?} matches no middle");
        }
    }
}
