//! Context assignment: building the two §4 context paper sets.
//!
//! * [`text`] — the *text-based context paper set*: each context with
//!   annotation evidence gets a representative paper; papers
//!   sufficiently similar to the representative join the context.
//! * [`pattern`] — the *pattern-based context paper set*: the
//!   simplified pattern technique (middle tuples only), descendant
//!   aggregation, and the closest-ancestor fallback for empty contexts
//!   (whose scores later decay by `RateOfDecay`).
//!
//! Both builders also expose [`patterns_by_context`], the per-context
//! scored pattern sets shared between assignment and the pattern-based
//! prestige function.

pub mod pattern;
pub mod text;

pub use pattern::{build_pattern_sets, patterns_by_context, ContextPatterns};
pub use text::build_text_sets;
