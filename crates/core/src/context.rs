//! Context paper sets: which papers belong to which ontology-term
//! context, plus the per-context metadata the prestige functions need.

use corpus::PaperId;
use std::collections::HashMap;

/// A context is an ontology term (the paper's definition).
pub type ContextId = ontology::TermId;

/// Which §4 construction produced a context paper set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextSetKind {
    /// Text-based: similarity to a representative paper.
    TextBased,
    /// Simplified-pattern-based: middle-tuple matching with descendant
    /// aggregation and ancestor fallback.
    PatternBased,
}

impl ContextSetKind {
    /// Display name, matching the on-disk file tags ("text"/"pattern").
    pub fn name(self) -> &'static str {
        match self {
            Self::TextBased => "text",
            Self::PatternBased => "pattern",
        }
    }
}

/// The assignment of papers to contexts.
#[derive(Debug, Clone)]
pub struct ContextPaperSets {
    /// Members per context, sorted by paper id, deduplicated.
    members: HashMap<ContextId, Vec<PaperId>>,
    /// Representative paper per context (text-based sets only).
    pub representatives: HashMap<ContextId, PaperId>,
    /// For pattern-based sets: contexts that were empty and inherited
    /// their paper set from this (closest) ancestor — their scores get
    /// decayed by `RateOfDecay` (§4).
    pub inherited_from: HashMap<ContextId, ContextId>,
    /// Which construction built this.
    pub kind: ContextSetKind,
}

impl ContextPaperSets {
    /// Create from raw member lists (sorted + deduped internally).
    pub fn new(members: HashMap<ContextId, Vec<PaperId>>, kind: ContextSetKind) -> Self {
        let members = members
            .into_iter()
            .map(|(c, mut v)| {
                v.sort_unstable();
                v.dedup();
                (c, v)
            })
            .filter(|(_, v)| !v.is_empty())
            .collect();
        Self {
            members,
            representatives: HashMap::new(),
            inherited_from: HashMap::new(),
            kind,
        }
    }

    /// Papers of one context (empty slice if absent).
    pub fn members(&self, context: ContextId) -> &[PaperId] {
        self.members.get(&context).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does the context have any papers?
    pub fn contains_context(&self, context: ContextId) -> bool {
        self.members.contains_key(&context)
    }

    /// Is the paper a member of the context? (binary search)
    pub fn is_member(&self, context: ContextId, paper: PaperId) -> bool {
        self.members(context).binary_search(&paper).is_ok()
    }

    /// All non-empty contexts.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        self.members.keys().copied()
    }

    /// Number of non-empty contexts.
    pub fn n_contexts(&self) -> usize {
        self.members.len()
    }

    /// Contexts with at least `min_size` members — the experiment
    /// population (the paper excludes small contexts whose prestige
    /// scores are "potentially misleading").
    pub fn contexts_with_min_size(&self, min_size: usize) -> Vec<ContextId> {
        let mut out: Vec<ContextId> = self
            .members
            .iter()
            .filter(|(_, v)| v.len() >= min_size)
            .map(|(&c, _)| c)
            .collect();
        out.sort_unstable();
        out
    }

    /// Mean context size over non-empty contexts.
    pub fn mean_size(&self) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.values().map(Vec::len).sum::<usize>() as f64 / self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;

    fn sets() -> ContextPaperSets {
        let mut m = HashMap::new();
        m.insert(TermId(0), vec![PaperId(3), PaperId(1), PaperId(3)]);
        m.insert(TermId(1), vec![PaperId(0)]);
        m.insert(TermId(2), vec![]);
        ContextPaperSets::new(m, ContextSetKind::TextBased)
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let s = sets();
        assert_eq!(s.members(TermId(0)), &[PaperId(1), PaperId(3)]);
    }

    #[test]
    fn empty_contexts_are_dropped() {
        let s = sets();
        assert!(!s.contains_context(TermId(2)));
        assert_eq!(s.n_contexts(), 2);
    }

    #[test]
    fn membership_queries() {
        let s = sets();
        assert!(s.is_member(TermId(0), PaperId(3)));
        assert!(!s.is_member(TermId(0), PaperId(0)));
        assert!(s.members(TermId(9)).is_empty());
    }

    #[test]
    fn min_size_filter() {
        let s = sets();
        assert_eq!(s.contexts_with_min_size(2), vec![TermId(0)]);
        assert_eq!(s.contexts_with_min_size(1).len(), 2);
        assert!(s.contexts_with_min_size(10).is_empty());
    }

    #[test]
    fn mean_size() {
        let s = sets();
        assert!((s.mean_size() - 1.5).abs() < 1e-12);
    }
}
