//! Context paper sets: which papers belong to which ontology-term
//! context, plus the per-context metadata the prestige functions need.

use corpus::PaperId;
use std::collections::HashMap;

/// A context is an ontology term (the paper's definition).
pub type ContextId = ontology::TermId;

/// Which §4 construction produced a context paper set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextSetKind {
    /// Text-based: similarity to a representative paper.
    TextBased,
    /// Simplified-pattern-based: middle-tuple matching with descendant
    /// aggregation and ancestor fallback.
    PatternBased,
}

impl ContextSetKind {
    /// Display name, matching the on-disk file tags ("text"/"pattern").
    pub fn name(self) -> &'static str {
        match self {
            Self::TextBased => "text",
            Self::PatternBased => "pattern",
        }
    }
}

/// The assignment of papers to contexts.
///
/// Stored columnar like [`crate::PrestigeScores`]: non-empty contexts
/// ascending in `contexts`, with `offsets` slicing one shared `papers`
/// column (sorted + deduplicated per context). Membership reads are
/// binary searches over borrowed slices; iteration order is the
/// ascending context id order, a pure function of the contents.
#[derive(Debug, Clone)]
pub struct ContextPaperSets {
    /// Non-empty contexts, ascending.
    contexts: Vec<ContextId>,
    /// `offsets[i]..offsets[i+1]` slices the members of `contexts[i]`.
    offsets: Vec<usize>,
    /// Member column, sorted by paper id within each context's slice.
    papers: Vec<PaperId>,
    /// Representative paper per context (text-based sets only).
    pub representatives: HashMap<ContextId, PaperId>,
    /// For pattern-based sets: contexts that were empty and inherited
    /// their paper set from this (closest) ancestor — their scores get
    /// decayed by `RateOfDecay` (§4).
    pub inherited_from: HashMap<ContextId, ContextId>,
    /// Which construction built this.
    pub kind: ContextSetKind,
}

impl ContextPaperSets {
    /// Create from raw member lists (sorted + deduped internally;
    /// empty contexts dropped).
    pub fn new(members: HashMap<ContextId, Vec<PaperId>>, kind: ContextSetKind) -> Self {
        let mut entries: Vec<(ContextId, Vec<PaperId>)> = members
            .into_iter()
            .map(|(c, mut v)| {
                v.sort_unstable();
                v.dedup();
                (c, v)
            })
            .filter(|(_, v)| !v.is_empty())
            .collect();
        entries.sort_unstable_by_key(|&(c, _)| c);
        let total: usize = entries.iter().map(|(_, v)| v.len()).sum();
        let mut contexts = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut papers = Vec::with_capacity(total);
        offsets.push(0);
        for (c, v) in entries {
            contexts.push(c);
            papers.extend(v);
            offsets.push(papers.len());
        }
        Self {
            contexts,
            offsets,
            papers,
            representatives: HashMap::new(),
            inherited_from: HashMap::new(),
            kind,
        }
    }

    /// Papers of one context (empty slice if absent).
    pub fn members(&self, context: ContextId) -> &[PaperId] {
        match self.contexts.binary_search(&context) {
            Ok(i) => &self.papers[self.offsets[i]..self.offsets[i + 1]],
            Err(_) => &[],
        }
    }

    /// Does the context have any papers?
    pub fn contains_context(&self, context: ContextId) -> bool {
        self.contexts.binary_search(&context).is_ok()
    }

    /// Is the paper a member of the context? (binary search)
    pub fn is_member(&self, context: ContextId, paper: PaperId) -> bool {
        self.members(context).binary_search(&paper).is_ok()
    }

    /// All non-empty contexts, in ascending id order.
    pub fn contexts(&self) -> impl Iterator<Item = ContextId> + '_ {
        self.contexts.iter().copied()
    }

    /// Number of non-empty contexts.
    pub fn n_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Contexts with at least `min_size` members — the experiment
    /// population (the paper excludes small contexts whose prestige
    /// scores are "potentially misleading"). Ascending, like
    /// [`contexts`](Self::contexts).
    pub fn contexts_with_min_size(&self, min_size: usize) -> Vec<ContextId> {
        self.contexts
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.offsets[i + 1] - self.offsets[i] >= min_size)
            .map(|(_, &c)| c)
            .collect()
    }

    /// Mean context size over non-empty contexts.
    pub fn mean_size(&self) -> f64 {
        if self.contexts.is_empty() {
            return 0.0;
        }
        self.papers.len() as f64 / self.contexts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;

    fn sets() -> ContextPaperSets {
        let mut m = HashMap::new();
        m.insert(TermId(0), vec![PaperId(3), PaperId(1), PaperId(3)]);
        m.insert(TermId(1), vec![PaperId(0)]);
        m.insert(TermId(2), vec![]);
        ContextPaperSets::new(m, ContextSetKind::TextBased)
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let s = sets();
        assert_eq!(s.members(TermId(0)), &[PaperId(1), PaperId(3)]);
    }

    #[test]
    fn empty_contexts_are_dropped() {
        let s = sets();
        assert!(!s.contains_context(TermId(2)));
        assert_eq!(s.n_contexts(), 2);
    }

    #[test]
    fn membership_queries() {
        let s = sets();
        assert!(s.is_member(TermId(0), PaperId(3)));
        assert!(!s.is_member(TermId(0), PaperId(0)));
        assert!(s.members(TermId(9)).is_empty());
    }

    #[test]
    fn contexts_iterate_ascending() {
        let s = sets();
        let cs: Vec<ContextId> = s.contexts().collect();
        assert_eq!(cs, vec![TermId(0), TermId(1)]);
    }

    #[test]
    fn min_size_filter() {
        let s = sets();
        assert_eq!(s.contexts_with_min_size(2), vec![TermId(0)]);
        assert_eq!(s.contexts_with_min_size(1).len(), 2);
        assert!(s.contexts_with_min_size(10).is_empty());
    }

    #[test]
    fn mean_size() {
        let s = sets();
        assert!((s.mean_size() - 1.5).abs() < 1e-12);
    }
}
