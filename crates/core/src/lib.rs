//! Context-based literature search (Ratprasartporn et al., ICDE 2007).
//!
//! The paradigm: before query time, (1) assign papers into
//! ontology-term *contexts* and (2) compute per-context *prestige*
//! scores with one of three score functions — citation-based (PageRank
//! on the within-context citation graph), text-based (similarity to the
//! context's representative paper), or pattern-based (textual-pattern
//! matching). At query time, (3) locate contexts for the query, (4)
//! search within them, and (5) rank results by the relevancy score
//! `R(p, q, c) = w_prestige · prestige(p, c) + w_matching · match(p, q)`.
//!
//! Crate layout:
//!
//! * [`config`] — every weight and threshold, with paper defaults,
//! * [`indexes`] — the prepared corpus state (per-section TF-IDF
//!   vectors, whole-paper search engine, citation graph, author maps),
//! * [`assign`] — the two context paper sets of §4 (text-based and
//!   simplified-pattern-based),
//! * [`prestige`] — the three §3 score functions plus the hierarchy
//!   max-propagation rule,
//! * [`search`] — context selection, relevancy scoring, and the
//!   end-to-end engine,
//! * [`ac_answer`] — the §2 AC(artificially-constructed)-answer sets
//!   used for precision evaluation,
//! * [`plan`] + [`snapshot`] — the prepare/serve architecture: a
//!   stage-DAG executor that builds an immutable [`EngineSnapshot`]
//!   served lock-free by [`Searcher`] handles (with save/load in
//!   [`persist`] for warm starts).
//!
//! # Quickstart
//!
//! ```
//! use context_search::{ContextSearchEngine, EngineConfig, ScoreFunction};
//! use ontology::{generate_ontology, GeneratorConfig};
//! use corpus::{generate_corpus, CorpusConfig};
//!
//! let onto = generate_ontology(&GeneratorConfig { n_terms: 80, ..Default::default() });
//! let corp = generate_corpus(&onto, &CorpusConfig {
//!     n_papers: 120, body_len: (40, 60), abstract_len: (20, 30), ..Default::default()
//! });
//! let engine = ContextSearchEngine::build(onto, corp, EngineConfig::default());
//! let sets = engine.text_context_sets();
//! let prestige = engine.prestige(&sets, ScoreFunction::Text);
//! let hits = engine.search("transcription factor binding", &sets, &prestige, 10);
//! for hit in hits {
//!     println!("{:.3}  {}", hit.relevancy, engine.corpus().paper(hit.paper).title);
//! }
//! ```

pub mod ac_answer;
pub mod assign;
pub mod config;
pub mod context;
pub mod indexes;
pub mod persist;
pub mod plan;
pub mod prestige;
pub mod search;
pub mod snapshot;

pub use config::EngineConfig;
pub use context::{ContextId, ContextPaperSets, ContextSetKind};
pub use prestige::{PrestigeScores, ScoreFunction};
pub use search::engine::{ContextSearchEngine, SearchResult};
pub use search::exec::QueryStats;
pub use search::serve::{Searcher, ServeError};
pub use search::shadow::{shadow_evaluate, QualityShadow, ShadowConfig, SHADOW_FUNCTIONS};
pub use snapshot::{EngineSnapshot, PrepareOptions};

/// Map `f` over `items` on up to `threads` worker threads (0 ⇒ available
/// parallelism), preserving input order. The workhorse for per-context
/// computations: contexts are independent, so prestige and assignment
/// scale across cores.
pub(crate) fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < 8 {
        return items.iter().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let out = super::parallel_map(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_small_and_empty() {
        let out = super::parallel_map(8, &[1, 2, 3], |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(super::parallel_map(0, &empty, |&x: &i32| x).is_empty());
    }
}
