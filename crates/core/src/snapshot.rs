//! The immutable prepared artifact of the paradigm.
//!
//! [`EngineSnapshot::prepare`] runs the whole offline phase — corpus
//! index, both §4 context paper sets, pattern mining, and every
//! requested (paper set, score function) prestige table — as a
//! [`Plan`](crate::plan::Plan) of explicitly-dependent stages, so
//! independent work (text sets vs pattern mining, the per-pair prestige
//! tables) runs concurrently under the `build_threads` knob of
//! [`EngineConfig`]. The output is an `Arc<EngineSnapshot>`: immutable,
//! shareable, and servable lock-free by any number of
//! [`Searcher`](crate::Searcher) handles.
//!
//! Every stage is a pure function of its inputs, so the parallel
//! schedule is result-identical to `build_threads == 1` (asserted by
//! the tests below). The stage names double as `obs` span names
//! (`prepare.index`, `prepare.prestige.pattern_citation`, …) under the
//! `prepare.total` umbrella span, making the schedule visible in
//! metrics snapshots and traces.

use crate::assign::{build_pattern_sets, build_text_sets, patterns_by_context, ContextPatterns};
use crate::config::EngineConfig;
use crate::context::{ContextPaperSets, ContextSetKind};
use crate::indexes::CorpusIndex;
use crate::plan::{Plan, Slot};
use crate::prestige::{
    citation::citation_prestige, pattern::pattern_prestige, text::text_prestige, PrestigeScores,
    ScoreFunction,
};
use crate::search::serve::Searcher;
use corpus::Corpus;
use ontology::Ontology;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A (paper set, score function) prestige pair.
pub type PrestigePair = (ContextSetKind, ScoreFunction);

/// Which prestige tables [`EngineSnapshot::prepare_with`] computes.
#[derive(Debug, Clone)]
pub struct PrepareOptions {
    /// The (paper set, score function) pairs to prepare. Duplicates are
    /// ignored. The special pair (pattern set, text function) scores
    /// only the contexts that have a text-set representative, as in the
    /// paper's Fig 5.3 setup.
    pub pairs: Vec<PrestigePair>,
}

impl Default for PrepareOptions {
    /// The five standard tables of the paper's §5 experiments.
    fn default() -> Self {
        Self {
            pairs: vec![
                (ContextSetKind::TextBased, ScoreFunction::Text),
                (ContextSetKind::TextBased, ScoreFunction::Citation),
                (ContextSetKind::PatternBased, ScoreFunction::Pattern),
                (ContextSetKind::PatternBased, ScoreFunction::Citation),
                (ContextSetKind::PatternBased, ScoreFunction::Text),
            ],
        }
    }
}

/// Stage names for one prestige pair: `(compute, propagate)`. Static
/// because `obs` span names are `&'static str`.
fn stage_names(pair: PrestigePair) -> (&'static str, &'static str) {
    use ContextSetKind::*;
    use ScoreFunction::*;
    match pair {
        (TextBased, Text) => ("prepare.prestige.text_text", "prepare.propagate.text_text"),
        (TextBased, Citation) => (
            "prepare.prestige.text_citation",
            "prepare.propagate.text_citation",
        ),
        (TextBased, Pattern) => (
            "prepare.prestige.text_pattern",
            "prepare.propagate.text_pattern",
        ),
        (PatternBased, Text) => (
            "prepare.prestige.pattern_text",
            "prepare.propagate.pattern_text",
        ),
        (PatternBased, Citation) => (
            "prepare.prestige.pattern_citation",
            "prepare.propagate.pattern_citation",
        ),
        (PatternBased, Pattern) => (
            "prepare.prestige.pattern_pattern",
            "prepare.propagate.pattern_pattern",
        ),
    }
}

/// The immutable output of the prepare phase: everything the online
/// phase reads, and nothing it writes.
///
/// Invariants: every field is fixed at construction; the snapshot is
/// shared by `Arc`, so serving threads never contend on anything. A
/// snapshot loaded from disk ([`crate::persist::load_snapshot`]) has
/// `patterns() == None` — mined patterns are a build intermediate the
/// query path never touches.
pub struct EngineSnapshot {
    ontology: Ontology,
    corpus: Corpus,
    config: EngineConfig,
    index: CorpusIndex,
    text_sets: ContextPaperSets,
    pattern_sets: ContextPaperSets,
    prestige: HashMap<PrestigePair, PrestigeScores>,
    patterns: Option<Arc<ContextPatterns>>,
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("papers", &self.corpus.len())
            .field("terms", &self.ontology.len())
            .field("text_contexts", &self.text_sets.n_contexts())
            .field("pattern_contexts", &self.pattern_sets.n_contexts())
            .field("pairs", &self.pairs())
            .field("has_patterns", &self.patterns.is_some())
            .finish()
    }
}

impl EngineSnapshot {
    /// Run the full prepare plan with the default five prestige tables.
    pub fn prepare(ontology: Ontology, corpus: Corpus, config: EngineConfig) -> Arc<Self> {
        Self::prepare_with(ontology, corpus, config, PrepareOptions::default())
    }

    /// Run the prepare plan for an explicit set of prestige pairs.
    pub fn prepare_with(
        ontology: Ontology,
        corpus: Corpus,
        config: EngineConfig,
        options: PrepareOptions,
    ) -> Arc<Self> {
        let _total = obs::span("prepare.total");
        obs::gauge("corpus.papers", corpus.len() as f64);
        obs::gauge("ontology.terms", ontology.len() as f64);
        obs::gauge("prepare.build_threads", config.build_threads as f64);

        let mut pairs: Vec<PrestigePair> = Vec::new();
        for p in options.pairs {
            if !pairs.contains(&p) {
                pairs.push(p);
            }
        }

        // Caller-owned write-once slots carry stage outputs: `OnceLock`
        // where multiple later stages read, `Slot` for the raw→propagate
        // handoff that needs to mutate.
        let index_out: OnceLock<CorpusIndex> = OnceLock::new();
        let text_sets_out: OnceLock<ContextPaperSets> = OnceLock::new();
        let patterns_out: OnceLock<Arc<ContextPatterns>> = OnceLock::new();
        let pattern_sets_out: OnceLock<ContextPaperSets> = OnceLock::new();
        let raw: Vec<Slot<PrestigeScores>> = pairs.iter().map(|_| Slot::new()).collect();
        let done: Vec<OnceLock<PrestigeScores>> = pairs.iter().map(|_| OnceLock::new()).collect();

        fn set<T>(cell: &OnceLock<T>, value: T) {
            assert!(cell.set(value).is_ok(), "stage output already set");
        }

        let needs_patterns = pairs
            .iter()
            .any(|&(k, f)| k == ContextSetKind::PatternBased || f == ScoreFunction::Pattern);

        let mut plan = Plan::new();
        plan.stage("prepare.index", &[], || {
            set(
                &index_out,
                CorpusIndex::build(&ontology, &corpus, &config.pagerank),
            );
        });
        plan.stage("prepare.text_sets", &["prepare.index"], || {
            let index = index_out.get().expect("dep ran");
            set(
                &text_sets_out,
                build_text_sets(&ontology, &corpus, index, &config),
            );
        });
        if needs_patterns {
            plan.stage("prepare.patterns", &["prepare.index"], || {
                let index = index_out.get().expect("dep ran");
                set(
                    &patterns_out,
                    Arc::new(patterns_by_context(&ontology, &corpus, index, &config)),
                );
            });
            plan.stage(
                "prepare.pattern_sets",
                &["prepare.index", "prepare.patterns"],
                || {
                    let index = index_out.get().expect("dep ran");
                    let patterns = patterns_out.get().expect("dep ran");
                    set(
                        &pattern_sets_out,
                        build_pattern_sets(&ontology, &corpus, index, patterns, &config),
                    );
                },
            );
        }

        for (i, &pair) in pairs.iter().enumerate() {
            let (compute_name, propagate_name) = stage_names(pair);
            let (kind, function) = pair;
            let sets_dep = match kind {
                ContextSetKind::TextBased => "prepare.text_sets",
                ContextSetKind::PatternBased => "prepare.pattern_sets",
            };
            let mut deps = vec!["prepare.index", sets_dep];
            if function == ScoreFunction::Pattern {
                deps.push("prepare.patterns");
            }
            if pair == (ContextSetKind::PatternBased, ScoreFunction::Text) {
                deps.push("prepare.text_sets"); // representatives come from there
            }
            let raw_slot = &raw[i];
            let ontology_ref = &ontology;
            let corpus_ref = &corpus;
            let config_ref = &config;
            let index_ref = &index_out;
            let text_sets_ref = &text_sets_out;
            let pattern_sets_ref = &pattern_sets_out;
            let patterns_ref = &patterns_out;
            plan.stage(compute_name, &deps, move || {
                let index = index_ref.get().expect("dep ran");
                let sets = match kind {
                    ContextSetKind::TextBased => text_sets_ref.get().expect("dep ran"),
                    ContextSetKind::PatternBased => pattern_sets_ref.get().expect("dep ran"),
                };
                let scores = match (kind, function) {
                    (_, ScoreFunction::Citation) => {
                        citation_prestige(sets, &index.graph, config_ref)
                    }
                    (ContextSetKind::PatternBased, ScoreFunction::Text) => {
                        // Text scores over the pattern-based set exist
                        // only for contexts with a representative: score
                        // a view of the pattern sets carrying the text
                        // set's representatives (paper Fig 5.3).
                        let mut view = sets.clone();
                        view.representatives = text_sets_ref
                            .get()
                            .expect("dep ran")
                            .representatives
                            .clone();
                        text_prestige(&view, corpus_ref, index, config_ref)
                    }
                    (_, ScoreFunction::Text) => text_prestige(sets, corpus_ref, index, config_ref),
                    (_, ScoreFunction::Pattern) => pattern_prestige(
                        ontology_ref,
                        sets,
                        corpus_ref,
                        index,
                        patterns_ref.get().expect("dep ran"),
                        config_ref,
                        true, // the §4 simplified (middle-only) variant
                    ),
                };
                raw_slot.put(scores);
            });
            let done_cell = &done[i];
            plan.stage(propagate_name, &[compute_name], move || {
                let mut scores = raw_slot.take().expect("compute stage ran");
                // Propagation only reads membership, and the pattern_text
                // representative view has identical members, so the plain
                // set is always the right argument here.
                let sets = match kind {
                    ContextSetKind::TextBased => text_sets_ref.get().expect("dep ran"),
                    ContextSetKind::PatternBased => pattern_sets_ref.get().expect("dep ran"),
                };
                scores.propagate_hierarchy_max(ontology_ref, sets);
                set(done_cell, scores);
            });
        }

        plan.run(config.build_threads)
            .expect("prepare plan wiring is statically valid");

        let prestige: HashMap<PrestigePair, PrestigeScores> = pairs
            .iter()
            .zip(done)
            .map(|(&pair, cell)| (pair, cell.into_inner().expect("plan completed")))
            .collect();
        let pattern_sets = pattern_sets_out
            .into_inner()
            .unwrap_or_else(|| ContextPaperSets::new(HashMap::new(), ContextSetKind::PatternBased));
        Arc::new(Self {
            index: index_out.into_inner().expect("plan completed"),
            text_sets: text_sets_out.into_inner().expect("plan completed"),
            pattern_sets,
            prestige,
            patterns: patterns_out.into_inner(),
            ontology,
            corpus,
            config,
        })
    }

    /// Assemble a snapshot from already-prepared parts (the warm-start
    /// loader; `patterns` is `None` there because mined patterns are a
    /// build intermediate, not a serve-path input).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        ontology: Ontology,
        corpus: Corpus,
        config: EngineConfig,
        index: CorpusIndex,
        text_sets: ContextPaperSets,
        pattern_sets: ContextPaperSets,
        prestige: HashMap<PrestigePair, PrestigeScores>,
        patterns: Option<Arc<ContextPatterns>>,
    ) -> Self {
        Self {
            ontology,
            corpus,
            config,
            index,
            text_sets,
            pattern_sets,
            prestige,
            patterns,
        }
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The configuration the snapshot was prepared with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The prepared corpus index.
    pub fn index(&self) -> &CorpusIndex {
        &self.index
    }

    /// One of the two §4 context paper sets.
    pub fn sets(&self, kind: ContextSetKind) -> &ContextPaperSets {
        match kind {
            ContextSetKind::TextBased => &self.text_sets,
            ContextSetKind::PatternBased => &self.pattern_sets,
        }
    }

    /// The prestige table for one (paper set, function) pair, if it was
    /// prepared.
    pub fn prestige(
        &self,
        kind: ContextSetKind,
        function: ScoreFunction,
    ) -> Option<&PrestigeScores> {
        self.prestige.get(&(kind, function))
    }

    /// The prepared pairs, in a stable (name-sorted) order.
    pub fn pairs(&self) -> Vec<PrestigePair> {
        let mut out: Vec<PrestigePair> = self.prestige.keys().copied().collect();
        out.sort_by_key(|&(k, f)| (k.name(), f.name()));
        out
    }

    /// The mined per-context patterns (`None` on a warm-loaded
    /// snapshot — the serve path never needs them).
    pub fn patterns(&self) -> Option<&Arc<ContextPatterns>> {
        self.patterns.as_ref()
    }

    /// A lock-free serving handle over this snapshot.
    pub fn searcher(self: &Arc<Self>) -> Searcher {
        Searcher::new(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{context_sets_to_json, prestige_to_json};
    use crate::search::engine::ContextSearchEngine;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn testbed() -> (Ontology, Corpus) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 70,
            seed: 11,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 160,
                seed: 13,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        (onto, corp)
    }

    fn prepare_with_threads(threads: usize) -> Arc<EngineSnapshot> {
        let (onto, corp) = testbed();
        let config = EngineConfig {
            build_threads: threads,
            ..Default::default()
        };
        EngineSnapshot::prepare(onto, corp, config)
    }

    #[test]
    fn prepare_builds_all_default_tables() {
        let snap = prepare_with_threads(1);
        assert!(snap.sets(ContextSetKind::TextBased).n_contexts() > 0);
        assert!(snap.sets(ContextSetKind::PatternBased).n_contexts() > 0);
        assert_eq!(snap.pairs().len(), 5);
        for (k, f) in snap.pairs() {
            let p = snap.prestige(k, f).expect("prepared");
            assert!(p.contexts().count() > 0, "{}/{} empty", k.name(), f.name());
        }
        assert!(snap.patterns().is_some(), "cold build keeps mined patterns");
    }

    #[test]
    fn parallel_prepare_is_result_identical_to_sequential() {
        // The acceptance criterion: --build-threads 1 vs default must
        // produce byte-identical context sets and prestige tables. The
        // canonical sorted JSON form is the equality witness.
        let seq = prepare_with_threads(1);
        let par = prepare_with_threads(4);
        for kind in [ContextSetKind::TextBased, ContextSetKind::PatternBased] {
            assert_eq!(
                context_sets_to_json(seq.sets(kind)).unwrap(),
                context_sets_to_json(par.sets(kind)).unwrap(),
                "context sets differ for {}",
                kind.name()
            );
        }
        assert_eq!(seq.pairs(), par.pairs());
        for (k, f) in seq.pairs() {
            assert_eq!(
                prestige_to_json(seq.prestige(k, f).unwrap()).unwrap(),
                prestige_to_json(par.prestige(k, f).unwrap()).unwrap(),
                "prestige differs for {}/{}",
                k.name(),
                f.name()
            );
        }
        // And the query results match exactly.
        let (sa, sb) = (seq.searcher(), par.searcher());
        for query in ["biological process", "molecular function", "binding"] {
            let a = sa.query(
                query,
                ContextSetKind::PatternBased,
                ScoreFunction::Pattern,
                0,
            );
            let b = sb.query(
                query,
                ContextSetKind::PatternBased,
                ScoreFunction::Pattern,
                0,
            );
            let (a, b) = (a.unwrap(), b.unwrap());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.paper, y.paper);
                assert_eq!(x.relevancy, y.relevancy);
                assert_eq!(x.context, y.context);
            }
        }
    }

    #[test]
    fn snapshot_matches_the_legacy_engine() {
        // The refactor must not change any prepared numbers: the plan
        // path and the engine's piecemeal path agree exactly.
        let snap = prepare_with_threads(1);
        let (onto, corp) = testbed();
        let engine = ContextSearchEngine::build(onto, corp, EngineConfig::default());
        let text_sets = engine.text_context_sets();
        let pattern_sets = engine.pattern_context_sets();
        assert_eq!(
            context_sets_to_json(snap.sets(ContextSetKind::TextBased)).unwrap(),
            context_sets_to_json(&text_sets).unwrap()
        );
        assert_eq!(
            context_sets_to_json(snap.sets(ContextSetKind::PatternBased)).unwrap(),
            context_sets_to_json(&pattern_sets).unwrap()
        );
        let cases: [(ContextSetKind, ScoreFunction, PrestigeScores); 4] = [
            (
                ContextSetKind::TextBased,
                ScoreFunction::Text,
                engine.prestige(&text_sets, ScoreFunction::Text),
            ),
            (
                ContextSetKind::TextBased,
                ScoreFunction::Citation,
                engine.prestige(&text_sets, ScoreFunction::Citation),
            ),
            (
                ContextSetKind::PatternBased,
                ScoreFunction::Pattern,
                engine.prestige(&pattern_sets, ScoreFunction::Pattern),
            ),
            (
                ContextSetKind::PatternBased,
                ScoreFunction::Citation,
                engine.prestige(&pattern_sets, ScoreFunction::Citation),
            ),
        ];
        for (k, f, expected) in &cases {
            assert_eq!(
                prestige_to_json(snap.prestige(*k, *f).unwrap()).unwrap(),
                prestige_to_json(expected).unwrap(),
                "{}/{} differs from the engine path",
                k.name(),
                f.name()
            );
        }
        // The Fig 5.3 special pair: text scores on the pattern set with
        // injected representatives.
        let expected = {
            let mut view = pattern_sets.clone();
            view.representatives = text_sets.representatives.clone();
            engine.prestige(&view, ScoreFunction::Text)
        };
        assert_eq!(
            prestige_to_json(
                snap.prestige(ContextSetKind::PatternBased, ScoreFunction::Text)
                    .unwrap()
            )
            .unwrap(),
            prestige_to_json(&expected).unwrap()
        );
    }

    #[test]
    fn prepare_with_subset_skips_unrequested_work() {
        let (onto, corp) = testbed();
        let snap = EngineSnapshot::prepare_with(
            onto,
            corp,
            EngineConfig::default(),
            PrepareOptions {
                pairs: vec![
                    (ContextSetKind::TextBased, ScoreFunction::Citation),
                    // duplicate must be ignored
                    (ContextSetKind::TextBased, ScoreFunction::Citation),
                ],
            },
        );
        assert_eq!(snap.pairs().len(), 1);
        assert!(
            snap.patterns().is_none(),
            "no pattern pair requested → no mining"
        );
        assert_eq!(snap.sets(ContextSetKind::PatternBased).n_contexts(), 0);
    }
}
