//! Engine configuration: every weight and threshold of the paradigm,
//! grouped by the paper section that introduces it.

use patterns::{MatcherConfig, PatternConfig};

/// Weights of the text-based similarity components (§3.2):
/// `Sim(PX, PC) = Σ weight_i · Sim_i` over title, abstract, body, index
/// terms, authors, and references.
#[derive(Debug, Clone)]
pub struct TextSimWeights {
    /// Title cosine weight.
    pub title: f64,
    /// Abstract cosine weight.
    pub abstract_text: f64,
    /// Body cosine weight.
    pub body: f64,
    /// Index-term cosine weight.
    pub index_terms: f64,
    /// Author-overlap weight.
    pub authors: f64,
    /// Citation-similarity (bib coupling + co-citation) weight.
    pub references: f64,
    /// Level-0 author overlap weight inside SimAuthors.
    pub l0_author: f64,
    /// Level-1 author overlap weight inside SimAuthors.
    pub l1_author: f64,
    /// BibWeight inside SimReferences (1 − BibWeight goes to
    /// co-citation).
    pub bib_weight: f64,
}

impl Default for TextSimWeights {
    fn default() -> Self {
        Self {
            title: 0.2,
            abstract_text: 0.25,
            body: 0.2,
            index_terms: 0.1,
            authors: 0.1,
            references: 0.15,
            l0_author: 0.7,
            l1_author: 0.3,
            bib_weight: 0.5,
        }
    }
}

/// AC-answer-set construction knobs (§2).
#[derive(Debug, Clone)]
pub struct AcAnswerConfig {
    /// High keyword-search threshold for the initial (seed) set.
    pub seed_threshold: f64,
    /// Cosine-to-centroid threshold for the text-based expansion.
    pub text_expansion_threshold: f64,
    /// Maximum citation-path length for citation expansion (paper: 2).
    pub max_citation_depth: u32,
    /// A citation-expansion candidate needs a global PageRank score at
    /// or above this quantile of all papers ("high citation scores").
    pub citation_score_quantile: f64,
}

impl Default for AcAnswerConfig {
    fn default() -> Self {
        Self {
            seed_threshold: 0.30,
            text_expansion_threshold: 0.15,
            max_citation_depth: 2,
            citation_score_quantile: 0.90,
        }
    }
}

/// Context-assignment knobs (§4).
#[derive(Debug, Clone)]
pub struct AssignConfig {
    /// A paper joins a text-based context if its whole-text cosine to
    /// the representative paper reaches this.
    pub text_threshold: f64,
    /// A paper joins a pattern-based context if its simplified pattern
    /// score is positive and its best middle match reaches this.
    pub pattern_min_strength: f64,
    /// Contexts smaller than this are excluded from experiments (the
    /// paper drops contexts ≤ 100 papers at 72k scale).
    pub min_context_size: usize,
}

impl Default for AssignConfig {
    fn default() -> Self {
        Self {
            text_threshold: 0.12,
            pattern_min_strength: 0.3,
            min_context_size: 20,
        }
    }
}

/// Top-level engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Text-similarity weights (§3.2).
    pub text_sim: TextSimWeights,
    /// PageRank parameters for the citation-based function (§3.1).
    pub pagerank: citegraph::PageRankConfig,
    /// Pattern construction knobs (§3.3).
    pub pattern: PatternConfig,
    /// Pattern matching knobs; `middle_only` is forced on for the
    /// simplified §4 variant regardless of this value.
    pub matcher: MatcherConfig,
    /// Whether pattern prestige uses extended (side-/middle-joined)
    /// patterns; §4's simplified variant does not.
    pub use_extended_patterns: bool,
    /// Context assignment (§4).
    pub assign: AssignConfig,
    /// AC-answer sets (§2).
    pub ac: AcAnswerConfig,
    /// Relevancy weights (§3): `w_prestige` and `w_matching`.
    pub relevancy: RelevancyWeights,
    /// Query-time context selection.
    pub selection: SelectionConfig,
    /// Worker threads for per-context computations (0 ⇒ available
    /// parallelism).
    pub threads: usize,
    /// Worker threads for the prepare-phase stage DAG
    /// ([`crate::EngineSnapshot::prepare`]): how many independent build
    /// stages may run concurrently (0 ⇒ available parallelism, 1 ⇒
    /// deterministic sequential order). Result-identical at any value.
    pub build_threads: usize,
}

/// `R(p,q,c) = w_prestige · prestige + w_matching · match` (§3).
#[derive(Debug, Clone)]
pub struct RelevancyWeights {
    /// Weight of the pre-computed prestige score.
    pub prestige: f64,
    /// Weight of the query-to-paper text-matching score.
    pub matching: f64,
}

impl Default for RelevancyWeights {
    fn default() -> Self {
        Self {
            prestige: 0.5,
            matching: 0.5,
        }
    }
}

/// Query-time context selection knobs.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Maximum number of contexts searched per query.
    pub max_contexts: usize,
    /// Minimum name-match score for a context to be selected.
    pub min_match: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            max_contexts: 3,
            min_match: 0.3,
        }
    }
}

/// A configuration problem found by [`EngineConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl EngineConfig {
    /// Check invariants the score functions rely on. `build`-time use is
    /// optional (the defaults always pass); call it when accepting
    /// external configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let w = &self.text_sim;
        for (name, v) in [
            ("title", w.title),
            ("abstract", w.abstract_text),
            ("body", w.body),
            ("index_terms", w.index_terms),
            ("authors", w.authors),
            ("references", w.references),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError(format!(
                    "text weight {name} = {v} out of [0,1]"
                )));
            }
        }
        let section_sum =
            w.title + w.abstract_text + w.body + w.index_terms + w.authors + w.references;
        if (section_sum - 1.0).abs() > 1e-6 {
            return Err(ConfigError(format!(
                "text similarity weights sum to {section_sum}, expected 1 (keeps Sim in [0,1])"
            )));
        }
        if (w.l0_author + w.l1_author - 1.0).abs() > 1e-6 {
            return Err(ConfigError("author level weights must sum to 1".into()));
        }
        if !(0.0..=1.0).contains(&w.bib_weight) {
            return Err(ConfigError("BibWeight must be in [0,1]".into()));
        }
        if !(0.0..=1.0).contains(&self.pagerank.damping) {
            return Err(ConfigError("PageRank damping must be in [0,1]".into()));
        }
        if (self.relevancy.prestige + self.relevancy.matching - 1.0).abs() > 1e-6 {
            return Err(ConfigError(
                "relevancy weights must sum to 1 (keeps R in [0,1])".into(),
            ));
        }
        if self.selection.max_contexts == 0 {
            return Err(ConfigError("max_contexts must be positive".into()));
        }
        if self.ac.max_citation_depth > 4 {
            return Err(ConfigError(
                "citation expansion beyond 4 hops loses context (paper uses 2)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        let w = &c.text_sim;
        let section_sum =
            w.title + w.abstract_text + w.body + w.index_terms + w.authors + w.references;
        assert!((section_sum - 1.0).abs() < 1e-9, "weights sum to 1");
        assert!((w.l0_author + w.l1_author - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&w.bib_weight));
        assert!((c.relevancy.prestige + c.relevancy.matching - 1.0).abs() < 1e-9);
        assert!(c.ac.max_citation_depth == 2, "paper uses paths ≤ 2");
        c.validate().expect("defaults validate");
    }

    #[test]
    fn validation_rejects_bad_weights() {
        let mut c = EngineConfig::default();
        c.text_sim.title = 0.9; // sections no longer sum to 1
        assert!(c.validate().is_err());

        let mut c = EngineConfig::default();
        c.relevancy.prestige = 0.9;
        assert!(c.validate().is_err());

        let mut c = EngineConfig::default();
        c.pagerank.damping = 1.5;
        assert!(c.validate().is_err());

        let mut c = EngineConfig::default();
        c.selection.max_contexts = 0;
        assert!(c.validate().is_err());

        let mut c = EngineConfig::default();
        c.ac.max_citation_depth = 9;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("loses context"));
    }
}
