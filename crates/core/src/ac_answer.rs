//! AC(artificially-constructed)-answer sets (paper §2): the automatic
//! ground truth for precision evaluation.
//!
//! 1. **Seed**: a standard keyword search with a high threshold.
//! 2. **Text expansion**: papers sufficiently similar to the *centroid*
//!    of the seed set join.
//! 3. **Citation expansion**: papers on citation paths of length ≤ 2
//!    from the seed set join *if* they have high citation scores
//!    (global PageRank above a quantile) — longer paths "lose
//!    context". Because the synthetic citation graph is denser and
//!    smaller than PubMed's (2 hops cover much of the corpus), the
//!    "loses context" principle is operationalized by additionally
//!    requiring a minimal text similarity to the seed centroid; see
//!    DESIGN.md.

use crate::config::AcAnswerConfig;
use crate::indexes::CorpusIndex;
use citegraph::paths::expansion_candidates;
use corpus::PaperId;
use std::collections::HashSet;
use textproc::SparseVector;

/// Build the AC-answer set for a query vector.
pub fn ac_answer_set(
    index: &CorpusIndex,
    config: &AcAnswerConfig,
    query: &SparseVector,
) -> HashSet<PaperId> {
    // 1. Seed set via high-threshold keyword search; if the threshold
    // yields nothing, fall back to the top 3 hits above half of it so
    // rare-vocabulary queries still get a ground truth.
    let mut seeds: Vec<PaperId> = index
        .keyword_search(query, config.seed_threshold)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    if seeds.is_empty() {
        seeds = index
            .keyword_search(query, config.seed_threshold / 2.0)
            .into_iter()
            .take(3)
            .map(|(p, _)| p)
            .collect();
    }
    let mut answer: HashSet<PaperId> = seeds.iter().copied().collect();
    if seeds.is_empty() {
        return answer;
    }

    // 2. Text-based expansion around the seed centroid.
    let centroid =
        SparseVector::centroid(seeds.iter().map(|p| &index.doc_vectors[p.index()])).normalized();
    for (i, v) in index.doc_vectors.iter().enumerate() {
        if v.cosine(&centroid) >= config.text_expansion_threshold {
            answer.insert(PaperId(i as u32));
        }
    }

    // 3. Citation expansion: ≤ depth hops from seeds, high global
    // PageRank, and not textually off-context.
    let pr_cut = pagerank_quantile(&index.global_pagerank, config.citation_score_quantile);
    let context_floor = config.text_expansion_threshold;
    let seed_nodes: Vec<u32> = seeds.iter().map(|p| p.0).collect();
    for node in expansion_candidates(&index.graph, &seed_nodes, config.max_citation_depth) {
        if index.global_pagerank[node as usize] >= pr_cut
            && index.doc_vectors[node as usize].cosine(&centroid) >= context_floor
        {
            answer.insert(PaperId(node));
        }
    }
    answer
}

/// The `q`-quantile of the PageRank distribution (0 for empty input).
fn pagerank_quantile(scores: &[f64], q: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, Corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn setup() -> (Corpus, CorpusIndex, AcAnswerConfig) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 200,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        let ac = EngineConfig::default().ac;
        (corpus, index, ac)
    }

    #[test]
    fn answer_contains_obvious_hits() {
        let (corpus, index, ac) = setup();
        // Query with a paper's own title: that paper must be in the set.
        let title = corpus.paper(PaperId(7)).title.clone();
        let q = index.query_vector(&corpus, &title);
        let answer = ac_answer_set(&index, &ac, &q);
        assert!(answer.contains(&PaperId(7)), "seed paper in AC set");
        assert!(!answer.is_empty());
    }

    #[test]
    fn expansion_grows_the_seed_set() {
        let (corpus, index, ac) = setup();
        let title = corpus.paper(PaperId(7)).title.clone();
        let q = index.query_vector(&corpus, &title);
        let seeds: HashSet<PaperId> = index
            .keyword_search(&q, ac.seed_threshold)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let answer = ac_answer_set(&index, &ac, &q);
        assert!(answer.len() >= seeds.len(), "expansion never shrinks");
        assert!(seeds.is_subset(&answer));
    }

    #[test]
    fn empty_query_gives_empty_answer() {
        let (_, index, ac) = setup();
        let answer = ac_answer_set(&index, &ac, &SparseVector::new());
        assert!(answer.is_empty());
    }

    #[test]
    fn citation_expansion_respects_quantile() {
        let (corpus, index, mut ac) = setup();
        let title = corpus.paper(PaperId(7)).title.clone();
        let q = index.query_vector(&corpus, &title);
        ac.citation_score_quantile = 1.0; // only the very best papers
        let strict = ac_answer_set(&index, &ac, &q);
        ac.citation_score_quantile = 0.0; // everyone within 2 hops
        let loose = ac_answer_set(&index, &ac, &q);
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn quantile_helper() {
        let xs = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(pagerank_quantile(&xs, 0.0), 0.1);
        assert_eq!(pagerank_quantile(&xs, 1.0), 0.5);
        assert_eq!(pagerank_quantile(&xs, 0.5), 0.3);
        assert_eq!(pagerank_quantile(&[], 0.5), 0.0);
    }
}
