//! "More like this": related-paper retrieval within shared contexts.
//!
//! A natural consumer feature the paradigm gets for free: the §3.2
//! combined similarity (section cosines + author overlap + citation
//! coupling) already measures paper↔paper relatedness, and the context
//! assignment already scopes the candidate set topically — related
//! papers are the most §3.2-similar co-members of the source paper's
//! contexts, which avoids the whole-corpus scan a flat system needs.

use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use crate::prestige::text::combined_similarity;
use corpus::{Corpus, PaperId};

/// One related paper.
#[derive(Debug, Clone, Copy)]
pub struct RelatedPaper {
    /// The related paper.
    pub paper: PaperId,
    /// The §3.2 combined similarity to the source paper.
    pub similarity: f64,
    /// A context both papers share (the lowest-id one).
    pub shared_context: ContextId,
}

/// Find up to `limit` papers related to `source` through shared
/// contexts, most similar first. Returns an empty vector when the
/// source belongs to no context of `sets`.
pub fn more_like_this(
    corpus: &Corpus,
    index: &CorpusIndex,
    config: &EngineConfig,
    sets: &ContextPaperSets,
    source: PaperId,
    limit: usize,
) -> Vec<RelatedPaper> {
    // Concatenate the source's context member columns (contexts come
    // ascending), then one sort + dedup keeps each candidate's lowest
    // shared context — no hashing, and the §3.2 similarity runs once
    // per distinct candidate.
    let mut candidates: Vec<(PaperId, ContextId)> = Vec::new();
    for context in sets.contexts() {
        if !sets.is_member(context, source) {
            continue;
        }
        candidates.extend(
            sets.members(context)
                .iter()
                .filter(|&&p| p != source)
                .map(|&p| (p, context)),
        );
    }
    candidates.sort_unstable();
    candidates.dedup_by_key(|&mut (p, _)| p);
    let mut out: Vec<RelatedPaper> = candidates
        .into_iter()
        .map(|(paper, shared_context)| RelatedPaper {
            paper,
            similarity: combined_similarity(corpus, index, config, paper, source),
            shared_context,
        })
        .collect();
    out.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then(a.paper.cmp(&b.paper))
    });
    if limit > 0 {
        out.truncate(limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::engine::ContextSearchEngine;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn engine() -> ContextSearchEngine {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        ContextSearchEngine::build(onto, corp, EngineConfig::default())
    }

    #[test]
    fn related_papers_share_a_context_and_sort_by_similarity() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let source = PaperId(10);
        let related = more_like_this(e.corpus(), e.index(), e.config(), &sets, source, 10);
        assert!(!related.is_empty(), "paper 10 should have relatives");
        for r in &related {
            assert_ne!(r.paper, source);
            assert!(sets.is_member(r.shared_context, source));
            assert!(sets.is_member(r.shared_context, r.paper));
            assert!((0.0..=1.0 + 1e-9).contains(&r.similarity));
        }
        for w in related.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn top_relative_tends_to_share_a_topic() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let mut topical_hits = 0;
        let mut checked = 0;
        for source in (0..60).map(PaperId) {
            let related = more_like_this(e.corpus(), e.index(), e.config(), &sets, source, 1);
            let Some(top) = related.first() else { continue };
            checked += 1;
            let src_topics = &e.corpus().paper(source).true_topics;
            let rel_topics = &e.corpus().paper(top.paper).true_topics;
            let shares = src_topics.iter().any(|t| rel_topics.contains(t));
            let related_branch = src_topics.iter().any(|&a| {
                rel_topics
                    .iter()
                    .any(|&b| e.ontology().is_descendant(a, b) || e.ontology().is_descendant(b, a))
            });
            if shares || related_branch {
                topical_hits += 1;
            }
        }
        assert!(checked > 20);
        assert!(
            topical_hits * 2 >= checked,
            "top relative should usually be topical: {topical_hits}/{checked}"
        );
    }

    #[test]
    fn limit_and_missing_source() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let related = more_like_this(e.corpus(), e.index(), e.config(), &sets, PaperId(5), 3);
        assert!(related.len() <= 3);
        // A paper id outside every context (fabricated empty sets).
        let empty = ContextPaperSets::new(Default::default(), sets.kind);
        let none = more_like_this(e.corpus(), e.index(), e.config(), &empty, PaperId(5), 3);
        assert!(none.is_empty());
    }
}
