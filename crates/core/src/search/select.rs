//! Query-time context selection (task 3 of the paradigm): map a
//! keyword query onto the contexts it should search.
//!
//! A context matches a query by IDF-weighted Dice overlap between the
//! query's tokens and the context term's name tokens. The symmetric
//! (Dice) form matters in an ontology with compositional names: a
//! query paraphrasing "regulation of transport" also hits every
//! descendant of that term (their names *contain* those words), but the
//! descendants' extra words lower their Dice score, so the most
//! specific *exactly-matching* term ranks first.

use crate::config::SelectionConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use textproc::TermId;

/// Rank the contexts of `sets` against query tokens; returns
/// `(context, match score)` pairs, best first, filtered and truncated
/// per `config`.
///
/// Per-context state is fully prepared at index build time
/// ([`CorpusIndex::name_terms_sorted`] and
/// [`CorpusIndex::name_idf_mass`]): the only per-call work is sorting
/// the query's own tokens and one binary search per name token.
pub fn select_contexts(
    query_tokens: &[TermId],
    index: &CorpusIndex,
    sets: &ContextPaperSets,
    config: &SelectionConfig,
) -> Vec<(ContextId, f64)> {
    // IDF masses are summed in ascending term order — the query mass
    // here, the prepared name masses at build. Summing over hash-set
    // iteration would give each thread its own ULP-level rounding
    // (per-thread hash seeds), letting near-tied contexts swap ranks
    // across serving threads.
    let mut query_terms: Vec<TermId> = query_tokens.to_vec();
    query_terms.sort_unstable();
    query_terms.dedup();
    if query_terms.is_empty() {
        return Vec::new();
    }
    let query_mass: f64 = query_terms.iter().map(|&t| index.model.idf(t)).sum();
    let mut scored: Vec<(ContextId, f64)> = sets
        .contexts()
        .filter_map(|c| {
            let name_terms = index.name_terms_sorted.get(c.index())?;
            if name_terms.is_empty() {
                return None;
            }
            let shared: f64 = name_terms
                .iter()
                .filter(|t| query_terms.binary_search(t).is_ok())
                .map(|&t| index.model.idf(t))
                .sum();
            if shared <= 0.0 {
                return None;
            }
            let name_mass = *index.name_idf_mass.get(c.index())?;
            let dice = 2.0 * shared / (query_mass + name_mass);
            Some((c, dice))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.retain(|&(_, s)| s >= config.min_match);
    scored.truncate(config.max_contexts);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::context::ContextSetKind;
    use citegraph::PageRankConfig;
    use corpus::{generate_corpus, CorpusConfig, PaperId};
    use ontology::{generate_ontology, GeneratorConfig, Ontology};
    use std::collections::HashMap;

    fn setup() -> (Ontology, corpus::Corpus, CorpusIndex) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 120,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        let index = CorpusIndex::build(&onto, &corpus, &PageRankConfig::default());
        (onto, corpus, index)
    }

    fn all_contexts_sets(onto: &Ontology) -> ContextPaperSets {
        let members: HashMap<ContextId, Vec<PaperId>> =
            onto.term_ids().map(|t| (t, vec![PaperId(0)])).collect();
        ContextPaperSets::new(members, ContextSetKind::PatternBased)
    }

    #[test]
    fn exact_name_query_selects_the_term_first() {
        let (onto, corpus, index) = setup();
        let sets = all_contexts_sets(&onto);
        let cfg = EngineConfig::default().selection;
        // Pick a mid-level term and query its exact name.
        let target = onto.max_level().clamp(3, 4);
        let term = onto
            .term_ids()
            .find(|&t| onto.level(t) == target)
            .expect("mid-level term");
        let q = corpus.analyze_known(&onto.term(term).name);
        let selected = select_contexts(&q, &index, &sets, &cfg);
        assert!(!selected.is_empty());
        assert_eq!(selected[0].0, term, "exact match must rank first");
    }

    #[test]
    fn descendants_rank_below_exact_match() {
        let (onto, corpus, index) = setup();
        let sets = all_contexts_sets(&onto);
        let cfg = crate::config::SelectionConfig {
            max_contexts: 50,
            min_match: 0.0,
        };
        let term = onto
            .term_ids()
            .filter(|&t| onto.level(t) >= 2 && !onto.children(t).is_empty())
            .max_by_key(|&t| onto.level(t))
            .expect("internal term");
        let q = corpus.analyze_known(&onto.term(term).name);
        let selected = select_contexts(&q, &index, &sets, &cfg);
        let pos = |c: ContextId| selected.iter().position(|&(x, _)| x == c);
        let term_pos = pos(term).expect("term selected");
        for &child in onto.children(term) {
            if let Some(p) = pos(child) {
                assert!(term_pos < p, "parent exact match before child");
            }
        }
    }

    #[test]
    fn unrelated_query_selects_nothing() {
        let (onto, _, index) = setup();
        let sets = all_contexts_sets(&onto);
        let cfg = EngineConfig::default().selection;
        let selected = select_contexts(&[], &index, &sets, &cfg);
        assert!(selected.is_empty());
    }

    #[test]
    fn max_contexts_is_respected() {
        let (onto, corpus, index) = setup();
        let sets = all_contexts_sets(&onto);
        let cfg = crate::config::SelectionConfig {
            max_contexts: 3,
            min_match: 0.0,
        };
        // A common root word matches many contexts.
        let root = onto.roots()[0];
        let q = corpus.analyze_known(&onto.term(root).name);
        let selected = select_contexts(&q, &index, &sets, &cfg);
        assert!(selected.len() <= 3);
    }

    #[test]
    fn scores_descend() {
        let (onto, corpus, index) = setup();
        let sets = all_contexts_sets(&onto);
        let cfg = crate::config::SelectionConfig {
            max_contexts: 20,
            min_match: 0.0,
        };
        let term = onto.term_ids().find(|&t| onto.level(t) >= 3).unwrap();
        let q = corpus.analyze_known(&onto.term(term).name);
        let selected = select_contexts(&q, &index, &sets, &cfg);
        for w in selected.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
