//! A GoPubMed-style comparator (paper §6, ref \[22\]).
//!
//! GoPubMed is the only related system the paper credits with using
//! context hierarchies: it submits the query to PubMed, retrieves the
//! matching *abstracts*, and categorizes them under GO terms — but the
//! "categorization fully relies on the existence of GO term words in
//! the abstracts" (the paper measured only 78 % of PubMed abstracts to
//! contain any GO term word), and it "does not rank results or provide
//! importance scores".
//!
//! This module implements that behavior so the experiment harness can
//! contrast it with context-based search: keyword search first, then
//! group hits under every ontology term whose (analyzed) name words
//! all occur in the hit's abstract.

use crate::context::ContextId;
use crate::indexes::CorpusIndex;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use std::collections::HashSet;

/// GoPubMed-style categorized search output.
#[derive(Debug, Clone)]
pub struct GoPubMedResult {
    /// `(term, papers)` categories, largest first; a paper may appear
    /// under many terms (every ancestor of a matching term matches too,
    /// since GO names are compositional).
    pub categories: Vec<(ContextId, Vec<PaperId>)>,
    /// Hits whose abstract contains no term's complete word set.
    pub uncategorized: Vec<PaperId>,
    /// Total keyword hits categorization ran on.
    pub n_hits: usize,
}

impl GoPubMedResult {
    /// Fraction of hits that got at least one category (the paper's
    /// "78 % of abstracts contain words occurring in a GO term").
    pub fn coverage(&self) -> f64 {
        if self.n_hits == 0 {
            return 0.0;
        }
        1.0 - self.uncategorized.len() as f64 / self.n_hits as f64
    }

    /// Categories restricted to the most specific matching terms per
    /// paper: a term is dropped for a paper when one of its descendants
    /// also categorizes that paper (what the GoPubMed tree view shows
    /// at its leaves).
    pub fn most_specific(&self, ontology: &Ontology) -> Vec<(ContextId, Vec<PaperId>)> {
        let mut per_paper: std::collections::HashMap<PaperId, Vec<ContextId>> =
            std::collections::HashMap::new();
        for (c, papers) in &self.categories {
            for &p in papers {
                per_paper.entry(p).or_default().push(*c);
            }
        }
        let mut out: std::collections::HashMap<ContextId, Vec<PaperId>> =
            std::collections::HashMap::new();
        for (paper, terms) in per_paper {
            for &t in &terms {
                let has_more_specific = terms
                    .iter()
                    .any(|&other| other != t && ontology.is_descendant(other, t));
                if !has_more_specific {
                    out.entry(t).or_default().push(paper);
                }
            }
        }
        let mut v: Vec<(ContextId, Vec<PaperId>)> = out
            .into_iter()
            .map(|(c, mut ps)| {
                ps.sort_unstable();
                (c, ps)
            })
            .collect();
        v.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        v
    }
}

/// Run a GoPubMed-style categorized search.
pub fn gopubmed_search(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    query: &str,
    min_score: f64,
) -> GoPubMedResult {
    let qvec = index.query_vector(corpus, query);
    let hits: Vec<PaperId> = index
        .keyword_search(&qvec, min_score)
        .into_iter()
        .map(|(p, _)| p)
        .collect();

    let mut categories: std::collections::HashMap<ContextId, Vec<PaperId>> =
        std::collections::HashMap::new();
    let mut uncategorized = Vec::new();
    for &paper in &hits {
        let abstract_words: HashSet<textproc::TermId> = corpus
            .analyzed(paper)
            .abstract_text
            .iter()
            .copied()
            .collect();
        let mut categorized = false;
        for term in ontology.term_ids() {
            let name = &index.term_name_tokens[term.index()];
            if name.is_empty() {
                continue;
            }
            if name.iter().all(|w| abstract_words.contains(w)) {
                categories.entry(term).or_default().push(paper);
                categorized = true;
            }
        }
        if !categorized {
            uncategorized.push(paper);
        }
    }
    let mut categories: Vec<(ContextId, Vec<PaperId>)> = categories.into_iter().collect();
    categories.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    GoPubMedResult {
        categories,
        uncategorized,
        n_hits: hits.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::search::engine::ContextSearchEngine;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn engine() -> ContextSearchEngine {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (30, 50),
                ..Default::default()
            },
        );
        ContextSearchEngine::build(onto, corp, EngineConfig::default())
    }

    #[test]
    fn categorization_groups_hits_under_terms() {
        let e = engine();
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == 2)
            .unwrap();
        let query = e.ontology().term(term).name.clone();
        let r = gopubmed_search(e.ontology(), e.corpus(), e.index(), &query, 0.05);
        assert!(r.n_hits > 0);
        assert!(!r.categories.is_empty(), "some category should match");
        // Categories are sorted by size.
        for w in r.categories.windows(2) {
            assert!(w[0].1.len() >= w[1].1.len());
        }
    }

    #[test]
    fn categorized_papers_contain_all_term_words() {
        let e = engine();
        let query = e.corpus().paper(corpus::PaperId(3)).title.clone();
        let r = gopubmed_search(e.ontology(), e.corpus(), e.index(), &query, 0.05);
        for (term, papers) in r.categories.iter().take(5) {
            let name = &e.index().term_name_tokens[term.index()];
            for &p in papers.iter().take(5) {
                let words: HashSet<textproc::TermId> = e
                    .corpus()
                    .analyzed(p)
                    .abstract_text
                    .iter()
                    .copied()
                    .collect();
                assert!(
                    name.iter().all(|w| words.contains(w)),
                    "paper {p:?} lacks words of its category"
                );
            }
        }
    }

    #[test]
    fn coverage_is_partial_not_total() {
        // The paper's point: categorization by abstract words misses
        // papers (their 78% figure). Our abstracts usually carry topic
        // phrases, but not always.
        let e = engine();
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == 2)
            .unwrap();
        let query = e.ontology().term(term).name.clone();
        let r = gopubmed_search(e.ontology(), e.corpus(), e.index(), &query, 0.0);
        let cov = r.coverage();
        assert!((0.0..=1.0).contains(&cov));
        assert!(r.n_hits >= r.uncategorized.len());
    }

    #[test]
    fn most_specific_drops_redundant_ancestors() {
        let e = engine();
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == 3)
            .unwrap();
        let query = e.ontology().term(term).name.clone();
        let r = gopubmed_search(e.ontology(), e.corpus(), e.index(), &query, 0.05);
        let specific = r.most_specific(e.ontology());
        // For every (term, paper) pair kept, no kept descendant of the
        // term may also hold that paper.
        for (t, papers) in &specific {
            for (t2, papers2) in &specific {
                if t2 != t && e.ontology().is_descendant(*t2, *t) {
                    for p in papers {
                        assert!(
                            !papers2.contains(p),
                            "paper {p:?} kept under both {t} and descendant {t2}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_query_yields_empty_result() {
        let e = engine();
        let r = gopubmed_search(e.ontology(), e.corpus(), e.index(), "zzz", 0.1);
        assert_eq!(r.n_hits, 0);
        assert_eq!(r.coverage(), 0.0);
    }
}
