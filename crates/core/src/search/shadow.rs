//! Shadow scoring: sampled re-ranking of served queries under every
//! prepared prestige function, off the serve path.
//!
//! The serve path ranks with *one* prestige function. The paper's
//! evaluation chapter shows the functions disagree in interesting ways
//! (top-k% overlap, Fig 5.3) and separate contexts differently (Figs
//! 5.4–5.7) — signals worth watching continuously, not only in offline
//! experiments. A [`QualityShadow`] does exactly that: a sampled
//! fraction of served queries is handed to a background worker over a
//! bounded channel; the worker re-executes each one under all three
//! [`ScoreFunction`]s against the same immutable snapshot and folds
//! the comparison into an [`obs::QualityAggregator`].
//!
//! Serve-path cost when sampling is on: one atomic increment, one
//! modulo, and (for sampled queries) one bounded `try_send` of an
//! already-owned `String`. The worker never touches the snapshot
//! mutably — [`Searcher`] is a lock-free handle — so serve results are
//! bit-identical with the shadow on or off.

use crate::context::ContextSetKind;
use crate::prestige::ScoreFunction;
use crate::search::serve::Searcher;
use eval::{streaming_top_k_percent_overlap, StreamingTopK};
use obs::{QualityAggregator, QualityEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The three prestige functions, in the fixed order every event and
/// report uses.
pub const SHADOW_FUNCTIONS: [ScoreFunction; 3] = [
    ScoreFunction::Citation,
    ScoreFunction::Text,
    ScoreFunction::Pattern,
];

/// Knobs for a [`QualityShadow`].
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    /// Sample one of every `sample_every` observed queries; `0`
    /// disables shadow scoring entirely (no worker is spawned).
    pub sample_every: u64,
    /// Which §4 context paper set to rank against.
    pub kind: ContextSetKind,
    /// Result-list depth each function ranks to.
    pub limit: usize,
    /// Top fraction compared between rankings (the paper's top-k%
    /// overlapping ratio).
    pub top_pct: f64,
    /// Bounded queue depth between serve threads and the worker.
    pub queue_capacity: usize,
    /// When the queue is full: `false` drops the sample (serving never
    /// blocks — the live default), `true` blocks the submitter (the
    /// deterministic harness, where every sample must be evaluated for
    /// byte-stable reports and latencies are virtual anyway).
    pub block_when_full: bool,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            sample_every: 16,
            // The pattern-based set is the one the default prepare plan
            // equips with all three functions (§5's five tables).
            kind: ContextSetKind::PatternBased,
            limit: 50,
            top_pct: 0.10,
            queue_capacity: 256,
            block_when_full: false,
        }
    }
}

/// One sampled query in flight to the worker.
struct ShadowJob {
    query: String,
    shard: usize,
    ts_ns: u64,
}

/// Handle to the shadow-scoring worker. Submission is cheap and
/// lock-free on the non-sampled path; [`finish`](Self::finish) drains
/// the queue and joins the worker so every accepted sample is in the
/// aggregator before a report is built.
pub struct QualityShadow {
    tx: Mutex<Option<SyncSender<ShadowJob>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    aggregator: Arc<QualityAggregator>,
    sample_every: u64,
    block_when_full: bool,
    submitted: AtomicU64,
    accepted: AtomicU64,
}

impl QualityShadow {
    /// Spawn the background worker (unless `sample_every == 0`, which
    /// yields an inert shadow whose observe calls are near-free).
    pub fn spawn(
        searcher: Searcher,
        config: ShadowConfig,
        aggregator: Arc<QualityAggregator>,
    ) -> Self {
        if config.sample_every == 0 {
            return Self {
                tx: Mutex::new(None),
                worker: Mutex::new(None),
                aggregator,
                sample_every: 0,
                block_when_full: false,
                submitted: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
            };
        }
        let (tx, rx) = sync_channel::<ShadowJob>(config.queue_capacity.max(1));
        let agg = Arc::clone(&aggregator);
        let cfg = config.clone();
        let worker = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                if let Some(event) =
                    shadow_evaluate(&searcher, &cfg, &job.query, job.shard, job.ts_ns)
                {
                    agg.record(&event);
                }
            }
        });
        Self {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            aggregator,
            sample_every: config.sample_every,
            block_when_full: config.block_when_full,
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        }
    }

    /// The aggregator sampled events land in.
    pub fn aggregator(&self) -> &Arc<QualityAggregator> {
        &self.aggregator
    }

    /// Observe a served query with an internally assigned sequence
    /// number (convenience for single-threaded callers; concurrent
    /// callers should use [`observe_seq`](Self::observe_seq) with
    /// their own deterministic sequence).
    pub fn observe(&self, query: &str) {
        let seq = self.submitted.fetch_add(1, Ordering::Relaxed);
        let rolling = self.aggregator.rolling();
        let shard = (seq as usize) % rolling.n_shards();
        let ts_ns = rolling.clock().now_ns();
        self.submit(seq, query, shard, ts_ns);
    }

    /// Observe a served query under a caller-supplied sequence number:
    /// the sampling decision is `seq % sample_every == 0`, so a
    /// deterministic sequence (e.g. the load harness's per-worker
    /// iteration index) yields the same sampled set on every run.
    /// `shard`/`ts_ns` place the resulting events in the rolling
    /// windows.
    pub fn observe_seq(&self, seq: u64, query: &str, shard: usize, ts_ns: u64) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.submit(seq, query, shard, ts_ns);
    }

    fn submit(&self, seq: u64, query: &str, shard: usize, ts_ns: u64) {
        if self.sample_every == 0 || !seq.is_multiple_of(self.sample_every) {
            return;
        }
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return;
        };
        let job = ShadowJob {
            query: query.to_string(),
            shard,
            ts_ns,
        };
        if self.block_when_full {
            if tx.send(job).is_ok() {
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            match tx.try_send(job) {
                Ok(()) => {
                    self.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.aggregator.add_dropped(1);
                }
            }
        }
    }

    /// Queries observed (sampled or not).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Samples accepted onto the queue.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Close the queue and join the worker: on return, every accepted
    /// sample has been evaluated and aggregated. Idempotent.
    pub fn finish(&self) {
        *self.tx.lock() = None;
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for QualityShadow {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Re-rank `query` under every prepared prestige function and build
/// the quality event: pairwise top-k% overlap between the rankings,
/// winning-context agreement, top1−top2 margins, and the winning
/// context's prestige score values per function (separability input).
/// `None` when no prepared function produced results.
pub fn shadow_evaluate(
    searcher: &Searcher,
    config: &ShadowConfig,
    query: &str,
    shard: usize,
    ts_ns: u64,
) -> Option<QualityEvent> {
    let _span = obs::span(obs::quality::SHADOW_EVAL_SPAN);
    let sets = searcher.sets(config.kind);

    // (function name, ranking, winning context) per prepared function,
    // in SHADOW_FUNCTIONS order.
    let mut ranked: Vec<(&'static str, StreamingTopK, crate::context::ContextId, f64)> =
        Vec::with_capacity(SHADOW_FUNCTIONS.len());
    let mut margins: Vec<(&'static str, f64)> = Vec::new();
    let mut scores: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for function in SHADOW_FUNCTIONS {
        let Some(prestige) = searcher.prestige(config.kind, function) else {
            continue;
        };
        let (results, _stats) = searcher.search_with_stats(query, sets, prestige, config.limit);
        if results.is_empty() {
            continue;
        }
        let mut top = StreamingTopK::keep_all();
        for r in &results {
            top.push(r.paper.0, r.relevancy);
        }
        let winner = results[0].context;
        let margin = if results.len() > 1 {
            (results[0].relevancy - results[1].relevancy).clamp(0.0, 1.0)
        } else {
            results[0].relevancy.clamp(0.0, 1.0)
        };
        margins.push((function.name(), margin));
        scores.push((function.name(), prestige.score_values(winner).to_vec()));
        ranked.push((function.name(), top, winner, margin));
    }
    if ranked.is_empty() {
        return None;
    }

    let mut overlaps = Vec::new();
    for i in 0..ranked.len() {
        for j in (i + 1)..ranked.len() {
            let ratio = streaming_top_k_percent_overlap(&ranked[i].1, &ranked[j].1, config.top_pct);
            overlaps.push((ranked[i].0, ranked[j].0, ratio));
        }
    }
    let agreement = if ranked.len() >= 2 {
        Some(
            ranked
                .iter()
                .all(|(_, _, winner, _)| *winner == ranked[0].2),
        )
    } else {
        None
    };

    Some(QualityEvent {
        shard,
        ts_ns,
        overlaps,
        agreement,
        margins,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::snapshot::EngineSnapshot;
    use corpus::{generate_corpus, CorpusConfig};
    use obs::clock::{Clock, ManualClock};
    use obs::{RollingConfig, RollingRecorder};
    use ontology::{generate_ontology, GeneratorConfig};

    fn testbed_searcher() -> Searcher {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 70,
            seed: 11,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 160,
                seed: 13,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        EngineSnapshot::prepare(onto, corp, EngineConfig::default()).searcher()
    }

    fn aggregator(shards: usize) -> Arc<QualityAggregator> {
        let rolling = Arc::new(RollingRecorder::new(
            RollingConfig {
                bucket_secs: 1,
                window_secs: 120,
                shards,
            },
            Arc::new(ManualClock::new(0)) as Arc<dyn Clock>,
        ));
        Arc::new(QualityAggregator::new(rolling, 10))
    }

    #[test]
    fn shadow_evaluate_compares_all_prepared_functions() {
        let searcher = testbed_searcher();
        let config = ShadowConfig::default();
        let event = shadow_evaluate(&searcher, &config, "biological process", 0, 0)
            .expect("testbed queries produce results");
        // Default prepare has all three functions for the text-based
        // set: three pairwise overlaps, three margins, three sketches.
        assert_eq!(event.overlaps.len(), 3);
        assert_eq!(event.margins.len(), 3);
        assert_eq!(event.scores.len(), 3);
        assert!(event.agreement.is_some());
        for &(_, _, ratio) in &event.overlaps {
            assert!((0.0..=1.0).contains(&ratio));
        }
        for (_, values) in &event.scores {
            assert!(!values.is_empty(), "winning context has prestige scores");
        }
    }

    #[test]
    fn shadow_evaluate_is_deterministic() {
        let searcher = testbed_searcher();
        let config = ShadowConfig::default();
        let a = shadow_evaluate(&searcher, &config, "binding", 3, 7).unwrap();
        let b = shadow_evaluate(&searcher, &config, "binding", 3, 7).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn worker_drains_into_aggregator_on_finish() {
        let searcher = testbed_searcher();
        let agg = aggregator(2);
        let shadow = QualityShadow::spawn(
            searcher,
            ShadowConfig {
                sample_every: 2,
                block_when_full: true,
                ..Default::default()
            },
            Arc::clone(&agg),
        );
        let queries = ["biological process", "binding", "molecular function"];
        for (i, q) in queries.iter().enumerate() {
            shadow.observe_seq(i as u64, q, i % 2, i as u64 * obs::SECOND_NS);
        }
        shadow.finish();
        // Sequences 0 and 2 sample; both must be aggregated by now.
        assert_eq!(shadow.submitted(), 3);
        assert_eq!(shadow.accepted(), 2);
        assert_eq!(agg.events(), 2);
        let summary = agg.summary_at(0);
        assert_eq!(summary.sampled, 2);
        assert_eq!(summary.dropped, 0);
        assert!(!summary.overlaps.is_empty());
    }

    #[test]
    fn disabled_shadow_is_inert() {
        let searcher = testbed_searcher();
        let agg = aggregator(1);
        let shadow = QualityShadow::spawn(
            searcher,
            ShadowConfig {
                sample_every: 0,
                ..Default::default()
            },
            Arc::clone(&agg),
        );
        shadow.observe("binding");
        shadow.finish();
        assert_eq!(agg.events(), 0);
        assert_eq!(shadow.accepted(), 0);
    }

    #[test]
    fn serve_results_identical_with_shadow_on() {
        let searcher = testbed_searcher();
        let baseline: Vec<_> = ["biological process", "binding"]
            .iter()
            .map(|q| {
                searcher
                    .query(q, ContextSetKind::TextBased, ScoreFunction::Text, 10)
                    .unwrap()
            })
            .collect();
        let agg = aggregator(1);
        let shadow = QualityShadow::spawn(
            searcher.clone(),
            ShadowConfig {
                sample_every: 1,
                block_when_full: true,
                ..Default::default()
            },
            Arc::clone(&agg),
        );
        let with_shadow: Vec<_> = ["biological process", "binding"]
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let r = searcher
                    .query(q, ContextSetKind::TextBased, ScoreFunction::Text, 10)
                    .unwrap();
                shadow.observe_seq(i as u64, q, 0, 0);
                r
            })
            .collect();
        shadow.finish();
        assert_eq!(agg.events(), 2);
        for (a, b) in baseline.iter().zip(&with_shadow) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.paper, y.paper);
                assert_eq!(x.relevancy.to_bits(), y.relevancy.to_bits());
            }
        }
    }

    #[test]
    fn prestige_override_degrades_the_shadow_signal() {
        let searcher = testbed_searcher();
        let config = ShadowConfig::default();
        let healthy = shadow_evaluate(&searcher, &config, "biological process", 0, 0).unwrap();

        // Flatten the citation function: every paper in every context
        // gets the same score. Separability collapses to the worst
        // case for that function's sketch.
        let flat = {
            let table = searcher
                .prestige(config.kind, ScoreFunction::Citation)
                .unwrap();
            let mut by_context = std::collections::HashMap::new();
            for context in table.contexts() {
                let flat: Vec<_> = table
                    .scores(context)
                    .iter()
                    .map(|&(p, _)| (p, 1.0))
                    .collect();
                by_context.insert(context, flat);
            }
            crate::prestige::PrestigeScores::new(by_context, ScoreFunction::Citation)
        };
        let perturbed_searcher =
            searcher.with_prestige_override(config.kind, ScoreFunction::Citation, flat);
        let perturbed =
            shadow_evaluate(&perturbed_searcher, &config, "biological process", 0, 0).unwrap();

        let flat_scores = &perturbed
            .scores
            .iter()
            .find(|(f, _)| *f == "citation")
            .unwrap()
            .1;
        assert!(flat_scores.iter().all(|&s| s == 1.0));
        let healthy_scores = &healthy
            .scores
            .iter()
            .find(|(f, _)| *f == "citation")
            .unwrap()
            .1;
        assert!(
            healthy_scores.iter().any(|&s| s < 1.0),
            "healthy citation scores are spread"
        );
    }
}
