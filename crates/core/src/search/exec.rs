//! The shared online query path.
//!
//! [`QueryParts`] borrows the four immutable pieces every query needs —
//! ontology, corpus, config, index — and implements context selection,
//! relevancy scoring, and the auxiliary lookups (snippets, baseline
//! keyword search, AC-answer sets, more-like-this). Both front-ends
//! delegate here: [`ContextSearchEngine`](super::engine::ContextSearchEngine)
//! (owns the pieces directly) and [`Searcher`](super::serve::Searcher)
//! (borrows them from an immutable [`crate::EngineSnapshot`]). Nothing
//! on this path takes a lock or mutates shared state, so any number of
//! threads can execute it concurrently over the same borrowed parts;
//! per-query working memory comes from the thread-local
//! [`crate::search::scratch::QueryScratch`] pool, so the steady-state
//! path is also allocation-light.

use crate::ac_answer::ac_answer_set;
use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use crate::prestige::PrestigeScores;
use crate::search::scratch::with_scratch;
use crate::search::select::select_contexts;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use std::collections::HashSet;

/// One ranked context-based search result.
#[derive(Debug, Clone, Copy)]
pub struct SearchResult {
    /// The paper.
    pub paper: PaperId,
    /// Combined relevancy `R(p, q, c)` (the ranking key).
    pub relevancy: f64,
    /// The text-matching component.
    pub matching: f64,
    /// The prestige component (in the winning context).
    pub prestige: f64,
    /// The context that produced this paper's best relevancy.
    pub context: ContextId,
}

/// Work counters from one query execution — how much the engine did,
/// not how long it took. Pure functions of (snapshot, query), so they
/// are identical across runs and threads; the load generator's
/// deterministic simulation mode derives synthetic per-query costs
/// from exactly these numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Contexts the selection stage picked.
    pub selected_contexts: u64,
    /// Papers with a nonzero keyword match.
    pub keyword_candidates: u64,
    /// (context, paper) pairs scored by the relevancy stage.
    pub scored_pairs: u64,
    /// Ranked results returned (after the limit).
    pub results: u64,
    /// Pushes into the bounded top-k heap. On the unlimited path every
    /// scored paper enters the ranking, so this equals the distinct
    /// paper count there; with a limit it shrinks toward `limit` as
    /// candidates arrive in better-first order.
    pub heap_pushes: u64,
}

/// The total order of ranked output: descending relevancy, ties broken
/// by ascending paper id. Both ranking paths implement exactly this
/// order — the full sort when unlimited, and the bounded top-k heap's
/// eviction rule when a limit is set — which is what makes them
/// interchangeable byte for byte.
pub(crate) fn rank_order(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.relevancy
        .total_cmp(&a.relevancy)
        .then(a.paper.cmp(&b.paper))
}

/// Borrowed immutable state for one query execution.
#[derive(Clone, Copy)]
pub(crate) struct QueryParts<'a> {
    pub ontology: &'a Ontology,
    pub corpus: &'a Corpus,
    pub config: &'a EngineConfig,
    pub index: &'a CorpusIndex,
}

impl QueryParts<'_> {
    /// Task 3: select the contexts a query should search.
    pub fn select_contexts(&self, query: &str, sets: &ContextPaperSets) -> Vec<(ContextId, f64)> {
        let _span = obs::span("search.select_contexts");
        let tokens = self.corpus.analyze_known(query);
        let selected = select_contexts(&tokens, self.index, sets, &self.config.selection);
        if obs::trace_enabled() {
            obs::trace_instant(
                "search.contexts_selected",
                vec![
                    ("query_tokens".to_string(), tokens.len().into()),
                    ("n_selected".to_string(), selected.len().into()),
                ],
            );
            for (rank, &(c, score)) in selected.iter().enumerate() {
                obs::trace_instant(
                    "search.context",
                    vec![
                        ("rank".to_string(), (rank + 1).into()),
                        ("context".to_string(), c.index().into()),
                        (
                            "name".to_string(),
                            self.ontology.term(c).name.as_str().into(),
                        ),
                        ("level".to_string(), self.ontology.level(c).into()),
                        ("match_score".to_string(), score.into()),
                        ("members".to_string(), sets.members(c).len().into()),
                    ],
                );
            }
        }
        selected
    }

    /// Tasks 4 + 5: search within the selected contexts and rank by
    /// relevancy; results from different contexts are merged by keeping
    /// each paper's best relevancy. `limit = 0` means unlimited.
    pub fn search(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> Vec<SearchResult> {
        self.search_with_stats(query, sets, prestige, limit).0
    }

    /// [`search`](Self::search) plus the execution's [`QueryStats`] —
    /// the serve path and load harness read the work counters without
    /// needing tracing armed.
    pub fn search_with_stats(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> (Vec<SearchResult>, QueryStats) {
        let _span = obs::span("engine.search");
        obs::counter("engine.queries", 1);
        let tracing = obs::trace_enabled();
        if tracing {
            obs::trace_instant(
                "search.query",
                vec![
                    ("query".to_string(), query.into()),
                    ("limit".to_string(), limit.into()),
                ],
            );
        }
        let qvec = self.index.query_vector(self.corpus, query);
        let contexts = self.select_contexts(query, sets);
        with_scratch(|scratch| {
            scratch.begin(self.corpus.len());
            {
                let _s = obs::span("search.candidates");
                scratch.gather_candidates(self.index, &qvec);
            }
            if tracing {
                obs::trace_instant(
                    "search.keyword_candidates",
                    vec![("matched_papers".to_string(), scratch.n_candidates().into())],
                );
            }

            let _scoring = obs::span("search.rank");
            let mut scored_pairs = 0u64;
            let n_contexts = contexts.len() as u64;
            for &(context, _ctx_score) in &contexts {
                scored_pairs += scratch.score_context(prestige, context, &self.config.relevancy);
            }
            if tracing {
                obs::trace_instant(
                    "search.relevancy_candidates",
                    vec![
                        ("scored_pairs".to_string(), scored_pairs.into()),
                        ("distinct_papers".to_string(), scratch.distinct().into()),
                    ],
                );
            }
            let (out, heap_pushes) = scratch.ranked(limit);
            drop(_scoring);
            if tracing {
                self.trace_explain_hits(&out);
            }
            obs::observe_ns("engine.search.results", out.len() as u64);
            let stats = QueryStats {
                selected_contexts: n_contexts,
                keyword_candidates: scratch.n_candidates() as u64,
                scored_pairs,
                results: out.len() as u64,
                heap_pushes,
            };
            (out, stats)
        })
    }

    /// Emit one `explain.hit` instant per top result: the context that
    /// won, both relevancy components with their weights, and the
    /// context's place in the hierarchy — the per-query evidence behind
    /// the paper's precision/separability numbers.
    fn trace_explain_hits(&self, hits: &[SearchResult]) {
        const EXPLAIN_TOP_K: usize = 10;
        let w = &self.config.relevancy;
        for (rank, h) in hits.iter().take(EXPLAIN_TOP_K).enumerate() {
            let term = self.ontology.term(h.context);
            obs::trace_instant(
                "explain.hit",
                vec![
                    ("rank".to_string(), (rank + 1).into()),
                    ("paper".to_string(), h.paper.index().into()),
                    ("relevancy".to_string(), h.relevancy.into()),
                    ("prestige".to_string(), h.prestige.into()),
                    ("matching".to_string(), h.matching.into()),
                    ("w_prestige".to_string(), w.prestige.into()),
                    ("w_matching".to_string(), w.matching.into()),
                    ("context".to_string(), h.context.index().into()),
                    ("context_name".to_string(), term.name.as_str().into()),
                    (
                        "context_level".to_string(),
                        self.ontology.level(h.context).into(),
                    ),
                ],
            );
        }
    }

    /// The PubMed-style keyword-search baseline over the whole corpus.
    pub fn keyword_search(&self, query: &str, min_score: f64) -> Vec<(PaperId, f64)> {
        let qvec = self.index.query_vector(self.corpus, query);
        self.index.keyword_search(&qvec, min_score)
    }

    /// Display snippet for a hit: the abstract window best covering the
    /// query (falls back to the title when nothing matches there).
    pub fn snippet(&self, paper: PaperId, query: &str) -> String {
        let terms = self.corpus.analyze_known(query);
        let p = self.corpus.paper(paper);
        textproc::snippet::best_snippet(
            &p.abstract_text,
            &terms,
            self.corpus.vocab(),
            &self.index.model,
            &textproc::snippet::SnippetConfig::default(),
        )
        .unwrap_or_else(|| p.title.clone())
    }

    /// "More like this": papers related to `source` through shared
    /// contexts, ranked by the §3.2 combined similarity.
    pub fn more_like_this(
        &self,
        sets: &ContextPaperSets,
        source: PaperId,
        limit: usize,
    ) -> Vec<crate::search::related::RelatedPaper> {
        crate::search::related::more_like_this(
            self.corpus,
            self.index,
            self.config,
            sets,
            source,
            limit,
        )
    }

    /// The §2 AC-answer ground-truth set for a query.
    pub fn ac_answer_set(&self, query: &str) -> HashSet<PaperId> {
        let qvec = self.index.query_vector(self.corpus, query);
        ac_answer_set(self.index, &self.config.ac, &qvec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;
    use std::cmp::Ordering;

    fn result(paper: u32, relevancy: f64) -> SearchResult {
        SearchResult {
            paper: PaperId(paper),
            relevancy,
            matching: 0.0,
            prestige: 0.0,
            context: TermId(0),
        }
    }

    #[test]
    fn rank_order_is_descending_relevancy() {
        assert_eq!(
            rank_order(&result(5, 0.9), &result(1, 0.3)),
            Ordering::Less,
            "higher relevancy sorts first"
        );
    }

    #[test]
    fn equal_relevancy_breaks_ties_by_paper_id() {
        assert_eq!(rank_order(&result(2, 0.5), &result(7, 0.5)), Ordering::Less);
        assert_eq!(
            rank_order(&result(7, 0.5), &result(2, 0.5)),
            Ordering::Greater
        );
    }

    #[test]
    fn tied_results_sort_identically_from_any_initial_order() {
        // The regression this comparator guards against: equal-relevancy
        // results coming out in HashMap iteration order.
        let mut a: Vec<SearchResult> = (0..20).rev().map(|p| result(p, 0.5)).collect();
        let mut b: Vec<SearchResult> = (0..20).map(|p| result((p * 7) % 20, 0.5)).collect();
        a.sort_by(rank_order);
        b.sort_by(rank_order);
        let ids = |v: &[SearchResult]| v.iter().map(|r| r.paper).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(ids(&a), (0..20).map(PaperId).collect::<Vec<_>>());
    }

    #[test]
    fn nan_relevancy_sorts_deterministically_and_never_panics() {
        // Before the total_cmp migration this comparator was
        // `partial_cmp(..).unwrap_or(Equal)`: a NaN score compared
        // "equal to everything", so its final position depended on the
        // input permutation. Under IEEE 754 totalOrder, positive NaN
        // sorts above +inf — in this descending comparator, NaN-scored
        // results surface at the front, identically from any order.
        let scores = [f64::NAN, 0.7, f64::NAN, 0.1, f64::INFINITY, 0.4];
        let mut fwd: Vec<SearchResult> = scores
            .iter()
            .enumerate()
            .map(|(p, &s)| result(p as u32, s))
            .collect();
        let mut rev: Vec<SearchResult> = fwd.clone();
        rev.reverse();
        fwd.sort_by(rank_order);
        rev.sort_by(rank_order);
        let ids = |v: &[SearchResult]| v.iter().map(|r| r.paper).collect::<Vec<_>>();
        assert_eq!(
            ids(&fwd),
            ids(&rev),
            "NaN must not make order input-dependent"
        );
        assert_eq!(
            ids(&fwd),
            [0, 2, 4, 1, 5, 3].map(PaperId).to_vec(),
            "NaN > +inf > finite, ties by paper id"
        );
    }

    #[test]
    fn negative_zero_relevancy_stays_adjacent_to_positive_zero() {
        // totalOrder distinguishes -0.0 from +0.0; the paper tie-break
        // no longer applies across the pair, but the order is still a
        // pure function of the inputs.
        let mut v = [result(3, -0.0), result(1, 0.0), result(2, 0.0)];
        v.sort_by(rank_order);
        let ids: Vec<PaperId> = v.iter().map(|r| r.paper).collect();
        assert_eq!(
            ids,
            [1, 2, 3].map(PaperId).to_vec(),
            "+0.0 ranks above -0.0"
        );
    }
}
