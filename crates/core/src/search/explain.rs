//! Result explanation: decompose one search hit's relevancy into its
//! ingredients — which context won, both score components, and the
//! query terms that actually matched (with their contribution to the
//! cosine). A ranking a user can't interrogate is a ranking they won't
//! trust; the paper's paradigm makes this easy because every part of
//! `R(p,q,c)` is inspectable.

use crate::context::ContextId;
use crate::indexes::CorpusIndex;
use crate::search::engine::SearchResult;
use corpus::{Corpus, PaperId};
use ontology::Ontology;

/// One matched query term and its contribution.
#[derive(Debug, Clone)]
pub struct TermContribution {
    /// The surface term (stemmed form, as indexed).
    pub term: String,
    /// Its share of the query↔paper cosine (the product of the two
    /// normalized TF-IDF weights).
    pub contribution: f64,
}

/// The decomposition of one search hit.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The paper being explained.
    pub paper: PaperId,
    /// The context that produced the best relevancy.
    pub context: ContextId,
    /// That context's name.
    pub context_name: String,
    /// That context's level in the hierarchy.
    pub context_level: u32,
    /// The prestige component of the relevancy.
    pub prestige: f64,
    /// The matching component.
    pub matching: f64,
    /// The combined relevancy.
    pub relevancy: f64,
    /// Matched query terms, largest contribution first.
    pub matched_terms: Vec<TermContribution>,
}

impl Explanation {
    /// Render a compact human-readable explanation.
    pub fn render(&self) -> String {
        let mut out = format!(
            "R = {:.3} = w_p·{:.3} (prestige in {:?}, level {}) + w_m·{:.3} (match)\n",
            self.relevancy, self.prestige, self.context_name, self.context_level, self.matching
        );
        out.push_str("matched terms:");
        for t in &self.matched_terms {
            out.push_str(&format!(" {}({:.3})", t.term, t.contribution));
        }
        out
    }
}

/// Explain one search hit.
pub fn explain_hit(
    ontology: &Ontology,
    corpus: &Corpus,
    index: &CorpusIndex,
    query: &str,
    hit: &SearchResult,
) -> Explanation {
    let qvec = index.query_vector(corpus, query);
    let dvec = &index.doc_vectors[hit.paper.index()];
    let mut matched_terms: Vec<TermContribution> = qvec
        .entries()
        .iter()
        .filter_map(|&(t, qw)| {
            let dw = dvec.get(t);
            if dw > 0.0 {
                Some(TermContribution {
                    term: corpus.vocab().term(t).unwrap_or("<unknown>").to_string(),
                    contribution: qw * dw,
                })
            } else {
                None
            }
        })
        .collect();
    matched_terms.sort_by(|a, b| {
        b.contribution
            .total_cmp(&a.contribution)
            .then_with(|| a.term.cmp(&b.term))
    });
    let term = ontology.term(hit.context);
    Explanation {
        paper: hit.paper,
        context: hit.context,
        context_name: term.name.clone(),
        context_level: ontology.level(hit.context),
        prestige: hit.prestige,
        matching: hit.matching,
        relevancy: hit.relevancy,
        matched_terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::search::engine::ContextSearchEngine;
    use crate::ScoreFunction;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn engine() -> ContextSearchEngine {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 150,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        ContextSearchEngine::build(onto, corp, EngineConfig::default())
    }

    #[test]
    fn explanation_reconstructs_the_hit() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == 3)
            .unwrap();
        let query = e.ontology().term(term).name.clone();
        let hits = e.search(&query, &sets, &prestige, 3);
        assert!(!hits.is_empty());
        for hit in &hits {
            let ex = explain_hit(e.ontology(), e.corpus(), e.index(), &query, hit);
            assert_eq!(ex.paper, hit.paper);
            assert_eq!(ex.relevancy, hit.relevancy);
            // The matched-term contributions must sum to the cosine
            // (both vectors are unit-normalized).
            let total: f64 = ex.matched_terms.iter().map(|t| t.contribution).sum();
            // The engine accumulates matching through f32 postings;
            // the explanation recomputes in f64, so tolerances are loose.
            assert!(
                (total - hit.matching).abs() < 1e-5,
                "contributions {total} vs matching {}",
                hit.matching
            );
            // Sorted descending.
            for w in ex.matched_terms.windows(2) {
                assert!(w[0].contribution >= w[1].contribution);
            }
            // Render doesn't panic and mentions the context.
            assert!(ex.render().contains(&ex.context_name));
        }
    }

    #[test]
    fn unmatched_terms_are_absent() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Citation);
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == 3)
            .unwrap();
        let query = e.ontology().term(term).name.clone();
        let hits = e.search(&query, &sets, &prestige, 1);
        if let Some(hit) = hits.first() {
            let ex = explain_hit(e.ontology(), e.corpus(), e.index(), &query, hit);
            for t in &ex.matched_terms {
                assert!(t.contribution > 0.0);
            }
        }
    }
}
