//! The end-to-end context-based search engine: owns the ontology, the
//! corpus, and all prepared state; exposes the five tasks of the
//! paradigm plus the evaluation hooks the experiment harness needs.
//!
//! The online query path lives in [`super::exec`]; this type owns the
//! pieces and delegates. For the prepare-once/serve-many architecture
//! (parallel build plan, immutable snapshot, lock-free serving) see
//! [`crate::EngineSnapshot`] and [`crate::Searcher`].

use crate::assign::{build_pattern_sets, build_text_sets, patterns_by_context, ContextPatterns};
use crate::config::EngineConfig;
use crate::context::{ContextId, ContextPaperSets};
use crate::indexes::CorpusIndex;
use crate::prestige::{PrestigeScores, ScoreFunction};
use crate::search::exec::QueryParts;
use corpus::{Corpus, PaperId};
use ontology::Ontology;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

pub use crate::search::exec::SearchResult;

/// The engine. Build once per (ontology, corpus); everything else is
/// derived.
pub struct ContextSearchEngine {
    ontology: Ontology,
    corpus: Corpus,
    config: EngineConfig,
    index: CorpusIndex,
    patterns: RwLock<Option<Arc<ContextPatterns>>>,
}

impl ContextSearchEngine {
    /// Build all prepared state (the expensive step).
    pub fn build(ontology: Ontology, corpus: Corpus, config: EngineConfig) -> Self {
        let _span = obs::span("engine.build");
        obs::gauge("corpus.papers", corpus.len() as f64);
        obs::gauge("ontology.terms", ontology.len() as f64);
        let index = CorpusIndex::build(&ontology, &corpus, &config.pagerank);
        Self {
            ontology,
            corpus,
            config,
            index,
            patterns: RwLock::new(None),
        }
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The prepared index state.
    pub fn index(&self) -> &CorpusIndex {
        &self.index
    }

    /// The borrowed query-path view of this engine's state.
    fn parts(&self) -> QueryParts<'_> {
        QueryParts {
            ontology: &self.ontology,
            corpus: &self.corpus,
            config: &self.config,
            index: &self.index,
        }
    }

    /// Per-context pattern sets, built lazily once and shared.
    pub fn context_patterns(&self) -> Arc<ContextPatterns> {
        if let Some(p) = self.patterns.read().as_ref() {
            return Arc::clone(p);
        }
        // Take the write lock *before* building: two threads that both
        // miss the read check must not both run the expensive mining —
        // the loser would discard minutes of work. Double-check under
        // the write lock, then build while holding it so concurrent
        // callers block until the one build finishes and share it.
        let mut guard = self.patterns.write();
        if let Some(p) = guard.as_ref() {
            return Arc::clone(p);
        }
        let _span = obs::span("engine.context_patterns");
        let built = Arc::new(patterns_by_context(
            &self.ontology,
            &self.corpus,
            &self.index,
            &self.config,
        ));
        *guard = Some(Arc::clone(&built));
        built
    }

    /// Task 1a: the §4 text-based context paper set.
    pub fn text_context_sets(&self) -> ContextPaperSets {
        let _span = obs::span("engine.text_context_sets");
        build_text_sets(&self.ontology, &self.corpus, &self.index, &self.config)
    }

    /// Task 1b: the §4 (simplified-)pattern-based context paper set.
    pub fn pattern_context_sets(&self) -> ContextPaperSets {
        let patterns = self.context_patterns();
        let _span = obs::span("engine.pattern_context_sets");
        build_pattern_sets(
            &self.ontology,
            &self.corpus,
            &self.index,
            &patterns,
            &self.config,
        )
    }

    /// Task 2: prestige scores with one of the three §3 functions, with
    /// the hierarchy max-propagation applied (§3's `max(s_j)` rule).
    pub fn prestige(&self, sets: &ContextPaperSets, function: ScoreFunction) -> PrestigeScores {
        self.prestige_with_options(sets, function, true, true)
    }

    /// Task 2 with explicit options: `simplified` picks the §4
    /// middle-only pattern matching (ignored for other functions);
    /// `propagate` toggles the hierarchy max rule (ablation hook).
    pub fn prestige_with_options(
        &self,
        sets: &ContextPaperSets,
        function: ScoreFunction,
        simplified: bool,
        propagate: bool,
    ) -> PrestigeScores {
        crate::prestige::compute_prestige(
            &self.ontology,
            &self.corpus,
            &self.index,
            &self.config,
            sets,
            function,
            simplified,
            propagate,
            || self.context_patterns(),
        )
    }

    /// Task 3: select the contexts a query should search.
    pub fn select_contexts(&self, query: &str, sets: &ContextPaperSets) -> Vec<(ContextId, f64)> {
        self.parts().select_contexts(query, sets)
    }

    /// Tasks 4 + 5: search within the selected contexts and rank by
    /// relevancy; results from different contexts are merged by keeping
    /// each paper's best relevancy. `limit = 0` means unlimited.
    pub fn search(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> Vec<SearchResult> {
        self.parts().search(query, sets, prestige, limit)
    }

    /// The PubMed-style keyword-search baseline over the whole corpus.
    pub fn keyword_search(&self, query: &str, min_score: f64) -> Vec<(PaperId, f64)> {
        self.parts().keyword_search(query, min_score)
    }

    /// The paper's §7 future-work score function: citation prestige
    /// with weighted cross-context relationships (see
    /// [`crate::prestige::citation_weighted`]).
    pub fn weighted_citation_prestige(
        &self,
        sets: &ContextPaperSets,
        weights: &crate::prestige::citation_weighted::CrossContextWeights,
    ) -> PrestigeScores {
        let mut scores = crate::prestige::citation_weighted::weighted_citation_prestige(
            &self.ontology,
            sets,
            &self.index.graph,
            &self.config,
            weights,
        );
        scores.propagate_hierarchy_max(&self.ontology, sets);
        scores
    }

    /// Display snippet for a hit: the abstract window best covering the
    /// query (falls back to the title when nothing matches there).
    pub fn snippet(&self, paper: PaperId, query: &str) -> String {
        self.parts().snippet(paper, query)
    }

    /// "More like this": papers related to `source` through shared
    /// contexts, ranked by the §3.2 combined similarity.
    pub fn more_like_this(
        &self,
        sets: &ContextPaperSets,
        source: PaperId,
        limit: usize,
    ) -> Vec<crate::search::related::RelatedPaper> {
        self.parts().more_like_this(sets, source, limit)
    }

    /// The §2 AC-answer ground-truth set for a query.
    pub fn ac_answer_set(&self, query: &str) -> HashSet<PaperId> {
        self.parts().ac_answer_set(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn engine() -> ContextSearchEngine {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 80,
            seed: 3,
            ..Default::default()
        });
        let corpus = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 200,
                seed: 5,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        ContextSearchEngine::build(onto, corpus, EngineConfig::default())
    }

    fn a_query(e: &ContextSearchEngine) -> (String, ContextId) {
        // Query the deepest available mid-level term's name; it maps to
        // that term.
        let target = e.ontology().max_level().clamp(3, 4);
        let term = e
            .ontology()
            .term_ids()
            .find(|&t| e.ontology().level(t) == target)
            .expect("mid-level term");
        (e.ontology().term(term).name.clone(), term)
    }

    #[test]
    fn end_to_end_search_returns_ranked_results() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let (q, _) = a_query(&e);
        let hits = e.search(&q, &sets, &prestige, 20);
        assert!(!hits.is_empty(), "query {q:?} found nothing");
        for w in hits.windows(2) {
            assert!(w[0].relevancy >= w[1].relevancy);
        }
        for h in &hits {
            assert!((0.0..=1.0 + 1e-9).contains(&h.relevancy));
            assert!(sets.is_member(h.context, h.paper));
        }
    }

    #[test]
    fn search_results_are_topically_relevant() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let (q, term) = a_query(&e);
        let hits = e.search(&q, &sets, &prestige, 10);
        // At least one top hit's true topics relate to the query term
        // (itself, an ancestor, or a descendant).
        let related = hits.iter().take(10).any(|h| {
            e.corpus().paper(h.paper).true_topics.iter().any(|&t| {
                t == term
                    || e.ontology().is_descendant(t, term)
                    || e.ontology().is_descendant(term, t)
            })
        });
        assert!(related, "no topically related paper in top hits for {q:?}");
    }

    #[test]
    fn context_search_output_is_smaller_than_keyword_search() {
        // The paper's headline: context-based search reduces output size.
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let (q, _) = a_query(&e);
        let keyword = e.keyword_search(&q, 0.0);
        let context = e.search(&q, &sets, &prestige, 0);
        assert!(
            context.len() <= keyword.len(),
            "context {} vs keyword {}",
            context.len(),
            keyword.len()
        );
    }

    #[test]
    fn limit_zero_means_unlimited() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let (q, _) = a_query(&e);
        let all = e.search(&q, &sets, &prestige, 0);
        let limited = e.search(&q, &sets, &prestige, 3);
        assert!(limited.len() <= 3);
        assert!(all.len() >= limited.len());
    }

    #[test]
    fn patterns_are_cached() {
        let e = engine();
        let a = e.context_patterns();
        let b = e.context_patterns();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_pattern_requests_share_one_build() {
        // The double-build race: both threads miss the read check, but
        // only one may run the mining; the other must block and share.
        let e = engine();
        let handles: Vec<Arc<ContextPatterns>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| e.context_patterns()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for h in &handles[1..] {
            assert!(Arc::ptr_eq(&handles[0], h), "all threads share one build");
        }
    }

    #[test]
    fn prestige_functions_cover_expected_contexts() {
        let e = engine();
        let psets = e.pattern_context_sets();
        let cit = e.prestige(&psets, ScoreFunction::Citation);
        let pat = e.prestige(&psets, ScoreFunction::Pattern);
        // Citation and pattern scores exist for all pattern contexts.
        assert_eq!(cit.contexts().count(), psets.n_contexts());
        assert_eq!(pat.contexts().count(), psets.n_contexts());
        // Text scores only where representatives exist.
        let tsets = e.text_context_sets();
        let txt = e.prestige(&tsets, ScoreFunction::Text);
        assert_eq!(txt.contexts().count(), tsets.representatives.len());
    }

    #[test]
    fn snippets_cover_query_or_fall_back_to_title() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Pattern);
        let (q, _) = a_query(&e);
        let hits = e.search(&q, &sets, &prestige, 5);
        for h in &hits {
            let s = e.snippet(h.paper, &q);
            assert!(!s.is_empty());
        }
        // Nonsense query → title fallback.
        let s = e.snippet(PaperId(0), "zzznonsense");
        assert_eq!(s, e.corpus().paper(PaperId(0)).title);
    }

    #[test]
    fn weighted_citation_prestige_reduces_ties() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let plain = e.prestige(&sets, ScoreFunction::Citation);
        let weighted = e.weighted_citation_prestige(
            &sets,
            &crate::prestige::citation_weighted::CrossContextWeights::default(),
        );
        let tie_fraction = |p: &PrestigeScores| {
            let (mut total, mut distinct) = (0usize, 0usize);
            for c in sets.contexts_with_min_size(5) {
                let values: Vec<u64> = p.scores(c).iter().map(|&(_, s)| s.to_bits()).collect();
                total += values.len();
                distinct += values
                    .iter()
                    .collect::<std::collections::HashSet<_>>()
                    .len();
            }
            1.0 - distinct as f64 / total.max(1) as f64
        };
        assert!(
            tie_fraction(&weighted) <= tie_fraction(&plain) + 1e-9,
            "weighted variant must not add ties"
        );
        // Coverage identical.
        assert_eq!(plain.contexts().count(), weighted.contexts().count());
    }

    #[test]
    fn nonsense_query_returns_empty() {
        let e = engine();
        let sets = e.pattern_context_sets();
        let prestige = e.prestige(&sets, ScoreFunction::Citation);
        let hits = e.search("zzz qqq xxx", &sets, &prestige, 10);
        assert!(hits.is_empty());
    }
}
