//! The relevancy score (paper §3):
//! `R(p, q, c) = w_prestige · Prestige(p, c) + w_matching · Match(p, q)`.

use crate::config::RelevancyWeights;

/// Combine a prestige score and a text-matching score, both in [0, 1].
pub fn relevancy(prestige: f64, matching: f64, weights: &RelevancyWeights) -> f64 {
    weights.prestige * prestige + weights.matching * matching
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_average() {
        let w = RelevancyWeights {
            prestige: 0.5,
            matching: 0.5,
        };
        assert!((relevancy(1.0, 0.0, &w) - 0.5).abs() < 1e-12);
        assert!((relevancy(0.4, 0.8, &w) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn prestige_only_and_matching_only() {
        let p_only = RelevancyWeights {
            prestige: 1.0,
            matching: 0.0,
        };
        let m_only = RelevancyWeights {
            prestige: 0.0,
            matching: 1.0,
        };
        assert_eq!(relevancy(0.7, 0.2, &p_only), 0.7);
        assert_eq!(relevancy(0.7, 0.2, &m_only), 0.2);
    }

    #[test]
    fn result_bounded_when_weights_sum_to_one() {
        let w = RelevancyWeights::default();
        for p in [0.0, 0.5, 1.0] {
            for m in [0.0, 0.5, 1.0] {
                let r = relevancy(p, m, &w);
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
