//! Lock-free serving over an immutable [`EngineSnapshot`].
//!
//! A [`Searcher`] is a cheap, cloneable handle (`Arc` clone) that any
//! number of threads can use concurrently: every query reads only the
//! snapshot's immutable state through [`QueryParts`], so the hot path
//! takes zero locks — no `RwLock`, no lazy initialization, no interior
//! mutability of any kind. Results are deterministic and identical
//! across threads (asserted by the `snapshot_serving` integration
//! test).

use crate::context::{ContextId, ContextPaperSets, ContextSetKind};
use crate::prestige::{PrestigeScores, ScoreFunction};
use crate::search::exec::{QueryParts, QueryStats, SearchResult};
use crate::snapshot::EngineSnapshot;
use corpus::PaperId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A serve-time problem: the snapshot lacks a requested table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The snapshot was prepared without this (paper set, function)
    /// prestige pair.
    MissingPrestige {
        /// The requested paper-set kind.
        kind: ContextSetKind,
        /// The requested score function.
        function: ScoreFunction,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingPrestige { kind, function } => write!(
                f,
                "snapshot has no prestige table for ({}, {}); prepare it with that pair",
                kind.name(),
                function.name()
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// A lock-free query handle over a shared [`EngineSnapshot`].
#[derive(Clone)]
pub struct Searcher {
    snapshot: Arc<EngineSnapshot>,
    /// Immutable prestige-table overrides consulted before the
    /// snapshot's own tables: the perturbation/ablation hook (what-if
    /// serving, quality-drift injection in tests). `None` on the
    /// ordinary serve path, so the common case costs one branch.
    overrides: Option<Arc<HashMap<(ContextSetKind, ScoreFunction), PrestigeScores>>>,
}

impl Searcher {
    /// Wrap a snapshot.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        Self {
            snapshot,
            overrides: None,
        }
    }

    /// A handle that serves `(kind, function)` from `scores` instead of
    /// the snapshot's prepared table. Other pairs are unaffected; the
    /// snapshot itself is untouched, so handles with and without the
    /// override serve concurrently from the same memory. This is the
    /// what-if/ablation hook — the quality gate's tests use it to
    /// inject a degraded prestige function and prove drift detection
    /// fires.
    pub fn with_prestige_override(
        &self,
        kind: ContextSetKind,
        function: ScoreFunction,
        scores: PrestigeScores,
    ) -> Self {
        let mut map = self
            .overrides
            .as_ref()
            .map(|m| (**m).clone())
            .unwrap_or_default();
        map.insert((kind, function), scores);
        Self {
            snapshot: Arc::clone(&self.snapshot),
            overrides: Some(Arc::new(map)),
        }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snapshot
    }

    /// The ontology.
    pub fn ontology(&self) -> &ontology::Ontology {
        self.snapshot.ontology()
    }

    /// The corpus.
    pub fn corpus(&self) -> &corpus::Corpus {
        self.snapshot.corpus()
    }

    /// The configuration.
    pub fn config(&self) -> &crate::config::EngineConfig {
        self.snapshot.config()
    }

    /// The prepared index state.
    pub fn index(&self) -> &crate::indexes::CorpusIndex {
        self.snapshot.index()
    }

    /// One of the two §4 context paper sets.
    pub fn sets(&self, kind: ContextSetKind) -> &ContextPaperSets {
        self.snapshot.sets(kind)
    }

    /// A prepared prestige table, if the snapshot (or an override
    /// installed with
    /// [`with_prestige_override`](Self::with_prestige_override)) has
    /// it.
    pub fn prestige(
        &self,
        kind: ContextSetKind,
        function: ScoreFunction,
    ) -> Option<&PrestigeScores> {
        if let Some(overrides) = &self.overrides {
            if let Some(table) = overrides.get(&(kind, function)) {
                return Some(table);
            }
        }
        self.snapshot.prestige(kind, function)
    }

    fn parts(&self) -> QueryParts<'_> {
        QueryParts {
            ontology: self.snapshot.ontology(),
            corpus: self.snapshot.corpus(),
            config: self.snapshot.config(),
            index: self.snapshot.index(),
        }
    }

    /// Serve one query against a prepared (paper set, function) pair.
    pub fn query(
        &self,
        query: &str,
        kind: ContextSetKind,
        function: ScoreFunction,
        limit: usize,
    ) -> Result<Vec<SearchResult>, ServeError> {
        self.query_with_stats(query, kind, function, limit)
            .map(|(results, _)| results)
    }

    /// [`query`](Self::query) plus the execution's [`QueryStats`].
    /// This is the serve path proper: it carries the `serve.query` span
    /// (the end-to-end latency series the rolling windows and SLOs
    /// watch) and the `serve.queries` / `serve.errors` counters.
    pub fn query_with_stats(
        &self,
        query: &str,
        kind: ContextSetKind,
        function: ScoreFunction,
        limit: usize,
    ) -> Result<(Vec<SearchResult>, QueryStats), ServeError> {
        let _span = obs::span("serve.query");
        obs::counter("serve.queries", 1);
        let Some(prestige) = self.prestige(kind, function) else {
            obs::counter("serve.errors", 1);
            return Err(ServeError::MissingPrestige { kind, function });
        };
        Ok(self
            .parts()
            .search_with_stats(query, self.sets(kind), prestige, limit))
    }

    /// Tasks 4 + 5 with explicit tables (the engine-compatible form;
    /// the experiment harness passes ablation variants through here).
    pub fn search(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> Vec<SearchResult> {
        self.parts().search(query, sets, prestige, limit)
    }

    /// [`search`](Self::search) plus the execution's [`QueryStats`].
    pub fn search_with_stats(
        &self,
        query: &str,
        sets: &ContextPaperSets,
        prestige: &PrestigeScores,
        limit: usize,
    ) -> (Vec<SearchResult>, QueryStats) {
        self.parts().search_with_stats(query, sets, prestige, limit)
    }

    /// Task 3: select the contexts a query should search.
    pub fn select_contexts(&self, query: &str, sets: &ContextPaperSets) -> Vec<(ContextId, f64)> {
        self.parts().select_contexts(query, sets)
    }

    /// The PubMed-style keyword-search baseline over the whole corpus.
    pub fn keyword_search(&self, query: &str, min_score: f64) -> Vec<(PaperId, f64)> {
        self.parts().keyword_search(query, min_score)
    }

    /// Display snippet for a hit.
    pub fn snippet(&self, paper: PaperId, query: &str) -> String {
        self.parts().snippet(paper, query)
    }

    /// "More like this" over shared contexts.
    pub fn more_like_this(
        &self,
        sets: &ContextPaperSets,
        source: PaperId,
        limit: usize,
    ) -> Vec<crate::search::related::RelatedPaper> {
        self.parts().more_like_this(sets, source, limit)
    }

    /// The §2 AC-answer ground-truth set for a query.
    pub fn ac_answer_set(&self, query: &str) -> HashSet<PaperId> {
        self.parts().ac_answer_set(query)
    }

    /// Recompute a prestige table with explicit options (ablation hook;
    /// not a serve-path operation — it does offline-phase work).
    ///
    /// # Panics
    /// For [`ScoreFunction::Pattern`] on a warm-loaded snapshot: mined
    /// patterns are not persisted, so pattern prestige cannot be
    /// recomputed from disk.
    pub fn prestige_with_options(
        &self,
        sets: &ContextPaperSets,
        function: ScoreFunction,
        simplified: bool,
        propagate: bool,
    ) -> PrestigeScores {
        crate::prestige::compute_prestige(
            self.ontology(),
            self.corpus(),
            self.index(),
            self.config(),
            sets,
            function,
            simplified,
            propagate,
            || {
                // lint:allow(no-panic-serving, ablation-only hook: pattern prestige is never requested on warm-loaded snapshots and the message documents the contract)
                Arc::clone(self.snapshot.patterns().expect(
                    "pattern prestige needs mined patterns; \
                     warm-loaded snapshots do not carry them",
                ))
            },
        )
    }

    /// The §7 weighted cross-context citation function.
    pub fn weighted_citation_prestige(
        &self,
        sets: &ContextPaperSets,
        weights: &crate::prestige::citation_weighted::CrossContextWeights,
    ) -> PrestigeScores {
        let mut scores = crate::prestige::citation_weighted::weighted_citation_prestige(
            self.ontology(),
            sets,
            &self.index().graph,
            self.config(),
            weights,
        );
        scores.propagate_hierarchy_max(self.ontology(), sets);
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::search::engine::ContextSearchEngine;
    use corpus::{generate_corpus, CorpusConfig};
    use ontology::{generate_ontology, GeneratorConfig};

    fn testbed() -> (ontology::Ontology, corpus::Corpus) {
        let onto = generate_ontology(&GeneratorConfig {
            n_terms: 70,
            seed: 11,
            ..Default::default()
        });
        let corp = generate_corpus(
            &onto,
            &CorpusConfig {
                n_papers: 160,
                seed: 13,
                body_len: (40, 60),
                abstract_len: (20, 30),
                ..Default::default()
            },
        );
        (onto, corp)
    }

    #[test]
    fn searcher_matches_the_engine_exactly() {
        let (onto, corp) = testbed();
        let snap = EngineSnapshot::prepare(onto.clone(), corp.clone(), EngineConfig::default());
        let searcher = snap.searcher();
        let engine = ContextSearchEngine::build(onto, corp, EngineConfig::default());
        let sets = engine.pattern_context_sets();
        let prestige = engine.prestige(&sets, ScoreFunction::Pattern);
        for query in ["biological process", "binding", "molecular function"] {
            let via_engine = engine.search(query, &sets, &prestige, 0);
            let via_searcher = searcher
                .query(
                    query,
                    ContextSetKind::PatternBased,
                    ScoreFunction::Pattern,
                    0,
                )
                .unwrap();
            assert_eq!(via_engine.len(), via_searcher.len(), "query {query:?}");
            for (a, b) in via_engine.iter().zip(&via_searcher) {
                assert_eq!(a.paper, b.paper);
                assert_eq!(a.relevancy, b.relevancy);
                assert_eq!(a.matching, b.matching);
                assert_eq!(a.prestige, b.prestige);
                assert_eq!(a.context, b.context);
            }
        }
        // The baseline and ground-truth hooks agree too.
        for query in ["biological process", "binding"] {
            assert_eq!(
                engine.keyword_search(query, 0.1),
                searcher.keyword_search(query, 0.1)
            );
            assert_eq!(engine.ac_answer_set(query), searcher.ac_answer_set(query));
        }
    }

    #[test]
    fn missing_pair_is_a_clean_error() {
        let (onto, corp) = testbed();
        let snap = EngineSnapshot::prepare_with(
            onto,
            corp,
            EngineConfig::default(),
            crate::snapshot::PrepareOptions {
                pairs: vec![(ContextSetKind::TextBased, ScoreFunction::Citation)],
            },
        );
        let err = snap
            .searcher()
            .query(
                "binding",
                ContextSetKind::PatternBased,
                ScoreFunction::Pattern,
                5,
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::MissingPrestige {
                kind: ContextSetKind::PatternBased,
                function: ScoreFunction::Pattern
            }
        );
        assert!(err.to_string().contains("pattern"));
    }

    #[test]
    fn cloned_handles_share_the_snapshot() {
        let (onto, corp) = testbed();
        let snap = EngineSnapshot::prepare_with(
            onto,
            corp,
            EngineConfig::default(),
            crate::snapshot::PrepareOptions {
                pairs: vec![(ContextSetKind::TextBased, ScoreFunction::Citation)],
            },
        );
        let a = snap.searcher();
        let b = a.clone();
        assert!(Arc::ptr_eq(a.snapshot(), b.snapshot()));
    }
}
