//! Query-time machinery: context selection, relevancy scoring, and the
//! end-to-end engine.

pub mod engine;
pub(crate) mod exec;
pub mod explain;
pub mod gopubmed;
pub mod related;
pub mod relevancy;
pub(crate) mod scratch;
pub mod select;
pub mod serve;
pub mod shadow;

pub use engine::{ContextSearchEngine, SearchResult};
pub use exec::QueryStats;
pub use relevancy::relevancy;
pub use select::select_contexts;
pub use serve::{Searcher, ServeError};
pub use shadow::{shadow_evaluate, QualityShadow, ShadowConfig, SHADOW_FUNCTIONS};
