//! Per-thread query execution scratch: dense score/context arrays, the
//! candidate-column accumulator, and the bounded top-k selector.
//!
//! One [`QueryScratch`] per worker thread makes the serve path
//! allocation-light without any cross-thread state: the pool is a
//! `thread_local`, so queries on different threads never contend and
//! the hot path stays lock-free (a `RefCell` borrow is a flag check,
//! not a lock — and the scratch is thread-owned, never shared). Reuse
//! is epoch-stamped: a dense slot is live only when its stamp equals
//! the current query's epoch, so consecutive queries skip O(n_papers)
//! zeroing.
//!
//! # Merge-intersection invariants
//!
//! [`QueryScratch::score_context`] intersects two id-sorted columns —
//! a context's prestige papers and the query's keyword candidates —
//! and visits every common id in **ascending paper order**, whichever
//! of the three strategies (linear two-pointer, or binary-probing the
//! larger side when the size ratio exceeds [`GALLOP_RATIO`]) runs.
//! Combined with contexts being scored in selection order, the update
//! sequence against the dense best-result arrays is exactly the old
//! HashMap path's insertion/`and_modify` sequence, which is what keeps
//! ranked output byte-identical.
//!
//! # Why plain indexing is safe here
//!
//! The dense arrays are sized by [`QueryScratch::begin`] to the corpus
//! paper count, and a paper can only be *visited* if its id equals a
//! candidate doc id — candidates come from the inverted index, whose
//! doc ids are `< n_docs == n_papers` by construction. Prestige entries
//! for out-of-range papers (e.g. a hand-corrupted snapshot) simply
//! never intersect a candidate, so they cannot reach the dense arrays.

use crate::config::RelevancyWeights;
use crate::context::ContextId;
use crate::indexes::CorpusIndex;
use crate::prestige::PrestigeScores;
use crate::search::exec::{rank_order, SearchResult};
use crate::search::relevancy::relevancy;
use corpus::PaperId;
use ontology::TermId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use textproc::index::DocId;
use textproc::{CandidateScratch, SparseVector};

/// When one column is this many times longer than the other, probe the
/// longer one by binary search instead of stepping it linearly.
const GALLOP_RATIO: usize = 32;

/// Reusable per-thread state for one query execution.
#[derive(Debug, Default)]
pub(crate) struct QueryScratch {
    /// Keyword-candidate accumulator and output columns.
    candidates: CandidateScratch,
    /// Best relevancy per paper (live iff `stamp` matches `epoch`).
    rel: Vec<f64>,
    /// The paper's text-match score (identical in every context).
    mat: Vec<f64>,
    /// Prestige component of the best relevancy.
    pres: Vec<f64>,
    /// Context that produced the best relevancy.
    ctx: Vec<ContextId>,
    /// Epoch stamps for the four arrays above.
    stamp: Vec<u32>,
    /// The current query's epoch.
    epoch: u32,
    /// Papers with at least one scored pair, in first-touch order.
    touched: Vec<PaperId>,
}

impl QueryScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a query: size the dense arrays for `n_papers` and advance
    /// the epoch (clearing all stamps on u32 wraparound).
    pub fn begin(&mut self, n_papers: usize) {
        if self.rel.len() < n_papers {
            self.rel.resize(n_papers, 0.0);
            self.mat.resize(n_papers, 0.0);
            self.pres.resize(n_papers, 0.0);
            self.ctx.resize(n_papers, TermId(0));
            self.stamp.resize(n_papers, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Run the keyword match into the candidate columns (ascending doc
    /// id, scores parallel). Same candidate set and score bits as the
    /// map-shaped `keyword_search(query, 0.0)` path.
    pub fn gather_candidates(&mut self, index: &CorpusIndex, query: &SparseVector) {
        index.keyword_search_columns(query, 0.0, &mut self.candidates);
    }

    /// Number of keyword candidates of the current query.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of distinct papers scored so far.
    pub fn distinct(&self) -> usize {
        self.touched.len()
    }

    /// Merge-intersect one context's prestige columns with the
    /// candidate columns, folding each common paper's relevancy into
    /// the dense best-result arrays. Returns the number of (context,
    /// paper) pairs scored.
    pub fn score_context(
        &mut self,
        prestige: &PrestigeScores,
        context: ContextId,
        weights: &RelevancyWeights,
    ) -> u64 {
        let (papers, values) = prestige.columns(context);
        let Self {
            candidates,
            rel,
            mat,
            pres,
            ctx,
            stamp,
            epoch,
            touched,
        } = self;
        let (docs, dscores) = candidates.columns();
        let cur = *epoch;
        let np = papers.len();
        let nd = docs.len();
        if np == 0 || nd == 0 {
            return 0;
        }
        let mut pairs = 0u64;
        // The visit order is ascending paper id under every strategy,
        // so the first-wins `r > rel[p]` update below reproduces the
        // HashMap path's entry order exactly.
        let mut visit = |paper: PaperId, pscore: f64, m: f64| {
            let r = relevancy(pscore, m, weights);
            let i = paper.index();
            if stamp[i] != cur {
                stamp[i] = cur;
                touched.push(paper);
                rel[i] = r;
                mat[i] = m;
                pres[i] = pscore;
                ctx[i] = context;
            } else if r > rel[i] {
                rel[i] = r;
                pres[i] = pscore;
                ctx[i] = context;
            }
        };
        if np.saturating_mul(GALLOP_RATIO) < nd {
            // Sparse context, broad query: probe the candidate column.
            let mut lo = 0usize;
            for (k, &p) in papers.iter().enumerate() {
                let target = DocId(p.0);
                let at = lo + docs[lo..].partition_point(|&d| d < target);
                lo = at;
                if at < nd && docs[at] == target {
                    visit(p, values[k], dscores[at]);
                    pairs += 1;
                    lo = at + 1;
                }
            }
        } else if nd.saturating_mul(GALLOP_RATIO) < np {
            // Broad context, narrow query: probe the prestige column.
            let mut lo = 0usize;
            for (j, &d) in docs.iter().enumerate() {
                let target = PaperId(d.0);
                let at = lo + papers[lo..].partition_point(|&p| p < target);
                lo = at;
                if at < np && papers[at] == target {
                    visit(target, values[at], dscores[j]);
                    pairs += 1;
                    lo = at + 1;
                }
            }
        } else {
            // Comparable sizes: linear two-pointer merge.
            let (mut i, mut j) = (0usize, 0usize);
            while i < np && j < nd {
                let p = papers[i].0;
                let d = docs[j].0;
                match p.cmp(&d) {
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                    Ordering::Equal => {
                        visit(papers[i], values[i], dscores[j]);
                        pairs += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        pairs
    }

    fn result_for(&self, paper: PaperId) -> SearchResult {
        let i = paper.index();
        SearchResult {
            paper,
            relevancy: self.rel[i],
            matching: self.mat[i],
            prestige: self.pres[i],
            context: self.ctx[i],
        }
    }

    /// Rank the scored papers under [`rank_order`]. `limit == 0` sorts
    /// everything; otherwise a bounded max-heap keeps exactly the top
    /// `limit` (identical to full-sort-then-truncate, because
    /// `rank_order` is a strict total order over distinct papers).
    /// Returns the ranked results and the number of heap pushes — on
    /// the unbounded path every candidate "enters the ranking", so the
    /// counter equals the distinct-paper count there.
    pub fn ranked(&mut self, limit: usize) -> (Vec<SearchResult>, u64) {
        if limit == 0 {
            let mut out: Vec<SearchResult> =
                self.touched.iter().map(|&p| self.result_for(p)).collect();
            out.sort_by(rank_order);
            let pushes = out.len() as u64;
            return (out, pushes);
        }
        let mut pushes = 0u64;
        let mut heap: BinaryHeap<RankEntry> = BinaryHeap::with_capacity(limit + 1);
        for &p in &self.touched {
            let cand = self.result_for(p);
            if heap.len() < limit {
                heap.push(RankEntry(cand));
                pushes += 1;
            } else if let Some(worst) = heap.peek() {
                if rank_order(&cand, &worst.0) == Ordering::Less {
                    heap.pop();
                    heap.push(RankEntry(cand));
                    pushes += 1;
                }
            }
        }
        let out: Vec<SearchResult> = heap.into_sorted_vec().into_iter().map(|e| e.0).collect();
        (out, pushes)
    }
}

/// Heap entry ordered by [`rank_order`] — `Less` means "ranks first",
/// so a max-heap keeps its *worst* element on top, which is the one a
/// better candidate evicts.
struct RankEntry(SearchResult);

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        rank_order(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for RankEntry {}
impl PartialOrd for RankEntry {
    // lint:allow(float-total-order, delegates to Ord, which is rank_order and therefore total_cmp with the PaperId tie-break)
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        rank_order(&self.0, &other.0)
    }
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Run `f` with this thread's pooled [`QueryScratch`]. Re-entrant calls
/// (a query issued from inside a scratch-held section on the same
/// thread) fall back to a fresh scratch instead of panicking.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut QueryScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::TermId;

    fn result(paper: u32, relevancy: f64) -> SearchResult {
        SearchResult {
            paper: PaperId(paper),
            relevancy,
            matching: 0.0,
            prestige: 0.0,
            context: TermId(0),
        }
    }

    /// Drive `ranked` directly through a hand-built scratch.
    fn scratch_with(results: &[SearchResult]) -> QueryScratch {
        let n = results
            .iter()
            .map(|r| r.paper.index() + 1)
            .max()
            .unwrap_or(0);
        let mut s = QueryScratch::new();
        s.begin(n);
        for r in results {
            let i = r.paper.index();
            s.stamp[i] = s.epoch;
            s.rel[i] = r.relevancy;
            s.mat[i] = r.matching;
            s.pres[i] = r.prestige;
            s.ctx[i] = r.context;
            s.touched.push(r.paper);
        }
        s
    }

    fn ids(v: &[SearchResult]) -> Vec<PaperId> {
        v.iter().map(|r| r.paper).collect()
    }

    #[test]
    fn bounded_top_k_equals_sort_then_truncate() {
        // Duplicated relevancies force the PaperId tie-break through
        // the heap's eviction decisions.
        let results: Vec<SearchResult> = [0.5, 0.9, 0.5, 0.1, 0.9, 0.5, 0.7]
            .iter()
            .enumerate()
            .map(|(p, &s)| result(p as u32, s))
            .collect();
        let mut reference = results.clone();
        reference.sort_by(rank_order);
        for limit in 1..=results.len() + 2 {
            let (top, pushes) = scratch_with(&results).ranked(limit);
            let mut want = reference.clone();
            want.truncate(limit);
            assert_eq!(ids(&top), ids(&want), "limit {limit}");
            assert!(pushes >= top.len() as u64);
            assert!(pushes <= results.len() as u64);
        }
        let (all, pushes) = scratch_with(&results).ranked(0);
        assert_eq!(ids(&all), ids(&reference));
        assert_eq!(pushes, results.len() as u64);
    }

    #[test]
    fn heap_pushes_shrink_when_input_arrives_best_first() {
        // Descending input: after the heap fills, nothing displaces.
        let desc: Vec<SearchResult> = (0..100)
            .map(|p| result(p, 1.0 - p as f64 / 100.0))
            .collect();
        let (_, pushes) = scratch_with(&desc).ranked(10);
        assert_eq!(pushes, 10);
        // Ascending input: every candidate displaces.
        let asc: Vec<SearchResult> = desc.iter().rev().copied().collect();
        let (_, pushes) = scratch_with(&asc).ranked(10);
        assert_eq!(pushes, 100);
    }

    #[test]
    fn epoch_reuse_isolates_queries() {
        let mut s = scratch_with(&[result(3, 0.8), result(5, 0.2)]);
        let (first, _) = s.ranked(0);
        assert_eq!(ids(&first), vec![PaperId(3), PaperId(5)]);
        // Reusing the same scratch for a disjoint query must not leak
        // paper 3 or 5.
        s.begin(10);
        s.stamp[7] = s.epoch;
        s.rel[7] = 0.4;
        s.touched.push(PaperId(7));
        let (second, _) = s.ranked(0);
        assert_eq!(ids(&second), vec![PaperId(7)]);
    }

    #[test]
    fn with_scratch_reenters_without_panicking() {
        let outer = with_scratch(|a| {
            a.begin(4);
            with_scratch(|b| {
                b.begin(2);
                b.distinct()
            })
        });
        assert_eq!(outer, 0);
    }
}
