//! Schedule-permutation stress for the prepare-plan executor.
//!
//! The plan's correctness claim is schedule independence: for a fixed
//! dependency graph, every stage insertion order, thread count, and
//! interleaving must produce the same result — every stage exactly
//! once, never before its dependencies, slot handoffs intact. These
//! tests attack that claim deterministically: insertion orders are
//! enumerated exhaustively (Heap's algorithm), interleavings are
//! perturbed with seeded per-stage jitter, and the whole suite is a
//! pure function of its seeds so a failure replays exactly.

use context_search::plan::{Plan, Slot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The prepare DAG shape from `EngineSnapshot::prepare`, abstracted:
/// one root (index), two mid stages fanning out of it (text sets,
/// pattern mining), and four leaves fanning out of the mids (the
/// per-(set, function) prestige tables).
const STAGES: [(&str, &[&str]); 7] = [
    ("index", &[]),
    ("text_sets", &["index"]),
    ("patterns", &["index"]),
    ("text_citation", &["text_sets"]),
    ("text_cocitation", &["text_sets"]),
    ("pattern_citation", &["patterns"]),
    ("pattern_cocitation", &["patterns"]),
];

/// All permutations of `items` via Heap's algorithm — deterministic,
/// no allocation games, 5040 orders for the 7-stage graph.
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    fn heap<T: Clone>(k: usize, arr: &mut Vec<T>, out: &mut Vec<Vec<T>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    let mut out = Vec::new();
    heap(arr.len(), &mut arr, &mut out);
    out
}

/// Run the 7-stage DAG with stages inserted in `order`, recording the
/// completion sequence. `jitter_seed` adds a seeded busy-wait per stage
/// so different seeds realize different interleavings on the pool.
fn run_dag(order: &[usize], threads: usize, jitter_seed: u64) -> Vec<&'static str> {
    let mut rng = SmallRng::seed_from_u64(jitter_seed);
    let spins: Vec<u32> = (0..STAGES.len()).map(|_| rng.gen_range(0..2000)).collect();
    let log: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut plan = Plan::new();
    for &i in order {
        let (name, deps) = STAGES[i];
        let spin = spins[i];
        let log = &log;
        plan.stage(name, deps, move || {
            // Deterministic-length busy work; `hint::spin_loop` keeps
            // the optimizer from deleting it.
            for _ in 0..spin {
                std::hint::spin_loop();
            }
            log.lock().unwrap().push(name);
        });
    }
    plan.run(threads).expect("valid plan");
    log.into_inner().unwrap()
}

fn assert_valid_schedule(completed: &[&str], ctx: &str) {
    assert_eq!(completed.len(), STAGES.len(), "{ctx}: every stage ran once");
    let pos = |s: &str| {
        completed
            .iter()
            .position(|&x| x == s)
            .unwrap_or_else(|| panic!("{ctx}: stage {s} missing from {completed:?}"))
    };
    for (name, deps) in STAGES {
        for dep in deps {
            assert!(
                pos(dep) < pos(name),
                "{ctx}: {name} completed before its dependency {dep}: {completed:?}"
            );
        }
    }
}

#[test]
fn every_insertion_order_yields_a_valid_parallel_schedule() {
    // 5040 permutations × one pool run each. Two worker threads keeps
    // real contention while the whole sweep stays fast.
    let idx: Vec<usize> = (0..STAGES.len()).collect();
    for (p, order) in permutations(&idx).into_iter().enumerate() {
        let completed = run_dag(&order, 2, p as u64);
        assert_valid_schedule(&completed, &format!("permutation {p} ({order:?})"));
    }
}

#[test]
fn sequential_execution_is_identical_across_jitter_seeds() {
    // threads == 1 promises deterministic topological order: the
    // completion log must be byte-identical regardless of timing.
    let idx: Vec<usize> = (0..STAGES.len()).collect();
    let reference = run_dag(&idx, 1, 0);
    for seed in 1..16 {
        assert_eq!(run_dag(&idx, 1, seed), reference, "seed {seed}");
    }
}

#[test]
fn jittered_interleavings_respect_dependencies_at_higher_thread_counts() {
    let idx: Vec<usize> = (0..STAGES.len()).collect();
    // A deliberately adversarial insertion order: leaves first.
    let reversed: Vec<usize> = idx.iter().rev().copied().collect();
    for threads in [2, 4] {
        for seed in 0..32u64 {
            for order in [&idx, &reversed] {
                let completed = run_dag(order, threads, seed);
                assert_valid_schedule(
                    &completed,
                    &format!("threads={threads} seed={seed} order={order:?}"),
                );
            }
        }
    }
}

#[test]
fn slot_handoffs_survive_every_permutation_of_a_linear_chain() {
    // a -> b -> c via take-once slots: any scheduling bug that runs a
    // consumer early or twice shows up as a poisoned `take()` here.
    let idx = [0usize, 1, 2];
    for (p, order) in permutations(&idx).into_iter().enumerate() {
        let a_out: Slot<u32> = Slot::new();
        let b_out: Slot<u32> = Slot::new();
        let c_out: Slot<u32> = Slot::new();
        let mut plan = Plan::new();
        for &i in &order {
            match i {
                0 => plan.stage("a", &[], || a_out.put(20)),
                1 => plan.stage("b", &["a"], || b_out.put(a_out.take().unwrap() + 1)),
                _ => plan.stage("c", &["b"], || c_out.put(b_out.take().unwrap() * 2)),
            };
        }
        plan.run(2).expect("valid plan");
        assert_eq!(c_out.take(), Some(42), "permutation {p}: {order:?}");
        assert_eq!(a_out.take(), None, "a's output was consumed");
        assert_eq!(b_out.take(), None, "b's output was consumed");
    }
}

#[test]
fn panic_mid_dag_skips_transitive_dependents_under_every_order() {
    // "patterns" panics: both pattern-prestige leaves must be skipped,
    // the panic must reach the caller, and unrelated branches may or
    // may not have run — but never the dependents.
    let idx: Vec<usize> = (0..STAGES.len()).collect();
    for (p, order) in permutations(&idx).into_iter().enumerate().step_by(97) {
        let ran = Mutex::new(Vec::<&'static str>::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut plan = Plan::new();
            for &i in &order {
                let (name, deps) = STAGES[i];
                if name == "patterns" {
                    plan.stage(name, deps, || panic!("mining failed"));
                } else {
                    plan.stage(name, deps, || ran.lock().unwrap().push(name));
                }
            }
            plan.run(2).expect("valid plan");
        }));
        assert!(result.is_err(), "permutation {p}: panic must propagate");
        let ran = ran.into_inner().unwrap();
        for skipped in ["pattern_citation", "pattern_cocitation"] {
            assert!(
                !ran.contains(&skipped),
                "permutation {p}: dependent {skipped} ran after its dependency panicked: {ran:?}"
            );
        }
    }
}

#[test]
fn stage_run_counts_are_exact_under_contention() {
    // Many more worker threads than ready stages: claiming must still
    // hand each stage to exactly one worker.
    let count = AtomicUsize::new(0);
    let mut plan = Plan::new();
    for (name, deps) in STAGES {
        plan.stage(name, deps, || {
            count.fetch_add(1, Ordering::SeqCst);
        });
    }
    plan.run(16).expect("valid plan");
    assert_eq!(count.load(Ordering::SeqCst), STAGES.len());
}
