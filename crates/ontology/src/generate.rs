//! Synthetic GO-like ontology generation.
//!
//! The substitute for the real Gene Ontology (see DESIGN.md): a rooted
//! multi-namespace is-a DAG with configurable size, depth, branching,
//! and multi-parent rate, and GO-style compositional term names from
//! [`crate::namegen`]. Generation is fully deterministic given the seed.

use crate::dag::{Ontology, Term, TermId};
use crate::namegen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Configuration for [`generate_ontology`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total number of terms to generate (across all namespaces).
    pub n_terms: usize,
    /// Number of namespaces (GO has 3). Each gets its own root.
    pub n_namespaces: usize,
    /// Maximum term level (root = 1), i.e. the hierarchy depth.
    pub max_depth: u32,
    /// Mean number of children per non-leaf term at level 2; branching
    /// shrinks geometrically with depth, as in GO.
    pub mean_children: f64,
    /// Probability that a term receives a second parent (GO is a DAG,
    /// not a tree).
    pub multi_parent_prob: f64,
    /// RNG seed; identical configs generate identical ontologies.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_terms: 1200,
            n_namespaces: 3,
            max_depth: 9,
            mean_children: 4.0,
            multi_parent_prob: 0.08,
            seed: 42,
        }
    }
}

/// Generate a synthetic ontology per `config`.
///
/// # Panics
/// Panics if `n_namespaces == 0` or `n_terms < n_namespaces`.
pub fn generate_ontology(config: &GeneratorConfig) -> Ontology {
    let _span = obs::span("ontology.generate");
    obs::gauge("ontology.generate.terms", config.n_terms as f64);
    assert!(config.n_namespaces > 0, "need at least one namespace");
    assert!(
        config.n_terms >= config.n_namespaces,
        "need at least one term per namespace"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut terms: Vec<Term> = Vec::with_capacity(config.n_terms);
    let mut levels: Vec<u32> = Vec::with_capacity(config.n_terms);
    let mut used_names: HashSet<String> = HashSet::new();
    // Terms by level, per namespace, for multi-parent sampling.
    let mut by_level_ns: Vec<Vec<Vec<TermId>>> =
        vec![vec![Vec::new(); (config.max_depth + 1) as usize]; config.n_namespaces];

    let namespace_name = |ns: usize| format!("namespace_{ns}");

    // Roots.
    let mut frontier: VecDeque<(TermId, usize)> = VecDeque::new(); // (term, namespace)
    #[allow(clippy::needless_range_loop)] // ns is a namespace id, not just an index
    for ns in 0..config.n_namespaces {
        let id = TermId(terms.len() as u32);
        let name = namegen::root_name(ns);
        used_names.insert(name.clone());
        terms.push(Term {
            accession: format!("SGO:{:07}", terms.len()),
            name,
            namespace: namespace_name(ns),
            parents: vec![],
        });
        levels.push(1);
        by_level_ns[ns][1].push(id);
        frontier.push_back((id, ns));
    }

    // Breadth-first expansion until the term budget is spent.
    let mut reseed_cursor = 0usize;
    while terms.len() < config.n_terms {
        let Some((parent, ns)) = frontier.pop_front() else {
            // Frontier exhausted before the budget: re-seed from
            // existing non-max-depth terms (round-robin) so the target
            // size is always reached.
            let n = terms.len();
            let mut found = false;
            for _ in 0..n {
                let i = reseed_cursor % n;
                reseed_cursor += 1;
                if levels[i] < config.max_depth {
                    let ns = terms[i]
                        .namespace
                        .rsplit('_')
                        .next()
                        .and_then(|x| x.parse::<usize>().ok())
                        .unwrap_or(0);
                    frontier.push_back((TermId(i as u32), ns));
                    found = true;
                    break;
                }
            }
            if !found {
                break; // every term is at max depth; give up
            }
            continue;
        };
        let parent_level = levels[parent.index()];
        if parent_level >= config.max_depth {
            continue;
        }
        // Branching decays with depth: GO gets narrower as it deepens.
        let decay = 0.82f64.powi(parent_level.saturating_sub(1) as i32);
        let mean = (config.mean_children * decay).max(0.4);
        let n_children = sample_poisson_like(&mut rng, mean).max(1);
        for _ in 0..n_children {
            if terms.len() >= config.n_terms {
                break;
            }
            let child_level = parent_level + 1;
            let name = unique_child_name(
                &mut rng,
                &terms[parent.index()].name.clone(),
                child_level,
                &mut used_names,
            );
            let mut parents = vec![parent];
            // Occasionally add a second parent from the same level pool
            // (created earlier, so the graph stays acyclic).
            if rng.gen_bool(config.multi_parent_prob) {
                let pool = &by_level_ns[ns][parent_level as usize];
                if pool.len() > 1 {
                    let extra = pool[rng.gen_range(0..pool.len())];
                    if extra != parent {
                        parents.push(extra);
                    }
                }
            }
            let id = TermId(terms.len() as u32);
            terms.push(Term {
                accession: format!("SGO:{:07}", terms.len()),
                name,
                namespace: namespace_name(ns),
                parents,
            });
            levels.push(child_level);
            by_level_ns[ns][child_level as usize].push(id);
            frontier.push_back((id, ns));
        }
    }

    Ontology::new(terms).expect("generator output is a valid DAG by construction")
}

fn unique_child_name<R: Rng>(
    rng: &mut R,
    parent_name: &str,
    level: u32,
    used: &mut HashSet<String>,
) -> String {
    for _attempt in 0..24 {
        let name = namegen::child_name(rng, parent_name, level);
        if used.insert(name.clone()) {
            return name;
        }
    }
    // Extremely unlikely fallback: disambiguate with a type suffix.
    for suffix in ["type i", "type ii", "type iii", "type iv", "type v"] {
        let name = format!("{parent_name} {suffix}");
        if used.insert(name.clone()) {
            return name;
        }
    }
    let name = format!("{parent_name} variant {}", used.len());
    used.insert(name.clone());
    name
}

/// Sample a small non-negative count with the given mean (geometric-ish;
/// avoids pulling in a distributions crate for one knob).
fn sample_poisson_like<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let mut n = 0usize;
    let p = mean / (1.0 + mean); // geometric with matching mean
    while n < 64 && rng.gen_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GeneratorConfig {
        GeneratorConfig {
            n_terms: 300,
            n_namespaces: 3,
            max_depth: 8,
            mean_children: 4.0,
            multi_parent_prob: 0.1,
            seed: 11,
        }
    }

    #[test]
    fn generates_requested_size() {
        let o = generate_ontology(&small());
        assert_eq!(o.len(), 300);
        assert_eq!(o.roots().len(), 3);
    }

    #[test]
    fn is_deterministic() {
        let a = generate_ontology(&small());
        let b = generate_ontology(&small());
        for id in a.term_ids() {
            assert_eq!(a.term(id), b.term(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_ontology(&small());
        let mut cfg = small();
        cfg.seed = 999;
        let b = generate_ontology(&cfg);
        let same = a
            .term_ids()
            .filter(|&id| a.term(id).name == b.term(id).name)
            .count();
        assert!(same < a.len(), "seeds must change names");
    }

    #[test]
    fn depth_respects_max() {
        let o = generate_ontology(&small());
        assert!(o.max_level() <= 8);
        assert!(o.max_level() >= 4, "should get reasonably deep");
    }

    #[test]
    fn names_are_unique_and_compositional() {
        let o = generate_ontology(&small());
        let mut names = HashSet::new();
        for id in o.term_ids() {
            assert!(names.insert(o.term(id).name.clone()), "dup name");
            // Child names contain each parent's content words... checked
            // against the primary (first) parent.
            if let Some(&p) = o.term(id).parents.first() {
                let pname = &o.term(p).name;
                for w in pname.split_whitespace().filter(|w| w.len() > 3) {
                    assert!(
                        o.term(id).name.contains(w),
                        "child {:?} missing parent word {w:?} (parent {:?})",
                        o.term(id).name,
                        pname
                    );
                }
            }
        }
    }

    #[test]
    fn multi_parent_terms_exist() {
        let o = generate_ontology(&GeneratorConfig {
            n_terms: 600,
            multi_parent_prob: 0.3,
            ..small()
        });
        let multi = o.term_ids().filter(|&t| o.parents(t).len() > 1).count();
        assert!(multi > 0, "expected some multi-parent terms");
    }

    #[test]
    fn namespaces_partition_terms() {
        let o = generate_ontology(&small());
        for id in o.term_ids() {
            for &p in o.parents(id) {
                assert_eq!(
                    o.term(id).namespace,
                    o.term(p).namespace,
                    "is-a edges stay within a namespace"
                );
            }
        }
    }

    #[test]
    fn tiny_config_works() {
        let o = generate_ontology(&GeneratorConfig {
            n_terms: 3,
            n_namespaces: 3,
            ..small()
        });
        assert_eq!(o.len(), 3);
        assert_eq!(o.max_level(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one term per namespace")]
    fn undersized_config_panics() {
        generate_ontology(&GeneratorConfig {
            n_terms: 2,
            n_namespaces: 3,
            ..small()
        });
    }

    #[test]
    fn branching_decays_with_depth() {
        let o = generate_ontology(&GeneratorConfig {
            n_terms: 2000,
            seed: 5,
            ..small()
        });
        let avg_children_at = |lvl: u32| {
            let terms = o.terms_at_level(lvl);
            if terms.is_empty() {
                return 0.0;
            }
            terms.iter().map(|&t| o.children(t).len()).sum::<usize>() as f64 / terms.len() as f64
        };
        let shallow = avg_children_at(2);
        let deep = avg_children_at(6);
        assert!(
            shallow > deep,
            "branching should decay: level2 {shallow:.2} vs level6 {deep:.2}"
        );
    }
}
