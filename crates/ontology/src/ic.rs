//! Information content and the paper's RateOfDecay.
//!
//! Paper §4: a context term's informativeness is approximated through
//! its information content `I(C) = log(1 / p(C))` (Resnik, ref \[13\]),
//! where `p(C) = (# descendants of C) / (# terms in the ontology)`.
//!
//! When the pattern-based context paper set assigns an *ancestor's*
//! papers to an empty descendant context, the scores are decayed by
//! `RateOfDecay(Cancs, Cdesc) = I(Cancs) / I(Cdesc)` — an ancestor is
//! more general (lower IC), so the ratio is ≤ 1 and shrinks the scores.
//!
//! One refinement over the paper's formula: a leaf has 0 descendants,
//! making `p = 0` and `I` infinite. We count the term itself along with
//! its descendants (`p(C) = (1 + #desc) / N`), which keeps IC finite and
//! preserves the ordering the paper relies on (deeper ⇒ fewer
//! descendants ⇒ higher IC). DESIGN.md records this substitution.

use crate::dag::{Ontology, TermId};
use std::collections::HashSet;

/// Information content of `term`: `ln(N / (1 + #descendants))`.
///
/// Roots of a single-rooted ontology get IC ≈ 0; leaves get the maximal
/// IC `ln(N)`. Returns 0.0 for an empty ontology.
pub fn information_content(ontology: &Ontology, term: TermId) -> f64 {
    let n = ontology.len();
    if n == 0 {
        return 0.0;
    }
    let desc = ontology.descendants(term).len();
    ((n as f64) / (1.0 + desc as f64)).ln().max(0.0)
}

/// Information content for every term, computed in one pass.
pub fn information_content_all(ontology: &Ontology) -> Vec<f64> {
    let n = ontology.len() as f64;
    ontology
        .descendant_counts()
        .into_iter()
        .map(|d| (n / (1.0 + d as f64)).ln().max(0.0))
        .collect()
}

/// The paper's score decay when `descendant` inherits papers from
/// `ancestor`: `I(ancestor) / I(descendant)`, clamped to [0, 1].
///
/// If the descendant's IC is 0 (degenerate single-term ontology), the
/// decay is defined as 1 (no information to lose).
pub fn rate_of_decay(ontology: &Ontology, ancestor: TermId, descendant: TermId) -> f64 {
    let ic_a = information_content(ontology, ancestor);
    let ic_d = information_content(ontology, descendant);
    if ic_d <= 0.0 {
        return 1.0;
    }
    (ic_a / ic_d).clamp(0.0, 1.0)
}

/// Resnik semantic similarity between two terms (the paper's ref
/// \[13\]): the information content of their most informative common
/// ancestor (terms count as their own ancestors). 0.0 when the terms
/// share no ancestor (different namespaces).
pub fn resnik_similarity(ontology: &Ontology, a: TermId, b: TermId) -> f64 {
    let mut anc_a: HashSet<TermId> = ontology.ancestors(a).into_iter().collect();
    anc_a.insert(a);
    let mut anc_b: HashSet<TermId> = ontology.ancestors(b).into_iter().collect();
    anc_b.insert(b);
    anc_a
        .intersection(&anc_b)
        .map(|&t| information_content(ontology, t))
        .fold(0.0, f64::max)
}

/// The most informative common ancestor itself (ties broken by lowest
/// term id), if any.
pub fn most_informative_common_ancestor(
    ontology: &Ontology,
    a: TermId,
    b: TermId,
) -> Option<TermId> {
    let mut anc_a: HashSet<TermId> = ontology.ancestors(a).into_iter().collect();
    anc_a.insert(a);
    let mut anc_b: HashSet<TermId> = ontology.ancestors(b).into_iter().collect();
    anc_b.insert(b);
    let mut common: Vec<TermId> = anc_a.intersection(&anc_b).copied().collect();
    common.sort_unstable();
    common
        .into_iter()
        .map(|t| (t, information_content(ontology, t)))
        .max_by(|(ta, ia), (tb, ib)| ia.total_cmp(ib).then(tb.cmp(ta)))
        .map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Ontology, Term};

    fn chain(n: u32) -> Ontology {
        // 0 <- 1 <- 2 <- ... <- n-1
        let terms = (0..n)
            .map(|i| Term {
                accession: format!("C:{i}"),
                name: format!("term {i}"),
                namespace: "t".into(),
                parents: if i == 0 { vec![] } else { vec![TermId(i - 1)] },
            })
            .collect();
        Ontology::new(terms).unwrap()
    }

    #[test]
    fn deeper_terms_have_higher_ic() {
        let o = chain(5);
        let ics: Vec<f64> = (0..5).map(|i| information_content(&o, TermId(i))).collect();
        for w in ics.windows(2) {
            assert!(w[0] < w[1], "IC must increase with depth: {ics:?}");
        }
    }

    #[test]
    fn root_of_full_tree_has_zero_ic() {
        let o = chain(4);
        // root covers all 4 terms: p = 4/4 = 1 → IC = 0.
        assert_eq!(information_content(&o, TermId(0)), 0.0);
    }

    #[test]
    fn leaf_has_maximal_ic() {
        let o = chain(4);
        let leaf = information_content(&o, TermId(3));
        assert!((leaf - (4f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn ic_all_matches_individual() {
        let o = chain(6);
        let all = information_content_all(&o);
        for i in 0..6 {
            assert!((all[i as usize] - information_content(&o, TermId(i))).abs() < 1e-12);
        }
    }

    #[test]
    fn decay_is_in_unit_interval_and_decreases_with_distance() {
        let o = chain(6);
        let near = rate_of_decay(&o, TermId(4), TermId(5));
        let far = rate_of_decay(&o, TermId(1), TermId(5));
        assert!(near > far, "nearer ancestor decays less: {near} vs {far}");
        assert!((0.0..=1.0).contains(&near));
        assert!((0.0..=1.0).contains(&far));
    }

    #[test]
    fn decay_from_root_is_zero_for_full_tree() {
        let o = chain(4);
        assert_eq!(rate_of_decay(&o, TermId(0), TermId(3)), 0.0);
    }

    #[test]
    fn resnik_self_similarity_is_own_ic() {
        let o = chain(5);
        for i in 0..5 {
            let t = TermId(i);
            assert!((resnik_similarity(&o, t, t) - information_content(&o, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn resnik_of_chain_terms_is_ancestor_ic() {
        let o = chain(5);
        // Common ancestor of 2 and 4 on a chain is 2 itself.
        let sim = resnik_similarity(&o, TermId(2), TermId(4));
        assert!((sim - information_content(&o, TermId(2))).abs() < 1e-12);
        assert_eq!(
            most_informative_common_ancestor(&o, TermId(2), TermId(4)),
            Some(TermId(2))
        );
    }

    #[test]
    fn resnik_monotone_in_relatedness() {
        let o = chain(6);
        // Deeper shared prefix ⇒ higher similarity.
        let near = resnik_similarity(&o, TermId(4), TermId(5));
        let far = resnik_similarity(&o, TermId(1), TermId(5));
        assert!(near > far);
    }

    #[test]
    fn resnik_across_namespaces_is_zero() {
        // Two disjoint roots.
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.to_string(),
            name: acc.to_string(),
            namespace: "t".into(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        let o = Ontology::new(vec![t("a", vec![]), t("b", vec![])]).unwrap();
        assert_eq!(resnik_similarity(&o, TermId(0), TermId(1)), 0.0);
        assert_eq!(
            most_informative_common_ancestor(&o, TermId(0), TermId(1)),
            None
        );
    }

    #[test]
    fn degenerate_single_term() {
        let o = chain(1);
        assert_eq!(information_content(&o, TermId(0)), 0.0);
        assert_eq!(rate_of_decay(&o, TermId(0), TermId(0)), 1.0);
    }
}
