//! The ontology term DAG.
//!
//! Terms are related by is-a edges pointing from child (more specific)
//! to parent (more general). Multiple parents are allowed, as in GO.
//! The paper's experiments slice contexts by *level*; following the
//! paper ("Level 1 = root level"), a term's level is 1 + the length of
//! the shortest is-a path to a root.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a term within one [`Ontology`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One ontology term (a *context* in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Term {
    /// Stable accession string, e.g. `GO:0003700`.
    pub accession: String,
    /// Human-readable term name, e.g. `transcription factor activity`.
    pub name: String,
    /// Namespace / sub-ontology, e.g. `molecular_function`.
    pub namespace: String,
    /// Parent terms (is-a edges toward the root).
    pub parents: Vec<TermId>,
}

/// Errors raised while assembling an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A parent reference points outside the term table.
    DanglingParent {
        /// The term holding the bad reference.
        term: usize,
        /// The out-of-range parent id.
        parent: u32,
    },
    /// The is-a relation has a cycle (ontologies must be DAGs).
    CycleDetected,
    /// Two terms share an accession string.
    DuplicateAccession(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DanglingParent { term, parent } => {
                write!(f, "term #{term} references nonexistent parent #{parent}")
            }
            Self::CycleDetected => write!(f, "is-a relation contains a cycle"),
            Self::DuplicateAccession(a) => write!(f, "duplicate accession {a}"),
        }
    }
}

impl std::error::Error for OntologyError {}

/// An immutable, validated ontology DAG with precomputed levels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    terms: Vec<Term>,
    children: Vec<Vec<TermId>>,
    roots: Vec<TermId>,
    /// 1-based level: roots are level 1 (paper convention).
    levels: Vec<u32>,
    /// Topological order, parents before children.
    topo: Vec<TermId>,
}

impl Ontology {
    /// Validate and index a term table.
    pub fn new(terms: Vec<Term>) -> Result<Self, OntologyError> {
        let n = terms.len();
        // Accession uniqueness.
        {
            let mut seen = std::collections::HashSet::with_capacity(n);
            for t in &terms {
                if !seen.insert(t.accession.as_str()) {
                    return Err(OntologyError::DuplicateAccession(t.accession.clone()));
                }
            }
        }
        let mut children: Vec<Vec<TermId>> = vec![Vec::new(); n];
        let mut indegree = vec![0u32; n]; // number of parents
        for (i, t) in terms.iter().enumerate() {
            for &p in &t.parents {
                if p.index() >= n {
                    return Err(OntologyError::DanglingParent {
                        term: i,
                        parent: p.0,
                    });
                }
                children[p.index()].push(TermId(i as u32));
                indegree[i] += 1;
            }
        }
        let roots: Vec<TermId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| TermId(i as u32))
            .collect();

        // Kahn's algorithm from roots; also computes shortest-path levels.
        let mut levels = vec![0u32; n];
        let mut remaining = indegree.clone();
        let mut queue: VecDeque<TermId> = roots.iter().copied().collect();
        for &r in &roots {
            levels[r.index()] = 1;
        }
        let mut topo = Vec::with_capacity(n);
        // BFS for levels first (shortest path from any root).
        {
            let mut dist = vec![u32::MAX; n];
            let mut bfs: VecDeque<TermId> = roots.iter().copied().collect();
            for &r in &roots {
                dist[r.index()] = 1;
            }
            while let Some(t) = bfs.pop_front() {
                let d = dist[t.index()];
                for &c in &children[t.index()] {
                    if dist[c.index()] == u32::MAX {
                        dist[c.index()] = d + 1;
                        bfs.push_back(c);
                    }
                }
            }
            for i in 0..n {
                // Unreachable terms (only possible with cycles) keep 0 and
                // are caught by the topo check below.
                levels[i] = if dist[i] == u32::MAX { 0 } else { dist[i] };
            }
        }
        while let Some(t) = queue.pop_front() {
            topo.push(t);
            for &c in &children[t.index()] {
                remaining[c.index()] -= 1;
                if remaining[c.index()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if topo.len() != n {
            return Err(OntologyError::CycleDetected);
        }
        Ok(Self {
            terms,
            children,
            roots,
            levels,
            topo,
        })
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the ontology has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term record for `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// All term ids in id order.
    pub fn term_ids(&self) -> impl Iterator<Item = TermId> + '_ {
        (0..self.terms.len() as u32).map(TermId)
    }

    /// Look up a term by accession (linear scan; build a map for bulk use).
    pub fn find_by_accession(&self, accession: &str) -> Option<TermId> {
        self.terms
            .iter()
            .position(|t| t.accession == accession)
            .map(|i| TermId(i as u32))
    }

    /// Root terms (no parents).
    pub fn roots(&self) -> &[TermId] {
        &self.roots
    }

    /// Direct parents of `id`.
    pub fn parents(&self, id: TermId) -> &[TermId] {
        &self.terms[id.index()].parents
    }

    /// Direct children of `id`.
    pub fn children(&self, id: TermId) -> &[TermId] {
        &self.children[id.index()]
    }

    /// 1-based level (root = 1, paper convention); shortest distance when
    /// a term has multiple paths to a root.
    pub fn level(&self, id: TermId) -> u32 {
        self.levels[id.index()]
    }

    /// Maximum level present in the ontology.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Topological order (every parent precedes its children).
    pub fn topological_order(&self) -> &[TermId] {
        &self.topo
    }

    /// All strict descendants of `id` (excluding `id` itself).
    pub fn descendants(&self, id: TermId) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack = vec![id];
        let mut out = Vec::new();
        seen[id.index()] = true;
        while let Some(t) = stack.pop() {
            for &c in self.children(t) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out
    }

    /// All strict ancestors of `id` (excluding `id` itself).
    pub fn ancestors(&self, id: TermId) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack = vec![id];
        let mut out = Vec::new();
        seen[id.index()] = true;
        while let Some(t) = stack.pop() {
            for &p in self.parents(t) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out
    }

    /// Is `descendant` a strict descendant of `ancestor`?
    pub fn is_descendant(&self, descendant: TermId, ancestor: TermId) -> bool {
        if descendant == ancestor {
            return false;
        }
        let mut seen = vec![false; self.terms.len()];
        let mut stack = vec![descendant];
        seen[descendant.index()] = true;
        while let Some(t) = stack.pop() {
            for &p in self.parents(t) {
                if p == ancestor {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Number of strict descendants of every term, computed in one pass
    /// (reverse-topological bitset union would be exact but quadratic in
    /// memory; this uses per-term DFS counts, fine at GO scale).
    pub fn descendant_counts(&self) -> Vec<u32> {
        (0..self.terms.len())
            .map(|i| self.descendants(TermId(i as u32)).len() as u32)
            .collect()
    }

    /// Terms at exactly `level`.
    pub fn terms_at_level(&self, level: u32) -> Vec<TermId> {
        self.term_ids()
            .filter(|&t| self.level(t) == level)
            .collect()
    }

    /// The closest strict ancestor according to level (deepest ancestor);
    /// ties broken by smallest id. `None` for roots. Used by the
    /// pattern-based context paper set's empty-context fallback (§4).
    pub fn closest_ancestor(&self, id: TermId) -> Option<TermId> {
        self.ancestors(id)
            .into_iter()
            .max_by(|a, b| self.level(*a).cmp(&self.level(*b)).then(b.0.cmp(&a.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small diamond:
    ///        0 (root)
    ///       / \
    ///      1   2
    ///       \ / \
    ///        3   4
    ///        |
    ///        5
    pub(crate) fn diamond() -> Ontology {
        let t = |acc: &str, name: &str, parents: Vec<u32>| Term {
            accession: acc.to_string(),
            name: name.to_string(),
            namespace: "test".to_string(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        Ontology::new(vec![
            t("GO:0", "root", vec![]),
            t("GO:1", "left", vec![0]),
            t("GO:2", "right", vec![0]),
            t("GO:3", "join", vec![1, 2]),
            t("GO:4", "leaf4", vec![2]),
            t("GO:5", "leaf5", vec![3]),
        ])
        .unwrap()
    }

    #[test]
    fn levels_follow_paper_convention() {
        let o = diamond();
        assert_eq!(o.level(TermId(0)), 1); // root = level 1
        assert_eq!(o.level(TermId(1)), 2);
        assert_eq!(o.level(TermId(2)), 2);
        assert_eq!(o.level(TermId(3)), 3);
        assert_eq!(o.level(TermId(5)), 4);
        assert_eq!(o.max_level(), 4);
    }

    #[test]
    fn roots_and_children() {
        let o = diamond();
        assert_eq!(o.roots(), &[TermId(0)]);
        assert_eq!(o.children(TermId(2)), &[TermId(3), TermId(4)]);
        assert_eq!(o.parents(TermId(3)), &[TermId(1), TermId(2)]);
    }

    #[test]
    fn descendants_and_ancestors() {
        let o = diamond();
        let mut d = o.descendants(TermId(2));
        d.sort();
        assert_eq!(d, vec![TermId(3), TermId(4), TermId(5)]);
        let mut a = o.ancestors(TermId(5));
        a.sort();
        assert_eq!(a, vec![TermId(0), TermId(1), TermId(2), TermId(3)]);
        assert!(o.descendants(TermId(5)).is_empty());
    }

    #[test]
    fn is_descendant_queries() {
        let o = diamond();
        assert!(o.is_descendant(TermId(5), TermId(0)));
        assert!(o.is_descendant(TermId(3), TermId(2)));
        assert!(!o.is_descendant(TermId(2), TermId(3)));
        assert!(!o.is_descendant(TermId(4), TermId(1)));
        assert!(!o.is_descendant(TermId(3), TermId(3)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let o = diamond();
        let pos: std::collections::HashMap<TermId, usize> = o
            .topological_order()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        for t in o.term_ids() {
            for &p in o.parents(t) {
                assert!(pos[&p] < pos[&t], "{p} must precede {t}");
            }
        }
    }

    #[test]
    fn closest_ancestor_prefers_deepest() {
        let o = diamond();
        assert_eq!(o.closest_ancestor(TermId(5)), Some(TermId(3)));
        assert_eq!(o.closest_ancestor(TermId(0)), None);
        // Term 3 has parents at level 2 both; tie → smaller id.
        assert_eq!(o.closest_ancestor(TermId(3)), Some(TermId(1)));
    }

    #[test]
    fn cycle_is_rejected() {
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.to_string(),
            name: acc.to_string(),
            namespace: "test".to_string(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        let err = Ontology::new(vec![t("a", vec![1]), t("b", vec![0])]).unwrap_err();
        assert_eq!(err, OntologyError::CycleDetected);
    }

    #[test]
    fn dangling_parent_is_rejected() {
        let err = Ontology::new(vec![Term {
            accession: "a".into(),
            name: "a".into(),
            namespace: "t".into(),
            parents: vec![TermId(7)],
        }])
        .unwrap_err();
        assert!(matches!(err, OntologyError::DanglingParent { .. }));
    }

    #[test]
    fn duplicate_accession_is_rejected() {
        let t = |acc: &str| Term {
            accession: acc.to_string(),
            name: acc.to_string(),
            namespace: "t".to_string(),
            parents: vec![],
        };
        let err = Ontology::new(vec![t("same"), t("same")]).unwrap_err();
        assert_eq!(err, OntologyError::DuplicateAccession("same".into()));
    }

    #[test]
    fn empty_ontology_is_fine() {
        let o = Ontology::new(vec![]).unwrap();
        assert!(o.is_empty());
        assert_eq!(o.max_level(), 0);
    }

    #[test]
    fn descendant_counts_match_descendants() {
        let o = diamond();
        let counts = o.descendant_counts();
        for t in o.term_ids() {
            assert_eq!(counts[t.index()] as usize, o.descendants(t).len());
        }
    }

    #[test]
    fn find_by_accession_works() {
        let o = diamond();
        assert_eq!(o.find_by_accession("GO:3"), Some(TermId(3)));
        assert_eq!(o.find_by_accession("GO:99"), None);
    }
}
