//! Ontology export utilities: Graphviz DOT rendering and sub-ontology
//! extraction (restricting to one term's descendant closure — handy
//! for working with a single GO branch, which is also how the paper's
//! "genomics area" subset relates to full PubMed).

use crate::dag::{Ontology, Term, TermId};

/// Render the ontology (optionally only terms up to `max_level`) as a
/// Graphviz DOT digraph, edges pointing child → parent (is-a).
pub fn to_dot(ontology: &Ontology, max_level: Option<u32>) -> String {
    let keep = |t: TermId| max_level.is_none_or(|m| ontology.level(t) <= m);
    let mut out = String::from("digraph ontology {\n  rankdir=BT;\n  node [shape=box];\n");
    for t in ontology.term_ids() {
        if !keep(t) {
            continue;
        }
        let term = ontology.term(t);
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{}\"];\n",
            t.0,
            escape(&term.accession),
            escape(&term.name)
        ));
    }
    for t in ontology.term_ids() {
        if !keep(t) {
            continue;
        }
        for &p in ontology.parents(t) {
            if keep(p) {
                out.push_str(&format!("  n{} -> n{};\n", t.0, p.0));
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extract the sub-ontology rooted at `root`: the term itself plus all
/// its descendants, with edges re-indexed. Returns the new ontology and
/// the mapping `new id → old id`. Parents outside the subtree are
/// dropped (the root becomes a root).
pub fn subontology(ontology: &Ontology, root: TermId) -> (Ontology, Vec<TermId>) {
    let mut keep: Vec<TermId> = vec![root];
    keep.extend(ontology.descendants(root));
    keep.sort_unstable();
    let mut old_to_new = vec![u32::MAX; ontology.len()];
    for (new, &old) in keep.iter().enumerate() {
        old_to_new[old.index()] = new as u32;
    }
    let terms: Vec<Term> = keep
        .iter()
        .map(|&old| {
            let t = ontology.term(old);
            Term {
                accession: t.accession.clone(),
                name: t.name.clone(),
                namespace: t.namespace.clone(),
                parents: t
                    .parents
                    .iter()
                    .filter(|p| old_to_new[p.index()] != u32::MAX)
                    .map(|p| TermId(old_to_new[p.index()]))
                    .collect(),
            }
        })
        .collect();
    (
        Ontology::new(terms).expect("subtree of a DAG is a DAG"),
        keep,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Ontology {
        let t = |acc: &str, parents: Vec<u32>| Term {
            accession: acc.to_string(),
            name: format!("name of {acc}"),
            namespace: "test".to_string(),
            parents: parents.into_iter().map(TermId).collect(),
        };
        Ontology::new(vec![
            t("A", vec![]),
            t("B", vec![0]),
            t("C", vec![0]),
            t("D", vec![1, 2]),
            t("E", vec![3]),
        ])
        .unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let o = diamond();
        let dot = to_dot(&o, None);
        assert!(dot.starts_with("digraph"));
        for i in 0..5 {
            assert!(dot.contains(&format!("n{i} [label=")));
        }
        assert!(dot.contains("n3 -> n1;"));
        assert!(dot.contains("n3 -> n2;"));
        assert!(dot.contains("n4 -> n3;"));
    }

    #[test]
    fn dot_respects_max_level() {
        let o = diamond();
        let dot = to_dot(&o, Some(2));
        assert!(dot.contains("n0 [label="));
        assert!(dot.contains("n1 [label="));
        assert!(!dot.contains("n3 [label="), "level-3 term excluded");
        assert!(!dot.contains("n4 ->"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let o = Ontology::new(vec![Term {
            accession: "X".into(),
            name: "a \"quoted\" name".into(),
            namespace: "t".into(),
            parents: vec![],
        }])
        .unwrap();
        let dot = to_dot(&o, None);
        assert!(dot.contains("a \\\"quoted\\\" name"));
    }

    #[test]
    fn subontology_keeps_descendants_only() {
        let o = diamond();
        // Subtree at B: B, D, E.
        let (sub, map) = subontology(&o, TermId(1));
        assert_eq!(sub.len(), 3);
        assert_eq!(map, vec![TermId(1), TermId(3), TermId(4)]);
        // B becomes a root; D keeps only the B-parent (C is outside).
        assert_eq!(sub.roots(), &[TermId(0)]);
        let d_new = TermId(1);
        assert_eq!(sub.parents(d_new), &[TermId(0)]);
        assert_eq!(sub.term(d_new).accession, "D");
        assert_eq!(sub.level(TermId(2)), 3); // E
    }

    #[test]
    fn subontology_of_leaf_is_single_term() {
        let o = diamond();
        let (sub, map) = subontology(&o, TermId(4));
        assert_eq!(sub.len(), 1);
        assert_eq!(map, vec![TermId(4)]);
        assert!(sub.parents(TermId(0)).is_empty());
    }

    #[test]
    fn subontology_of_root_is_whole_namespace() {
        let o = diamond();
        let (sub, _) = subontology(&o, TermId(0));
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.max_level(), o.max_level());
    }
}
