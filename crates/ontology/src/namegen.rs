//! GO-style compositional term-name generation.
//!
//! Gene Ontology term names are compositional: child names typically
//! extend their parent's name with modifiers or objects ("transcription
//! factor activity" → "RNA polymerase II transcription factor activity",
//! "general transcription factor activity", ...). The paper's Fig 5.6
//! discussion depends on exactly this structure: sibling names differ by
//! a freshly chosen modifier (easy to distinguish), child names share
//! most words with the parent (hard to distinguish), and words
//! introduced near the root appear in many descendant names (low
//! selectivity).
//!
//! This module reproduces that structure: a child name is the parent
//! name plus one or two new words, drawn from pools of biomedical
//! modifiers, processes, and objects.

use rand::Rng;

/// Biomedical object nouns, used to specialize a name with "… of X".
pub const OBJECTS: &[&str] = &[
    "dna",
    "rna",
    "mrna",
    "trna",
    "protein",
    "peptide",
    "kinase",
    "phosphatase",
    "polymerase",
    "helicase",
    "ligase",
    "nuclease",
    "protease",
    "receptor",
    "channel",
    "transporter",
    "membrane",
    "ribosome",
    "chromatin",
    "histone",
    "nucleosome",
    "chromosome",
    "telomere",
    "centromere",
    "spindle",
    "microtubule",
    "actin",
    "tubulin",
    "cytoskeleton",
    "mitochondrion",
    "nucleus",
    "nucleolus",
    "cytoplasm",
    "vesicle",
    "endosome",
    "lysosome",
    "peroxisome",
    "golgi",
    "reticulum",
    "proteasome",
    "ubiquitin",
    "calcium",
    "sodium",
    "potassium",
    "zinc",
    "iron",
    "glucose",
    "lipid",
    "sterol",
    "fatty",
    "amino",
    "nucleotide",
    "purine",
    "pyrimidine",
    "serine",
    "threonine",
    "tyrosine",
    "cysteine",
    "glycine",
    "heme",
    "atp",
    "gtp",
    "camp",
    "cytokine",
    "chemokine",
    "hormone",
    "antigen",
    "antibody",
    "collagen",
    "laminin",
];

/// Process / function head nouns.
pub const PROCESSES: &[&str] = &[
    "regulation",
    "activation",
    "inhibition",
    "biosynthesis",
    "catabolism",
    "metabolism",
    "phosphorylation",
    "dephosphorylation",
    "methylation",
    "acetylation",
    "ubiquitination",
    "glycosylation",
    "transport",
    "localization",
    "signaling",
    "repair",
    "replication",
    "transcription",
    "translation",
    "folding",
    "degradation",
    "assembly",
    "disassembly",
    "splicing",
    "binding",
    "secretion",
    "adhesion",
    "migration",
    "differentiation",
    "proliferation",
    "apoptosis",
    "autophagy",
    "recombination",
    "condensation",
    "segregation",
    "elongation",
    "initiation",
    "termination",
    "maturation",
    "processing",
    "modification",
    "recognition",
    "targeting",
    "import",
    "export",
    "fusion",
    "fission",
    "remodeling",
];

/// Modifier words used to specialize child names.
pub const MODIFIERS: &[&str] = &[
    "positive",
    "negative",
    "nuclear",
    "cytoplasmic",
    "mitochondrial",
    "membrane",
    "general",
    "specific",
    "nonspecific",
    "early",
    "late",
    "alpha",
    "beta",
    "gamma",
    "delta",
    "dependent",
    "independent",
    "induced",
    "mediated",
    "coupled",
    "associated",
    "intrinsic",
    "extrinsic",
    "canonical",
    "noncanonical",
    "direct",
    "indirect",
    "primary",
    "secondary",
    "rapid",
    "slow",
    "transient",
    "constitutive",
    "basal",
    "enhanced",
    "selective",
    "cooperative",
    "allosteric",
    "competitive",
    "reversible",
    "irreversible",
    "oxidative",
    "reductive",
    "anaerobic",
    "aerobic",
    "embryonic",
    "somatic",
    "germline",
    "epithelial",
    "neuronal",
];

/// Structural head words that end function-style names.
pub const HEADS: &[&str] = &["activity", "process", "complex", "pathway", "function"];

/// Generate the name of a namespace root.
pub fn root_name(namespace_index: usize) -> String {
    const ROOTS: &[&str] = &[
        "biological process",
        "molecular function",
        "cellular component",
        "metabolic activity",
        "developmental process",
        "signaling pathway",
    ];
    ROOTS
        .get(namespace_index)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("domain {namespace_index} process"))
}

/// Strategy used to derive a child name from its parent's name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildNaming {
    /// `"{modifier} {parent}"` — e.g. "negative regulation of transport".
    PrefixModifier,
    /// `"{parent} of {object}"` (or `via` if the parent already has `of`).
    AppendObject,
    /// `"{object} {parent}"` — e.g. "histone binding activity".
    PrefixObject,
}

/// Derive a child name from `parent_name` using `rng` to pick words.
///
/// The result always contains every content word of the parent name (the
/// GO-like compositionality the experiments rely on).
pub fn child_name<R: Rng>(rng: &mut R, parent_name: &str, level: u32) -> String {
    // Near the root, specialize by object (creates topical branches);
    // deeper, specialize by modifier (creates fine distinctions).
    let strategy = if level <= 2 {
        if rng.gen_bool(0.7) {
            ChildNaming::AppendObject
        } else {
            ChildNaming::PrefixObject
        }
    } else if rng.gen_bool(0.6) {
        ChildNaming::PrefixModifier
    } else if rng.gen_bool(0.5) {
        ChildNaming::PrefixObject
    } else {
        ChildNaming::AppendObject
    };
    apply_strategy(rng, parent_name, strategy)
}

/// Apply a specific naming strategy (exposed for tests).
pub fn apply_strategy<R: Rng>(rng: &mut R, parent_name: &str, strategy: ChildNaming) -> String {
    match strategy {
        ChildNaming::PrefixModifier => {
            let m = MODIFIERS[rng.gen_range(0..MODIFIERS.len())];
            format!("{m} {parent_name}")
        }
        ChildNaming::AppendObject => {
            let o = OBJECTS[rng.gen_range(0..OBJECTS.len())];
            let connector = if parent_name.contains(" of ") {
                "via"
            } else {
                "of"
            };
            format!("{parent_name} {connector} {o}")
        }
        ChildNaming::PrefixObject => {
            let o = OBJECTS[rng.gen_range(0..OBJECTS.len())];
            let p = PROCESSES[rng.gen_range(0..PROCESSES.len())];
            format!("{o} {p} {parent_name}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn child_contains_parent_words() {
        let mut rng = SmallRng::seed_from_u64(7);
        for level in 1..8 {
            for _ in 0..50 {
                let parent = "regulation of transcription";
                let child = child_name(&mut rng, parent, level);
                for w in ["regulation", "transcription"] {
                    assert!(child.contains(w), "{child} must contain {w}");
                }
                assert!(child.len() > parent.len());
            }
        }
    }

    #[test]
    fn strategies_produce_expected_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pm = apply_strategy(&mut rng, "binding", ChildNaming::PrefixModifier);
        assert!(pm.ends_with(" binding"));
        let ao = apply_strategy(&mut rng, "binding", ChildNaming::AppendObject);
        assert!(ao.starts_with("binding of "));
        let ao2 = apply_strategy(&mut rng, "binding of dna", ChildNaming::AppendObject);
        assert!(ao2.contains(" via "), "second object uses via: {ao2}");
    }

    #[test]
    fn root_names_are_distinct() {
        let names: Vec<String> = (0..8).map(root_name).collect();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn word_pools_have_no_duplicates() {
        for pool in [OBJECTS, PROCESSES, MODIFIERS, HEADS] {
            let set: std::collections::HashSet<&&str> = pool.iter().collect();
            assert_eq!(set.len(), pool.len());
        }
    }
}
