//! Hand-rolled parser and writer for the OBO 1.2 flat-file format, the
//! distribution format of the Gene Ontology.
//!
//! Supports the subset the experiments need: `[Term]` stanzas with `id`,
//! `name`, `namespace`, `is_a`, `def`, and `is_obsolete` tags. Obsolete
//! terms are skipped (as GO consumers conventionally do); unknown tags
//! are ignored; trailing comments (`! ...`) are stripped.

use crate::dag::{Ontology, OntologyError, Term, TermId};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing OBO text.
#[derive(Debug)]
pub enum OboError {
    /// A tag line outside any stanza, or a malformed tag line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An `is_a` target accession that no `[Term]` stanza defines.
    UnknownIsA {
        /// The referencing term's accession.
        term: String,
        /// The missing target accession.
        target: String,
    },
    /// The parsed term set fails DAG validation.
    Invalid(OntologyError),
}

impl fmt::Display for OboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed { line, message } => write!(f, "line {line}: {message}"),
            Self::UnknownIsA { term, target } => {
                write!(f, "term {term} is_a unknown accession {target}")
            }
            Self::Invalid(e) => write!(f, "invalid ontology: {e}"),
        }
    }
}

impl std::error::Error for OboError {}

#[derive(Default)]
struct Stanza {
    id: Option<String>,
    name: Option<String>,
    namespace: Option<String>,
    is_a: Vec<String>,
    obsolete: bool,
}

/// Parse OBO text into a validated [`Ontology`].
pub fn parse_obo(text: &str) -> Result<Ontology, OboError> {
    let mut stanzas: Vec<Stanza> = Vec::new();
    let mut current: Option<Stanza> = None;
    let mut in_term_stanza = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(s) = current.take() {
                stanzas.push(s);
            }
            in_term_stanza = line == "[Term]";
            if in_term_stanza {
                current = Some(Stanza::default());
            }
            continue;
        }
        if !in_term_stanza {
            continue; // header or non-Term stanza tag: ignore
        }
        let Some((tag, value)) = line.split_once(':') else {
            return Err(OboError::Malformed {
                line: lineno + 1,
                message: format!("expected `tag: value`, got {line:?}"),
            });
        };
        let value = value.trim();
        let stanza = current.as_mut().expect("in_term_stanza implies current");
        match tag.trim() {
            "id" => stanza.id = Some(value.to_string()),
            "name" => stanza.name = Some(value.to_string()),
            "namespace" => stanza.namespace = Some(value.to_string()),
            "is_a" => {
                // `is_a: GO:0008150 ! biological_process` — comment already
                // stripped; take the accession token.
                let target = value.split_whitespace().next().unwrap_or("");
                if target.is_empty() {
                    return Err(OboError::Malformed {
                        line: lineno + 1,
                        message: "empty is_a target".to_string(),
                    });
                }
                stanza.is_a.push(target.to_string());
            }
            "is_obsolete" => stanza.obsolete = value == "true",
            _ => {} // def, synonym, xref, ... — not needed
        }
    }
    if let Some(s) = current.take() {
        stanzas.push(s);
    }

    // First pass: allocate ids for non-obsolete terms with an accession.
    let mut accession_to_id: HashMap<String, TermId> = HashMap::new();
    let mut kept: Vec<&Stanza> = Vec::new();
    for s in &stanzas {
        if s.obsolete {
            continue;
        }
        let Some(id) = &s.id else { continue };
        if accession_to_id.contains_key(id) {
            return Err(OboError::Invalid(OntologyError::DuplicateAccession(
                id.clone(),
            )));
        }
        accession_to_id.insert(id.clone(), TermId(kept.len() as u32));
        kept.push(s);
    }

    // Second pass: resolve is_a edges. Edges to obsolete/unknown terms
    // referencing *known obsolete* accessions are dropped silently only if
    // the target stanza existed but was obsolete; truly unknown targets
    // are an error.
    let obsolete_accessions: std::collections::HashSet<&str> = stanzas
        .iter()
        .filter(|s| s.obsolete)
        .filter_map(|s| s.id.as_deref())
        .collect();

    let mut terms = Vec::with_capacity(kept.len());
    for s in kept {
        let accession = s.id.clone().expect("kept stanzas have ids");
        let mut parents = Vec::with_capacity(s.is_a.len());
        for target in &s.is_a {
            match accession_to_id.get(target) {
                Some(&p) => parents.push(p),
                None if obsolete_accessions.contains(target.as_str()) => {}
                None => {
                    return Err(OboError::UnknownIsA {
                        term: accession,
                        target: target.clone(),
                    });
                }
            }
        }
        terms.push(Term {
            name: s.name.clone().unwrap_or_else(|| accession.clone()),
            namespace: s.namespace.clone().unwrap_or_else(|| "default".to_string()),
            accession,
            parents,
        });
    }
    Ontology::new(terms).map_err(OboError::Invalid)
}

/// Serialize an ontology to OBO text (round-trippable by [`parse_obo`]).
pub fn write_obo(ontology: &Ontology) -> String {
    let mut out = String::new();
    out.push_str("format-version: 1.2\n");
    for id in ontology.term_ids() {
        let t = ontology.term(id);
        out.push_str("\n[Term]\n");
        out.push_str(&format!("id: {}\n", t.accession));
        out.push_str(&format!("name: {}\n", t.name));
        out.push_str(&format!("namespace: {}\n", t.namespace));
        for &p in &t.parents {
            out.push_str(&format!(
                "is_a: {} ! {}\n",
                ontology.term(p).accession,
                ontology.term(p).name
            ));
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find('!') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
format-version: 1.2
date: 01:01:2007

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0065007
name: biological regulation
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0050789
name: regulation of biological process
namespace: biological_process
is_a: GO:0065007 ! biological regulation

[Term]
id: GO:0000001
name: obsolete mitochondrion inheritance
namespace: biological_process
is_obsolete: true

[Typedef]
id: part_of
name: part of
";

    #[test]
    fn parses_terms_and_edges() {
        let o = parse_obo(SAMPLE).unwrap();
        assert_eq!(o.len(), 3); // obsolete skipped
        let root = o.find_by_accession("GO:0008150").unwrap();
        let reg = o.find_by_accession("GO:0065007").unwrap();
        let regbio = o.find_by_accession("GO:0050789").unwrap();
        assert_eq!(o.parents(reg), &[root]);
        assert_eq!(o.parents(regbio), &[reg]);
        assert_eq!(o.level(regbio), 3);
        assert_eq!(o.term(reg).name, "biological regulation");
    }

    #[test]
    fn obsolete_terms_are_skipped() {
        let o = parse_obo(SAMPLE).unwrap();
        assert_eq!(o.find_by_accession("GO:0000001"), None);
    }

    #[test]
    fn typedef_stanzas_are_ignored() {
        let o = parse_obo(SAMPLE).unwrap();
        assert_eq!(o.find_by_accession("part_of"), None);
    }

    #[test]
    fn is_a_to_obsolete_is_dropped() {
        let text = "\
[Term]
id: A
name: a

[Term]
id: OBS
name: gone
is_obsolete: true

[Term]
id: B
name: b
is_a: A
is_a: OBS
";
        let o = parse_obo(text).unwrap();
        let b = o.find_by_accession("B").unwrap();
        let a = o.find_by_accession("A").unwrap();
        assert_eq!(o.parents(b), &[a]);
    }

    #[test]
    fn unknown_is_a_is_error() {
        let text = "[Term]\nid: A\nname: a\nis_a: NOPE\n";
        assert!(matches!(parse_obo(text), Err(OboError::UnknownIsA { .. })));
    }

    #[test]
    fn duplicate_id_is_error() {
        let text = "[Term]\nid: A\nname: a\n\n[Term]\nid: A\nname: a2\n";
        assert!(matches!(parse_obo(text), Err(OboError::Invalid(_))));
    }

    #[test]
    fn malformed_tag_line_is_error() {
        let text = "[Term]\nid: A\nthis line has no colon at all but words\n";
        // "no colon" — actually `split_once(':')` fails only without ':'
        assert!(matches!(parse_obo(text), Err(OboError::Malformed { .. })));
    }

    #[test]
    fn round_trip_through_writer() {
        let o = parse_obo(SAMPLE).unwrap();
        let text = write_obo(&o);
        let o2 = parse_obo(&text).unwrap();
        assert_eq!(o2.len(), o.len());
        for id in o.term_ids() {
            let t = o.term(id);
            let id2 = o2.find_by_accession(&t.accession).unwrap();
            assert_eq!(o2.term(id2).name, t.name);
            assert_eq!(o2.level(id2), o.level(id));
        }
    }

    #[test]
    fn empty_input_gives_empty_ontology() {
        let o = parse_obo("").unwrap();
        assert!(o.is_empty());
    }

    proptest::proptest! {
        /// Random DAGs round-trip through the OBO writer/parser.
        #[test]
        fn random_ontologies_round_trip(
            n in 1usize..30,
            extra_edges in proptest::collection::vec((1u32..30, 0u32..30), 0..20),
        ) {
            use crate::dag::Term;
            // Build a random tree + extra forward edges (parent id < child id
            // keeps it acyclic).
            let mut terms: Vec<Term> = (0..n as u32)
                .map(|i| Term {
                    accession: format!("T:{i:04}"),
                    name: format!("term number {i}"),
                    namespace: "ns".into(),
                    parents: if i == 0 { vec![] } else { vec![TermId(i / 2)] },
                })
                .collect();
            for (a, b) in extra_edges {
                let (child, parent) = (a.max(b), a.min(b));
                if child != parent && (child as usize) < n {
                    let p = TermId(parent);
                    if !terms[child as usize].parents.contains(&p) {
                        terms[child as usize].parents.push(p);
                    }
                }
            }
            let onto = Ontology::new(terms).expect("acyclic by construction");
            let text = write_obo(&onto);
            let again = parse_obo(&text).expect("round-trip parses");
            proptest::prop_assert_eq!(again.len(), onto.len());
            for t in onto.term_ids() {
                let acc = &onto.term(t).accession;
                let t2 = again.find_by_accession(acc).expect("accession");
                proptest::prop_assert_eq!(&again.term(t2).name, &onto.term(t).name);
                proptest::prop_assert_eq!(again.level(t2), onto.level(t));
            }
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(input in "[\x20-\x7e\n]{0,400}") {
            let _ = parse_obo(&input);
        }
    }

    #[test]
    fn comments_are_stripped() {
        let text = "[Term]\nid: A ! the id\nname: a thing ! comment\n";
        let o = parse_obo(text).unwrap();
        let a = o.find_by_accession("A").unwrap();
        assert_eq!(o.term(a).name, "a thing");
    }
}
