//! Ontology substrate: a Gene-Ontology-like term hierarchy.
//!
//! The context-based search paradigm (Ratprasartporn et al., ICDE 2007)
//! defines *contexts* as terms of a pre-specified ontology — Gene
//! Ontology in the paper's experiments. This crate provides everything
//! the paradigm needs from the ontology:
//!
//! * [`dag`] — the term DAG itself: is-a edges, levels (root = level 1,
//!   as in the paper's figures), ancestor/descendant queries,
//! * [`obo`] — a hand-rolled parser and writer for the OBO flat-file
//!   format GO is distributed in,
//! * [`ic`] — Resnik-style information content `I(C) = log(1/p(C))`
//!   and the paper's `RateOfDecay` used when a descendant context
//!   inherits papers from an ancestor (paper §4),
//! * [`generate`] — a synthetic GO-like ontology generator (the
//!   substitute for the real 20k-term GO; see DESIGN.md), with
//!   GO-style compositional term names from [`namegen`].

pub mod dag;
pub mod export;
pub mod generate;
pub mod ic;
pub mod namegen;
pub mod obo;

pub use dag::{Ontology, OntologyError, Term, TermId};
pub use generate::{generate_ontology, GeneratorConfig};
pub use ic::{information_content, rate_of_decay, resnik_similarity};
