//! Bibliographic coupling and co-citation similarity.
//!
//! The text-based prestige score's citation-similarity component (paper
//! §3.2) is `SimReferences = BibWeight·Sim_bib + (1-BibWeight)·Sim_coc`:
//!
//! * **Bibliographic coupling** (Kessler 1963, paper ref \[15\]): two
//!   papers are similar when they *cite* the same papers.
//! * **Co-citation** (Small 1973, paper ref \[14\]): two papers are
//!   similar when the same papers *cite both*.
//!
//! Both are normalized cosine-style: `|A ∩ B| / sqrt(|A|·|B|)`, giving
//! scores in [0, 1] comparable with the other similarity components.

use crate::graph::CitationGraph;

/// Size of the intersection of two sorted u32 slices.
fn sorted_intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn cosine_overlap(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    sorted_intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Bibliographic-coupling similarity of papers `u` and `v` in [0, 1]:
/// normalized overlap of their reference lists.
pub fn bibliographic_coupling(graph: &CitationGraph, u: u32, v: u32) -> f64 {
    cosine_overlap(graph.references(u), graph.references(v))
}

/// Co-citation similarity of papers `u` and `v` in [0, 1]: normalized
/// overlap of the sets of papers citing them.
pub fn cocitation(graph: &CitationGraph, u: u32, v: u32) -> f64 {
    cosine_overlap(graph.citations(u), graph.citations(v))
}

/// The paper's combined citation similarity:
/// `BibWeight·Sim_bib + (1-BibWeight)·Sim_coc`.
pub fn citation_similarity(graph: &CitationGraph, u: u32, v: u32, bib_weight: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&bib_weight));
    bib_weight * bibliographic_coupling(graph, u, v) + (1.0 - bib_weight) * cocitation(graph, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 and 1 both cite {2, 3}; 4 and 5 both cite 0 and 1.
    fn g() -> CitationGraph {
        CitationGraph::from_edges(
            6,
            &[
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (4, 0),
                (4, 1),
                (5, 0),
                (5, 1),
            ],
        )
    }

    #[test]
    fn identical_reference_lists_couple_fully() {
        assert_eq!(bibliographic_coupling(&g(), 0, 1), 1.0);
    }

    #[test]
    fn no_shared_references_is_zero() {
        assert_eq!(bibliographic_coupling(&g(), 0, 4), 0.0);
    }

    #[test]
    fn cocitation_of_jointly_cited_papers_is_one() {
        // 0 and 1 are both cited by exactly {4, 5}.
        assert_eq!(cocitation(&g(), 0, 1), 1.0);
    }

    #[test]
    fn cocitation_with_uncited_paper_is_zero() {
        assert_eq!(cocitation(&g(), 0, 4), 0.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        // 0 cites {1,2}; 3 cites {1,4}: overlap 1, norm sqrt(4)=2.
        let g = CitationGraph::from_edges(5, &[(0, 1), (0, 2), (3, 1), (3, 4)]);
        assert!((bibliographic_coupling(&g, 0, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn combined_similarity_mixes_components() {
        let graph = g();
        let full_bib = citation_similarity(&graph, 0, 1, 1.0);
        let full_coc = citation_similarity(&graph, 0, 1, 0.0);
        let half = citation_similarity(&graph, 0, 1, 0.5);
        assert_eq!(full_bib, 1.0);
        assert_eq!(full_coc, 1.0);
        assert_eq!(half, 1.0);
        // Asymmetric case: 0 vs 2 (2 cites nothing, cited by 0 and 1).
        let bib = citation_similarity(&graph, 2, 3, 1.0);
        assert_eq!(bib, 0.0); // neither cites anything
        let coc = citation_similarity(&graph, 2, 3, 0.0);
        assert_eq!(coc, 1.0); // both cited by exactly {0,1}
    }

    #[test]
    fn self_similarity_is_one_when_nonempty() {
        let graph = g();
        assert_eq!(bibliographic_coupling(&graph, 0, 0), 1.0);
        assert_eq!(cocitation(&graph, 2, 2), 1.0);
    }

    proptest::proptest! {
        #[test]
        fn similarities_are_symmetric_and_bounded(
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40),
            u in 0u32..15,
            v in 0u32..15,
            w in 0.0f64..1.0,
        ) {
            let g = CitationGraph::from_edges(15, &edges);
            let ab = citation_similarity(&g, u, v, w);
            let ba = citation_similarity(&g, v, u, w);
            proptest::prop_assert!((ab - ba).abs() < 1e-12);
            proptest::prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        }
    }
}
