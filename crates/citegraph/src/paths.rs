//! Bounded-length citation-path neighborhoods.
//!
//! The AC-answer-set construction (paper §2) includes "papers in the
//! citation path of length at most 2 from the initial paper set" —
//! longer paths "usually lose context". Citation paths are followed in
//! both directions (a relevant paper may cite or be cited by a seed).

use crate::graph::CitationGraph;
use std::collections::VecDeque;

/// Nodes within undirected citation distance `max_depth` of `seeds`,
/// with their distances. Seeds themselves are included at distance 0.
pub fn neighborhood(graph: &CitationGraph, seeds: &[u32], max_depth: u32) -> Vec<(u32, u32)> {
    let n = graph.n_nodes() as usize;
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for &s in seeds {
        if (s as usize) < n && dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        out.push((u, d));
        if d == max_depth {
            continue;
        }
        for &v in graph.references(u).iter().chain(graph.citations(u)) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Just the node set within distance `max_depth` of `seeds` (excluding
/// the seeds themselves) — the expansion candidates for the AC set.
pub fn expansion_candidates(graph: &CitationGraph, seeds: &[u32], max_depth: u32) -> Vec<u32> {
    neighborhood(graph, seeds, max_depth)
        .into_iter()
        .filter(|&(_, d)| d > 0)
        .map(|(u, _)| u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0→1→2→3→4 plus 5 citing 0.
    fn chain() -> CitationGraph {
        CitationGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 0)])
    }

    #[test]
    fn depth_limits_reach() {
        let g = chain();
        let nb = neighborhood(&g, &[0], 2);
        let nodes: Vec<u32> = nb.iter().map(|&(u, _)| u).collect();
        // From 0 within 2 hops (undirected): 0,1,2 forward; 5 backward.
        assert_eq!(nodes, vec![0, 1, 2, 5]);
    }

    #[test]
    fn distances_are_bfs_distances() {
        let g = chain();
        let nb = neighborhood(&g, &[0], 3);
        let by: std::collections::HashMap<u32, u32> = nb.into_iter().collect();
        assert_eq!(by[&0], 0);
        assert_eq!(by[&1], 1);
        assert_eq!(by[&2], 2);
        assert_eq!(by[&3], 3);
        assert_eq!(by[&5], 1);
        assert!(!by.contains_key(&4));
    }

    #[test]
    fn candidates_exclude_seeds() {
        let g = chain();
        let c = expansion_candidates(&g, &[0, 1], 1);
        assert_eq!(c, vec![2, 5]);
    }

    #[test]
    fn multiple_seeds_merge() {
        let g = chain();
        let nb = neighborhood(&g, &[0, 4], 1);
        let nodes: Vec<u32> = nb.iter().map(|&(u, _)| u).collect();
        assert_eq!(nodes, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn depth_zero_is_just_seeds() {
        let g = chain();
        let nb = neighborhood(&g, &[2], 0);
        assert_eq!(nb, vec![(2, 0)]);
    }

    #[test]
    fn out_of_range_and_duplicate_seeds_are_ignored() {
        let g = chain();
        let nb = neighborhood(&g, &[0, 0, 99], 0);
        assert_eq!(nb, vec![(0, 0)]);
    }
}
