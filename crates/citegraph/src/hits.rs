//! Kleinberg's HITS (Hyperlink-Induced Topic Search).
//!
//! Paper §3.1 describes HITS alongside PageRank: "a paper's authority
//! score is proportional to the total agglomerative score of hubs that
//! cite the paper; a paper's hub score is proportional to the total
//! agglomerative score of authorities that are cited by the paper", and
//! notes prior experiments found HITS and PageRank highly correlated.
//! We implement it so the ablation bench can check the same correlation
//! on the synthetic corpus.

use crate::graph::CitationGraph;

/// HITS parameters.
#[derive(Debug, Clone)]
pub struct HitsConfig {
    /// Iteration cap.
    pub max_iterations: usize,
    /// L1 convergence tolerance on authority scores.
    pub tolerance: f64,
}

impl Default for HitsConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// HITS output.
#[derive(Debug, Clone)]
pub struct HitsScores {
    /// Authority scores, max-normalized to 1.0.
    pub authorities: Vec<f64>,
    /// Hub scores, max-normalized to 1.0.
    pub hubs: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether convergence was reached within the cap.
    pub converged: bool,
}

/// Run HITS over `graph`.
pub fn hits(graph: &CitationGraph, config: &HitsConfig) -> HitsScores {
    let n = graph.n_nodes() as usize;
    if n == 0 {
        return HitsScores {
            authorities: Vec::new(),
            hubs: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let mut auth = vec![1.0f64; n];
    let mut hub = vec![1.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // auth(v) = Σ_{u cites v} hub(u)
        let mut new_auth = vec![0.0f64; n];
        for v in 0..n as u32 {
            new_auth[v as usize] = graph.citations(v).iter().map(|&u| hub[u as usize]).sum();
        }
        l2_normalize(&mut new_auth);
        // hub(u) = Σ_{u cites v} auth(v)
        let mut new_hub = vec![0.0f64; n];
        for u in 0..n as u32 {
            new_hub[u as usize] = graph
                .references(u)
                .iter()
                .map(|&v| new_auth[v as usize])
                .sum();
        }
        l2_normalize(&mut new_hub);

        let delta: f64 = auth
            .iter()
            .zip(new_auth.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        auth = new_auth;
        hub = new_hub;
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    max_normalize(&mut auth);
    max_normalize(&mut hub);
    HitsScores {
        authorities: auth,
        hubs: hub,
        iterations,
        converged,
    }
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

fn max_normalize(v: &mut [f64]) {
    let max = v.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for x in v {
            *x /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cited_paper_is_authority_citing_paper_is_hub() {
        // 1 and 2 cite 0.
        let g = CitationGraph::from_edges(3, &[(1, 0), (2, 0)]);
        let s = hits(&g, &HitsConfig::default());
        assert_eq!(s.authorities[0], 1.0);
        assert!(s.authorities[1] < 1e-9 && s.authorities[2] < 1e-9);
        assert_eq!(s.hubs[1], 1.0);
        assert_eq!(s.hubs[2], 1.0);
        assert!(s.hubs[0] < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = CitationGraph::from_edges(0, &[]);
        let s = hits(&g, &HitsConfig::default());
        assert!(s.authorities.is_empty());
        assert!(s.converged);
    }

    #[test]
    fn edgeless_graph_all_zero() {
        let g = CitationGraph::from_edges(4, &[]);
        let s = hits(&g, &HitsConfig::default());
        assert!(s.authorities.iter().all(|&x| x == 0.0));
        assert!(s.hubs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn better_connected_authority_ranks_higher() {
        // 0 cited by 2,3,4; 1 cited by 2 only.
        let g = CitationGraph::from_edges(5, &[(2, 0), (3, 0), (4, 0), (2, 1)]);
        let s = hits(&g, &HitsConfig::default());
        assert!(s.authorities[0] > s.authorities[1]);
        // Hub 2 cites both authorities: best hub.
        assert_eq!(s.hubs[2], 1.0);
    }

    #[test]
    fn converges_on_bipartite_core() {
        let g = CitationGraph::from_edges(6, &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)]);
        let s = hits(&g, &HitsConfig::default());
        assert!(s.converged);
        assert!(s.iterations < 100);
    }

    proptest::proptest! {
        #[test]
        fn scores_always_in_unit_range(
            n in 1u32..25,
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..60),
        ) {
            let g = CitationGraph::from_edges(n, &edges);
            let s = hits(&g, &HitsConfig::default());
            for &x in s.authorities.iter().chain(s.hubs.iter()) {
                proptest::prop_assert!(x.is_finite() && (0.0..=1.0 + 1e-9).contains(&x));
            }
        }
    }
}
