//! The paper's PageRank variant (§3.1).
//!
//! Iterates `P_{i+1} = d · Mᵀ P_i + E` where `M` is the row-normalized
//! citation matrix (row u spreads u's mass equally over the papers u
//! cites), `d` the probability of following a citation, and `E` the
//! teleport term. The paper offers two teleport options:
//!
//! * `E1 = (1-d)` — a constant added to every paper (mass is *not*
//!   conserved during iteration; we renormalize at the end),
//! * `E2 = ((1-d)/N)·Σ P_i` — teleport proportional to current total
//!   mass (the standard, mass-conserving choice).
//!
//! Papers with no in-context references (dangling nodes) spread their
//! mass uniformly — the paper's "hidden citation link between a paper
//! and all other papers", which guarantees convergence.
//!
//! Scores are finally normalized to a probability distribution
//! (sum = 1). Callers that need a bounded absolute prestige (the
//! citation score function, §3) rescale relative to the uniform score
//! `1/N` — that mapping keeps an isolated paper's prestige *low*
//! instead of inflating whole-context ties to 1.0.

use crate::graph::CitationGraph;

/// Teleport term choice (the paper's E1 / E2 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TeleportMode {
    /// `E1`: constant `(1-d)` per node.
    Constant,
    /// `E2`: `((1-d)/N) · Σ P_i` per node (mass-conserving).
    #[default]
    MassProportional,
}

/// PageRank parameters.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Probability `d` of following a citation (damping factor).
    pub damping: f64,
    /// Teleport option.
    pub teleport: TeleportMode,
    /// Iteration cap.
    pub max_iterations: usize,
    /// L1 convergence tolerance on the (pre-normalization) vector.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            teleport: TeleportMode::MassProportional,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Per-node scores, normalized to sum = 1.0 (a probability
    /// distribution; empty for an empty graph).
    pub scores: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the L1 delta fell below tolerance within the cap.
    pub converged: bool,
    /// L1 delta of the last iteration executed (0.0 when no iteration
    /// ran, i.e. an empty graph).
    pub final_residual: f64,
}

/// Normalize `p` to a probability distribution, record run-level
/// telemetry, and assemble the result. Residuals are recorded in
/// picounits (`residual × 1e12`) so the integer histogram resolves well
/// below the default 1e-9 tolerance.
fn finish(
    mut p: Vec<f64>,
    iterations: usize,
    converged: bool,
    final_residual: f64,
) -> PageRankResult {
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        for x in &mut p {
            *x /= total;
        }
    }
    obs::counter("citegraph.pagerank.runs", 1);
    obs::counter("citegraph.pagerank.iterations", iterations as u64);
    obs::counter("citegraph.pagerank.converged_runs", converged as u64);
    obs::observe_ns("citegraph.pagerank.iterations_per_run", iterations as u64);
    obs::observe_ns(
        "citegraph.pagerank.final_residual_e12",
        (final_residual * 1e12) as u64,
    );
    PageRankResult {
        scores: p,
        iterations,
        converged,
        final_residual,
    }
}

/// Run PageRank with per-edge weights supplied by `edge_weight(citing,
/// cited)`. A citing paper's mass splits across its references in
/// proportion to the edge weights; edges of weight ≤ 0 are treated as
/// absent; papers whose outgoing weights all vanish are dangling.
///
/// This is the machinery behind the paper's §7 future-work variant,
/// where citations from other contexts contribute with a weight
/// depending on how hierarchically related the citing paper's contexts
/// are.
pub fn pagerank_weighted<F>(
    graph: &CitationGraph,
    config: &PageRankConfig,
    edge_weight: F,
) -> PageRankResult
where
    F: Fn(u32, u32) -> f64,
{
    let n = graph.n_nodes() as usize;
    if n == 0 {
        return finish(Vec::new(), 0, true, 0.0);
    }
    assert!(
        (0.0..=1.0).contains(&config.damping),
        "damping must be in [0,1]"
    );
    let d = config.damping;
    let inv_n = 1.0 / n as f64;

    // Precompute weights and per-node totals once.
    let mut weights: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut totals: Vec<f64> = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let ws: Vec<f64> = graph
            .references(u)
            .iter()
            .map(|&v| edge_weight(u, v).max(0.0))
            .collect();
        totals.push(ws.iter().sum());
        weights.push(ws);
    }

    let mut p = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut final_residual = 0.0f64;
    for _ in 0..config.max_iterations {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_mass = 0.0f64;
        for u in 0..n {
            if totals[u] <= 0.0 {
                dangling_mass += p[u];
                continue;
            }
            let scale = d * p[u] / totals[u];
            for (&v, &w) in graph.references(u as u32).iter().zip(&weights[u]) {
                if w > 0.0 {
                    next[v as usize] += scale * w;
                }
            }
        }
        let dangling_share = d * dangling_mass * inv_n;
        let total: f64 = p.iter().sum();
        let teleport = match config.teleport {
            TeleportMode::Constant => 1.0 - d,
            TeleportMode::MassProportional => (1.0 - d) * total * inv_n,
        };
        for x in next.iter_mut() {
            *x += dangling_share + teleport;
        }
        let delta: f64 = p.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut p, &mut next);
        final_residual = delta;
        obs::observe_ns("citegraph.pagerank.residual_e12", (delta * 1e12) as u64);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    finish(p, iterations, converged, final_residual)
}

/// PageRank with a personalization (biased-teleport) vector: teleport
/// and dangling mass are distributed proportionally to `bias` instead
/// of uniformly (Topic-Sensitive-PageRank style, the paper's ref \[17\]).
/// `bias` entries must be non-negative; an all-zero bias falls back to
/// uniform. Always mass-conserving (the E2 semantics).
pub fn pagerank_personalized(
    graph: &CitationGraph,
    config: &PageRankConfig,
    bias: &[f64],
) -> PageRankResult {
    let n = graph.n_nodes() as usize;
    assert_eq!(bias.len(), n, "bias length must match node count");
    if n == 0 {
        return finish(Vec::new(), 0, true, 0.0);
    }
    let d = config.damping;
    let bias_total: f64 = bias.iter().sum();
    let b: Vec<f64> = if bias_total > 0.0 {
        bias.iter().map(|&x| x.max(0.0) / bias_total).collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let mut p = b.clone();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut final_residual = 0.0f64;
    for _ in 0..config.max_iterations {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_mass = 0.0f64;
        for u in 0..n as u32 {
            let refs = graph.references(u);
            if refs.is_empty() {
                dangling_mass += p[u as usize];
            } else {
                let share = d * p[u as usize] / refs.len() as f64;
                for &v in refs {
                    next[v as usize] += share;
                }
            }
        }
        let total: f64 = p.iter().sum();
        let redistribute = d * dangling_mass + (1.0 - d) * total;
        for (x, &bi) in next.iter_mut().zip(&b) {
            *x += redistribute * bi;
        }
        let delta: f64 = p.iter().zip(next.iter()).map(|(a, c)| (a - c).abs()).sum();
        std::mem::swap(&mut p, &mut next);
        final_residual = delta;
        obs::observe_ns("citegraph.pagerank.residual_e12", (delta * 1e12) as u64);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    finish(p, iterations, converged, final_residual)
}

/// Run PageRank over `graph` with `config`.
pub fn pagerank(graph: &CitationGraph, config: &PageRankConfig) -> PageRankResult {
    let n = graph.n_nodes() as usize;
    if n == 0 {
        return finish(Vec::new(), 0, true, 0.0);
    }
    assert!(
        (0.0..=1.0).contains(&config.damping),
        "damping must be in [0,1]"
    );
    let d = config.damping;
    let inv_n = 1.0 / n as f64;
    let mut p = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut final_residual = 0.0f64;

    for _ in 0..config.max_iterations {
        iterations += 1;
        next.iter_mut().for_each(|x| *x = 0.0);

        // d · Mᵀ P: each citing paper u spreads d·p[u]/outdeg(u) to the
        // papers it cites; dangling mass spreads uniformly.
        let mut dangling_mass = 0.0f64;
        for u in 0..n as u32 {
            let refs = graph.references(u);
            if refs.is_empty() {
                dangling_mass += p[u as usize];
            } else {
                let share = d * p[u as usize] / refs.len() as f64;
                for &v in refs {
                    next[v as usize] += share;
                }
            }
        }
        let dangling_share = d * dangling_mass * inv_n;

        let total: f64 = p.iter().sum();
        let teleport = match config.teleport {
            TeleportMode::Constant => 1.0 - d,
            TeleportMode::MassProportional => (1.0 - d) * total * inv_n,
        };
        for x in next.iter_mut() {
            *x += dangling_share + teleport;
        }

        let delta: f64 = p.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut p, &mut next);
        final_residual = delta;
        obs::observe_ns("citegraph.pagerank.residual_e12", (delta * 1e12) as u64);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    finish(p, iterations, converged, final_residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u32, edges: &[(u32, u32)]) -> Vec<f64> {
        let g = CitationGraph::from_edges(n, edges);
        pagerank(&g, &PageRankConfig::default()).scores
    }

    #[test]
    fn heavily_cited_paper_wins() {
        // Papers 1,2,3 all cite 0.
        let s = run(4, &[(1, 0), (2, 0), (3, 0)]);
        assert!(s[0] > s[1] && s[0] > s[2] && s[0] > s[3]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_nodes_get_equal_scores() {
        // 0↔1 mutually cite; by symmetry equal score.
        let s = run(2, &[(0, 1), (1, 0)]);
        assert!((s[0] - s[1]).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_gives_uniform() {
        let s = run(3, &[]);
        // All dangling: uniform probability 1/3 each.
        assert!(s.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn indirect_prestige_propagates() {
        // 2 and 3 cite 1; 1 cites 0. Paper 0's only citation comes from
        // the prestigious 1, so 0 should outrank the leaf citers.
        let s = run(4, &[(2, 1), (3, 1), (1, 0)]);
        assert!(s[1] > s[2], "directly cited paper beats citers");
        assert!(s[0] > s[2], "inherited prestige beats leaves");
    }

    #[test]
    fn converges_and_reports_it() {
        let g = CitationGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r.converged, "cycle graph should converge");
        assert!(r.iterations < 100);
        assert!(
            r.final_residual < PageRankConfig::default().tolerance,
            "converged run reports its sub-tolerance residual, got {}",
            r.final_residual
        );
        // Perfect cycle: all equal.
        for w in r.scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn capped_run_reports_residual_above_tolerance() {
        let g = CitationGraph::from_edges(4, &[(1, 0), (2, 0), (3, 1)]);
        let r = pagerank(
            &g,
            &PageRankConfig {
                max_iterations: 2,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
        assert!(r.final_residual >= PageRankConfig::default().tolerance);
    }

    #[test]
    fn teleport_modes_agree_on_ranking() {
        let edges = [(1, 0), (2, 0), (3, 1), (4, 1), (4, 0), (2, 3)];
        let g = CitationGraph::from_edges(5, &edges);
        let a = pagerank(
            &g,
            &PageRankConfig {
                teleport: TeleportMode::Constant,
                ..Default::default()
            },
        )
        .scores;
        let b = pagerank(
            &g,
            &PageRankConfig {
                teleport: TeleportMode::MassProportional,
                ..Default::default()
            },
        )
        .scores;
        let rank = |s: &[f64]| {
            let mut idx: Vec<usize> = (0..s.len()).collect();
            idx.sort_by(|&i, &j| s[j].partial_cmp(&s[i]).unwrap());
            idx
        };
        assert_eq!(rank(&a), rank(&b), "E1 and E2 should rank alike here");
    }

    #[test]
    fn zero_damping_is_pure_teleport() {
        let g = CitationGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let r = pagerank(
            &g,
            &PageRankConfig {
                damping: 0.0,
                ..Default::default()
            },
        );
        // Without citation-following, everyone is equal.
        let n = r.scores.len() as f64;
        assert!(r.scores.iter().all(|&x| (x - 1.0 / n).abs() < 1e-9));
    }

    #[test]
    fn scores_sum_to_one() {
        let s = run(6, &[(1, 0), (2, 0), (3, 0), (4, 2), (5, 2)]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn sparse_graph_has_many_ties() {
        // The mechanism behind the paper's separability finding: an
        // edgeless (maximally sparse) context graph scores every paper
        // identically.
        let s = run(10, &[]);
        let first = s[0];
        assert!(s.iter().all(|&x| (x - first).abs() < 1e-12));
    }

    #[test]
    fn personalized_with_uniform_bias_matches_plain() {
        let g = CitationGraph::from_edges(5, &[(1, 0), (2, 0), (3, 1), (4, 2)]);
        let cfg = PageRankConfig::default();
        let plain = pagerank(&g, &cfg).scores;
        let pers = pagerank_personalized(&g, &cfg, &[1.0; 5]).scores;
        for (a, b) in plain.iter().zip(&pers) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn personalization_bias_lifts_favored_nodes() {
        // Edgeless graph: scores follow the bias exactly.
        let g = CitationGraph::from_edges(3, &[]);
        let s = pagerank_personalized(&g, &PageRankConfig::default(), &[2.0, 1.0, 1.0]).scores;
        assert!(s[0] > s[1]);
        assert!((s[1] - s[2]).abs() < 1e-9);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bias_falls_back_to_uniform() {
        let g = CitationGraph::from_edges(3, &[(0, 1)]);
        let z = pagerank_personalized(&g, &PageRankConfig::default(), &[0.0; 3]).scores;
        let u = pagerank(&g, &PageRankConfig::default()).scores;
        for (a, b) in z.iter().zip(&u) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_with_unit_weights_matches_plain() {
        let g = CitationGraph::from_edges(6, &[(1, 0), (2, 0), (3, 1), (4, 2), (5, 0), (2, 3)]);
        let cfg = PageRankConfig::default();
        let plain = pagerank(&g, &cfg).scores;
        let weighted = pagerank_weighted(&g, &cfg, |_, _| 1.0).scores;
        for (a, b) in plain.iter().zip(&weighted) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_weight_edges_are_absent() {
        // 1 cites 0 and 2; suppressing the edge to 2 should match the
        // graph without it.
        let g = CitationGraph::from_edges(3, &[(1, 0), (1, 2)]);
        let cfg = PageRankConfig::default();
        let suppressed =
            pagerank_weighted(&g, &cfg, |u, v| if (u, v) == (1, 2) { 0.0 } else { 1.0 }).scores;
        let g2 = CitationGraph::from_edges(3, &[(1, 0)]);
        let reference = pagerank(&g2, &cfg).scores;
        for (a, b) in suppressed.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn heavier_edges_attract_more_mass() {
        // 2 cites both 0 and 1; weight favors 0.
        let g = CitationGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let cfg = PageRankConfig::default();
        let s = pagerank_weighted(&g, &cfg, |_, v| if v == 0 { 3.0 } else { 1.0 }).scores;
        assert!(s[0] > s[1]);
    }

    #[test]
    fn all_zero_weights_degenerate_to_uniform() {
        let g = CitationGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = pagerank_weighted(&g, &PageRankConfig::default(), |_, _| 0.0).scores;
        for &x in &s {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    proptest::proptest! {
        #[test]
        fn scores_always_valid(
            n in 1u32..30,
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
        ) {
            let g = CitationGraph::from_edges(n, &edges);
            for mode in [TeleportMode::Constant, TeleportMode::MassProportional] {
                let r = pagerank(&g, &PageRankConfig { teleport: mode, ..Default::default() });
                proptest::prop_assert_eq!(r.scores.len(), n as usize);
                let total: f64 = r.scores.iter().sum();
                proptest::prop_assert!((total - 1.0).abs() < 1e-9);
                for &s in &r.scores {
                    proptest::prop_assert!(s.is_finite() && (0.0..=1.0 + 1e-9).contains(&s));
                }
            }
        }
    }
}
