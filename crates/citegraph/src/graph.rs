//! Compact directed citation graph in CSR (compressed sparse row) form.
//!
//! Nodes are dense `u32` indices (the caller maps its paper ids onto
//! them). Both out-adjacency (references: who this paper cites) and
//! in-adjacency (citations: who cites this paper) are materialized, as
//! every algorithm in this crate needs one direction or the other hot.

use serde::{Deserialize, Serialize};

/// An immutable citation digraph: edge `u → v` means "u cites v".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CitationGraph {
    n: u32,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_targets: Vec<u32>,
}

impl CitationGraph {
    /// Build from an edge list over `n` nodes. Edges out of range are
    /// rejected; duplicate edges and self-citations are dropped (a paper
    /// citing itself carries no prestige signal).
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut cleaned: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();

        let mut out_offsets = vec![0u32; n as usize + 1];
        for &(u, _) in &cleaned {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<u32> = cleaned.iter().map(|&(_, v)| v).collect();

        // In-adjacency: sort by target.
        let mut by_target = cleaned;
        by_target.sort_unstable_by_key(|&(u, v)| (v, u));
        let mut in_offsets = vec![0u32; n as usize + 1];
        for &(_, v) in &by_target {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            in_offsets[i + 1] += in_offsets[i];
        }
        let in_targets: Vec<u32> = by_target.iter().map(|&(u, _)| u).collect();

        Self {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> u32 {
        self.n
    }

    /// Number of (deduplicated, non-self) edges.
    pub fn n_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Papers that `u` cites (its reference list).
    pub fn references(&self, u: u32) -> &[u32] {
        let (a, b) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        &self.out_targets[a..b]
    }

    /// Papers citing `u`.
    pub fn citations(&self, u: u32) -> &[u32] {
        let (a, b) = (
            self.in_offsets[u as usize] as usize,
            self.in_offsets[u as usize + 1] as usize,
        );
        &self.in_targets[a..b]
    }

    /// Out-degree (reference count).
    pub fn out_degree(&self, u: u32) -> usize {
        self.references(u).len()
    }

    /// In-degree (citation count).
    pub fn in_degree(&self, u: u32) -> usize {
        self.citations(u).len()
    }

    /// Iterate all edges as `(citing, cited)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |u| self.references(u).iter().map(move |&v| (u, v)))
    }

    /// Induced subgraph on `members` (paper §3.1: "only citation
    /// information between papers in the given context is used").
    ///
    /// Returns the subgraph plus the member list in subgraph-node order
    /// (`sub_node i` ↔ `members_sorted[i]`). Duplicate members are
    /// collapsed.
    pub fn induced_subgraph(&self, members: &[u32]) -> (CitationGraph, Vec<u32>) {
        let mut sorted: Vec<u32> = members.iter().copied().filter(|&m| m < self.n).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut dense = vec![u32::MAX; self.n as usize];
        for (i, &m) in sorted.iter().enumerate() {
            dense[m as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for (i, &m) in sorted.iter().enumerate() {
            for &v in self.references(m) {
                let dv = dense[v as usize];
                if dv != u32::MAX {
                    edges.push((i as u32, dv));
                }
            }
        }
        (
            CitationGraph::from_edges(sorted.len() as u32, &edges),
            sorted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 2, 0 → 2, 3 isolated.
    fn tiny() -> CitationGraph {
        CitationGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn adjacency_is_correct() {
        let g = tiny();
        assert_eq!(g.references(0), &[1, 2]);
        assert_eq!(g.references(1), &[2]);
        assert_eq!(g.references(2), &[] as &[u32]);
        assert_eq!(g.citations(2), &[0, 1]);
        assert_eq!(g.citations(0), &[] as &[u32]);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn degrees() {
        let g = tiny();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 0);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = CitationGraph::from_edges(3, &[(0, 0), (0, 1), (0, 1), (2, 1)]);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.references(0), &[1]);
    }

    #[test]
    fn out_of_range_edges_dropped() {
        let g = CitationGraph::from_edges(2, &[(0, 1), (0, 9), (9, 1)]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = tiny();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = tiny();
        // Members {0, 2, 3}: edge 0→2 survives, 0→1→2 path does not.
        let (sub, map) = g.induced_subgraph(&[3, 0, 2]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_edges(), 1);
        assert_eq!(sub.references(0), &[1]); // dense 0=paper0, 1=paper2
    }

    #[test]
    fn induced_subgraph_of_empty_member_set() {
        let g = tiny();
        let (sub, map) = g.induced_subgraph(&[]);
        assert_eq!(sub.n_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn induced_subgraph_dedups_members() {
        let g = tiny();
        let (sub, map) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.n_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CitationGraph::from_edges(0, &[]);
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
    }
}
