//! Citation-graph substrate.
//!
//! The citation-based prestige score function (paper §3.1) runs a
//! PageRank variant on the *within-context* citation subgraph; the
//! text-based function (§3.2) uses bibliographic coupling and
//! co-citation; the AC-answer-set construction (§2) expands along
//! citation paths of length ≤ 2. This crate provides those pieces:
//!
//! * [`graph`] — a compact CSR digraph of `citing → cited` edges with
//!   induced-subgraph extraction (for per-context graphs),
//! * [`mod@pagerank`] — the paper's PageRank variant with both teleport
//!   options (`E1`, `E2`) and dangling-mass redistribution,
//! * [`mod@hits`] — Kleinberg's HITS (discussed in §3.1; the paper's ref
//!   \[11\] found it highly correlated with PageRank — our ablation bench
//!   checks the same),
//! * [`coupling`] — bibliographic coupling (Kessler 1963) and
//!   co-citation (Small 1973) similarities,
//! * [`paths`] — bounded-length path neighborhoods for AC expansion.

pub mod coupling;
pub mod graph;
pub mod hits;
pub mod pagerank;
pub mod paths;
pub mod stats;

pub use graph::CitationGraph;
pub use hits::{hits, HitsConfig, HitsScores};
pub use pagerank::{pagerank, PageRankConfig, TeleportMode};
pub use stats::{graph_stats, GraphStats};
