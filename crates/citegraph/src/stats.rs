//! Graph statistics: the quantities behind the paper's explanations.
//!
//! The paper repeatedly attributes the citation function's weaknesses
//! to *sparsity* of within-context citation graphs ("papers of some
//! contexts cite or are cited by large numbers of papers outside the
//! contexts. This causes the citation graphs to be sparse within those
//! contexts"). This module measures that directly: isolated-node
//! fraction, edge density, degree distribution, and weakly connected
//! components — the experiment harness reports them per context level.

use crate::graph::CitationGraph;

/// Summary statistics of one (sub)graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub n_nodes: usize,
    /// Edge count.
    pub n_edges: usize,
    /// Nodes with neither in- nor out-edges.
    pub n_isolated: usize,
    /// Edges per node (0 for the empty graph).
    pub mean_degree: f64,
    /// Edge density: `edges / (n·(n-1))` (0 for n < 2).
    pub density: f64,
    /// Number of weakly connected components.
    pub n_components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Fraction of isolated nodes (the tie-pathology measure).
    pub fn isolated_fraction(&self) -> f64 {
        if self.n_nodes == 0 {
            0.0
        } else {
            self.n_isolated as f64 / self.n_nodes as f64
        }
    }
}

/// Compute [`GraphStats`] for a graph.
pub fn graph_stats(graph: &CitationGraph) -> GraphStats {
    let n = graph.n_nodes() as usize;
    let n_edges = graph.n_edges();
    let mut n_isolated = 0usize;
    for u in 0..graph.n_nodes() {
        if graph.out_degree(u) == 0 && graph.in_degree(u) == 0 {
            n_isolated += 1;
        }
    }
    let (n_components, largest_component) = weak_components(graph);
    GraphStats {
        n_nodes: n,
        n_edges,
        n_isolated,
        mean_degree: if n == 0 {
            0.0
        } else {
            n_edges as f64 / n as f64
        },
        density: if n < 2 {
            0.0
        } else {
            n_edges as f64 / (n as f64 * (n as f64 - 1.0))
        },
        n_components,
        largest_component,
    }
}

/// Weakly connected components: `(count, largest size)`.
fn weak_components(graph: &CitationGraph) -> (usize, usize) {
    let n = graph.n_nodes() as usize;
    if n == 0 {
        return (0, 0);
    }
    let mut seen = vec![false; n];
    let mut count = 0usize;
    let mut largest = 0usize;
    let mut stack = Vec::new();
    for start in 0..n as u32 {
        if seen[start as usize] {
            continue;
        }
        count += 1;
        let mut size = 0usize;
        stack.push(start);
        seen[start as usize] = true;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in graph.references(u).iter().chain(graph.citations(u)) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        largest = largest.max(size);
    }
    (count, largest)
}

/// In-degree histogram up to `max_degree` (the last bucket absorbs the
/// tail): bucket `i` counts nodes with in-degree exactly `i`.
pub fn in_degree_histogram(graph: &CitationGraph, max_degree: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for u in 0..graph.n_nodes() {
        let d = graph.in_degree(u).min(max_degree);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_graph() {
        // 0→1→2, node 3 isolated.
        let g = CitationGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let s = graph_stats(&g);
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.n_edges, 2);
        assert_eq!(s.n_isolated, 1);
        assert_eq!(s.n_components, 2);
        assert_eq!(s.largest_component, 3);
        assert!((s.mean_degree - 0.5).abs() < 1e-12);
        assert!((s.density - 2.0 / 12.0).abs() < 1e-12);
        assert!((s.isolated_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = graph_stats(&CitationGraph::from_edges(0, &[]));
        assert_eq!(empty.n_components, 0);
        assert_eq!(empty.isolated_fraction(), 0.0);
        let edgeless = graph_stats(&CitationGraph::from_edges(5, &[]));
        assert_eq!(edgeless.n_isolated, 5);
        assert_eq!(edgeless.n_components, 5);
        assert_eq!(edgeless.largest_component, 1);
        assert_eq!(edgeless.isolated_fraction(), 1.0);
    }

    #[test]
    fn complete_graph_density_is_one() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let s = graph_stats(&CitationGraph::from_edges(4, &edges));
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.n_components, 1);
        assert_eq!(s.n_isolated, 0);
    }

    #[test]
    fn in_degree_histogram_buckets() {
        // 1,2,3 cite 0: in-degrees [3,0,0,0].
        let g = CitationGraph::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let h = in_degree_histogram(&g, 2);
        assert_eq!(h, vec![3, 0, 1]); // degree 3 clamps into bucket 2
    }

    #[test]
    fn components_ignore_edge_direction() {
        // 0→1, 2→1: all weakly connected.
        let g = CitationGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let s = graph_stats(&g);
        assert_eq!(s.n_components, 1);
        assert_eq!(s.largest_component, 3);
    }
}
