//! Top-k overlapping ratio between two score functions (paper §2,
//! Fig 5.3).
//!
//! `TopKOverlappingRatio(S1, S2) = |P_{S1-TopK} ∩ P_{S2-TopK}| / K`,
//! where `P_{Sj-TopK}` is the set of papers with the k highest Sj
//! scores. The paper's tie rule: if papers tie with the kth paper's
//! score, they are all included, and the denominator becomes
//! `min(|P_{S1-TopK}|, |P_{S2-TopK}|)`.
//!
//! The experiments use top-k *percent* because deep contexts are much
//! smaller than shallow ones (an absolute k would bias them).

use std::collections::HashSet;

/// The paper-set of the k top-scored items, including everything tied
/// with the kth score.
fn top_k_set(scored: &[(u32, f64)], k: usize) -> HashSet<u32> {
    if k == 0 || scored.is_empty() {
        return HashSet::new();
    }
    let mut sorted: Vec<(u32, f64)> = scored.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let k = k.min(sorted.len());
    let kth_score = sorted[k - 1].1;
    sorted
        .into_iter()
        .take_while(|&(_, s)| s >= kth_score)
        .map(|(id, _)| id)
        .collect()
}

/// Top-k overlapping ratio with the paper's tie handling.
pub fn top_k_overlap(s1: &[(u32, f64)], s2: &[(u32, f64)], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let t1 = top_k_set(s1, k);
    let t2 = top_k_set(s2, k);
    if t1.is_empty() || t2.is_empty() {
        return 0.0;
    }
    let inter = t1.intersection(&t2).count();
    let denom = if t1.len() > k || t2.len() > k {
        t1.len().min(t2.len())
    } else {
        k
    };
    inter as f64 / denom as f64
}

/// Top-k% overlapping ratio: `k = max(1, round(pct · n))` where `n` is
/// the (common) item count of the two score lists.
pub fn top_k_percent_overlap(s1: &[(u32, f64)], s2: &[(u32, f64)], pct: f64) -> f64 {
    let n = s1.len().max(s2.len());
    if n == 0 {
        return 0.0;
    }
    let k = ((pct * n as f64).round() as usize).max(1);
    top_k_overlap(s1, s2, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(xs: &[(u32, f64)]) -> Vec<(u32, f64)> {
        xs.to_vec()
    }

    #[test]
    fn identical_rankings_overlap_fully() {
        let s = scored(&[(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.1)]);
        assert_eq!(top_k_overlap(&s, &s, 2), 1.0);
    }

    #[test]
    fn disjoint_top_sets_overlap_zero() {
        let s1 = scored(&[(1, 0.9), (2, 0.8), (3, 0.1), (4, 0.1)]);
        let s2 = scored(&[(1, 0.1), (2, 0.1), (3, 0.9), (4, 0.8)]);
        assert_eq!(top_k_overlap(&s1, &s2, 2), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let s1 = scored(&[(1, 0.9), (2, 0.8), (3, 0.1)]);
        let s2 = scored(&[(1, 0.9), (3, 0.8), (2, 0.1)]);
        assert_eq!(top_k_overlap(&s1, &s2, 2), 0.5);
    }

    #[test]
    fn ties_expand_the_set_and_adjust_denominator() {
        // s1 has a 3-way tie at the 2nd position: top-2 set = {1,2,3}.
        let s1 = scored(&[(1, 0.9), (2, 0.5), (3, 0.5), (4, 0.1)]);
        let s2 = scored(&[(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.1)]);
        // t1 = {1,2,3} (|t1|=3 > k), t2 = {1,2}; denom = min(3,2) = 2.
        let r = top_k_overlap(&s1, &s2, 2);
        assert!((r - 1.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn all_tied_scores_include_everything() {
        let s1 = scored(&[(1, 0.5), (2, 0.5), (3, 0.5)]);
        let s2 = scored(&[(1, 0.9), (2, 0.8), (3, 0.7)]);
        // t1 = all 3, t2 = {1}; denom = min(3,1)=1; overlap {1}.
        assert_eq!(top_k_overlap(&s1, &s2, 1), 1.0);
    }

    #[test]
    fn k_larger_than_list_keeps_literal_denominator() {
        // Degenerate call (k > n): both top sets are the whole list but
        // the requested K stays the denominator, per the formula.
        let s = scored(&[(1, 0.9), (2, 0.8)]);
        assert!((top_k_overlap(&s, &s, 10) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn percent_variant_scales_with_size() {
        let s1: Vec<(u32, f64)> = (0..100).map(|i| (i, 1.0 - i as f64 / 100.0)).collect();
        let mut s2 = s1.clone();
        s2.reverse(); // same scores, same ids → same ranking actually
        assert_eq!(top_k_percent_overlap(&s1, &s2, 0.05), 1.0);
        let s3: Vec<(u32, f64)> = (0..100).map(|i| (i, i as f64 / 100.0)).collect();
        // Reversed ranking: top-5% sets disjoint.
        assert_eq!(top_k_percent_overlap(&s1, &s3, 0.05), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(top_k_overlap(&[], &[], 3), 0.0);
        assert_eq!(top_k_percent_overlap(&[], &[], 0.1), 0.0);
        let s = scored(&[(1, 0.5)]);
        assert_eq!(top_k_overlap(&s, &[], 1), 0.0);
        assert_eq!(top_k_overlap(&s, &s, 0), 0.0);
    }
}
