//! Separability: score-distribution uniformity within a context (paper
//! §2, §5.2, Figs 5.4–5.7).
//!
//! Scores in a context (assumed in [0, 1]) are divided into `n` equal
//! ranges; with perfect separability each range holds `100/n` percent
//! of the papers. The paper's statistic is
//! `SD = sqrt((1/n) Σ (X_i − 100/n)²)` with `X_i` the percentage of
//! papers in range `i`. SD near 0 ⇒ uniform (good); a score function
//! that assigns many identical scores piles everything into one bin and
//! gets a large SD (the citation-based function's failure mode on
//! sparse context graphs).

/// The paper's separability standard deviation of one context's scores,
/// using `n_bins` equal ranges over [0, 1]. Scores outside [0, 1] are
/// clamped. Returns 0.0 for an empty context (nothing to separate).
pub fn separability_sd(scores: &[f64], n_bins: usize) -> f64 {
    assert!(n_bins >= 1, "need at least one bin");
    if scores.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; n_bins];
    for &s in scores {
        let s = s.clamp(0.0, 1.0);
        let mut bin = (s * n_bins as f64) as usize;
        if bin == n_bins {
            bin -= 1; // score exactly 1.0 falls in the last range
        }
        counts[bin] += 1;
    }
    let total = scores.len() as f64;
    let expected = 100.0 / n_bins as f64;
    let var = counts
        .iter()
        .map(|&c| {
            let pct = 100.0 * c as f64 / total;
            (pct - expected) * (pct - expected)
        })
        .sum::<f64>()
        / n_bins as f64;
    var.sqrt()
}

/// Histogram of per-context SDs: percentage of contexts whose SD falls
/// in each `bucket_width`-wide bucket over `[0, max_sd]`; the last
/// bucket absorbs anything larger. Returns (bucket upper edges, pct).
pub fn sd_histogram(context_sds: &[f64], bucket_width: f64, max_sd: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(bucket_width > 0.0 && max_sd > 0.0);
    let n_buckets = (max_sd / bucket_width).ceil() as usize;
    let mut counts = vec![0usize; n_buckets];
    for &sd in context_sds {
        let mut b = (sd / bucket_width) as usize;
        if b >= n_buckets {
            b = n_buckets - 1;
        }
        counts[b] += 1;
    }
    let total = context_sds.len().max(1) as f64;
    let edges: Vec<f64> = (1..=n_buckets).map(|i| i as f64 * bucket_width).collect();
    let pct: Vec<f64> = counts.iter().map(|&c| 100.0 * c as f64 / total).collect();
    (edges, pct)
}

/// The theoretical worst-case SD for `n_bins` (everything in one bin):
/// useful to sanity-check ranges in tests and plots.
pub fn worst_case_sd(n_bins: usize) -> f64 {
    let n = n_bins as f64;
    let expected = 100.0 / n;
    // One bin holds 100%, the rest 0%.
    (((100.0 - expected) * (100.0 - expected) + (n - 1.0) * expected * expected) / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_have_zero_sd() {
        // 10 scores hitting each of 10 bins once.
        let scores: Vec<f64> = (0..10).map(|i| (i as f64 + 0.5) / 10.0).collect();
        assert!(separability_sd(&scores, 10) < 1e-9);
    }

    #[test]
    fn identical_scores_have_worst_sd() {
        let scores = vec![0.5; 100];
        let sd = separability_sd(&scores, 10);
        assert!((sd - worst_case_sd(10)).abs() < 1e-9);
        assert!(sd > 28.0, "worst case for 10 bins is 30: {sd}");
    }

    #[test]
    fn sd_monotone_in_concentration() {
        let uniform: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let half: Vec<f64> = (0..100).map(|i| 0.5 * i as f64 / 100.0).collect();
        let point = vec![0.1; 100];
        let a = separability_sd(&uniform, 10);
        let b = separability_sd(&half, 10);
        let c = separability_sd(&point, 10);
        assert!(a < b && b < c, "{a} < {b} < {c}");
    }

    #[test]
    fn score_one_lands_in_last_bin() {
        let sd = separability_sd(&[1.0], 10);
        assert!(sd.is_finite());
    }

    #[test]
    fn empty_context_is_zero() {
        assert_eq!(separability_sd(&[], 10), 0.0);
    }

    #[test]
    fn out_of_range_scores_are_clamped() {
        let sd = separability_sd(&[-0.5, 1.5, 2.0], 10);
        assert!(sd.is_finite());
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let sds = vec![2.0, 7.0, 12.0, 33.0, 99.0];
        let (edges, pct) = sd_histogram(&sds, 5.0, 40.0);
        assert_eq!(edges.len(), 8);
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        // 99.0 lands in the last bucket.
        assert!(pct[7] > 0.0);
    }

    #[test]
    fn histogram_buckets_are_correct() {
        let sds = vec![0.0, 4.9, 5.0, 9.9];
        let (_, pct) = sd_histogram(&sds, 5.0, 10.0);
        assert!((pct[0] - 50.0).abs() < 1e-9);
        assert!((pct[1] - 50.0).abs() < 1e-9);
    }

    proptest::proptest! {
        #[test]
        fn sd_bounded_by_worst_case(
            scores in proptest::collection::vec(0.0f64..=1.0, 1..200),
        ) {
            let sd = separability_sd(&scores, 10);
            proptest::prop_assert!(sd >= -1e-9);
            proptest::prop_assert!(sd <= worst_case_sd(10) + 1e-9);
        }
    }
}
