//! Precision of thresholded search results (paper §2, Figs 5.1–5.2).
//!
//! `Precision_t = |S_t ∩ R_t| / |S_t|` where `S_t` is the result set of
//! papers whose relevancy score exceeds threshold `t` and `R_t` the
//! true answer (AC-answer) set. The paper plots average *and* median
//! precision across queries per threshold, noting that queries with
//! empty result sets at high `t` contribute precision 0 to the average
//! (which is why the median curves look better at high thresholds).

use crate::stats::{mean, median};
use serde::Serialize;
use std::collections::HashSet;

/// Plain set precision; 1.0 for an empty result set is *not* granted —
/// the paper counts empty results as precision 0.
pub fn precision(results: &HashSet<u32>, truth: &HashSet<u32>) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let hits = results.intersection(truth).count();
    hits as f64 / results.len() as f64
}

/// Set recall. The paper argues (§2) that recall matters less than
/// precision for large digital libraries — users never scan far — and
/// evaluates only precision; recall is provided for completeness and
/// for the harness's baseline comparison.
pub fn recall(results: &HashSet<u32>, truth: &HashSet<u32>) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    results.intersection(truth).count() as f64 / truth.len() as f64
}

/// Balanced F1 of [`precision`] and [`recall`]; 0.0 when both are 0.
pub fn f1(results: &HashSet<u32>, truth: &HashSet<u32>) -> f64 {
    let p = precision(results, truth);
    let r = recall(results, truth);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Precision of score-thresholded results at each threshold: for each
/// `t` in `thresholds`, keep results with `score > t` and measure
/// against `truth`.
pub fn precision_curve(
    scored_results: &[(u32, f64)],
    truth: &HashSet<u32>,
    thresholds: &[f64],
) -> Vec<f64> {
    thresholds
        .iter()
        .map(|&t| {
            let s_t: HashSet<u32> = scored_results
                .iter()
                .filter(|&&(_, s)| s > t)
                .map(|&(id, _)| id)
                .collect();
            precision(&s_t, truth)
        })
        .collect()
}

/// Average and median precision curves over a set of queries.
#[derive(Debug, Clone, Serialize)]
pub struct PrecisionCurves {
    /// The thresholds (x-axis).
    pub thresholds: Vec<f64>,
    /// Mean precision per threshold.
    pub average: Vec<f64>,
    /// Median precision per threshold.
    pub median: Vec<f64>,
    /// Number of queries aggregated.
    pub n_queries: usize,
}

impl PrecisionCurves {
    /// Aggregate per-query precision curves (all computed on the same
    /// thresholds).
    pub fn aggregate(thresholds: &[f64], per_query: &[Vec<f64>]) -> Self {
        let n_t = thresholds.len();
        let mut average = Vec::with_capacity(n_t);
        let mut med = Vec::with_capacity(n_t);
        for i in 0..n_t {
            let col: Vec<f64> = per_query.iter().map(|q| q[i]).collect();
            average.push(mean(&col));
            med.push(median(&col));
        }
        Self {
            thresholds: thresholds.to_vec(),
            average,
            median: med,
            n_queries: per_query.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[u32]) -> HashSet<u32> {
        xs.iter().copied().collect()
    }

    #[test]
    fn precision_basics() {
        assert_eq!(precision(&set(&[1, 2, 3, 4]), &set(&[1, 2])), 0.5);
        assert_eq!(precision(&set(&[1]), &set(&[1])), 1.0);
        assert_eq!(precision(&set(&[9]), &set(&[1])), 0.0);
    }

    #[test]
    fn empty_results_count_zero() {
        assert_eq!(precision(&set(&[]), &set(&[1])), 0.0);
    }

    #[test]
    fn recall_basics() {
        assert_eq!(recall(&set(&[1, 2]), &set(&[1, 2, 3, 4])), 0.5);
        assert_eq!(recall(&set(&[9]), &set(&[1])), 0.0);
        assert_eq!(recall(&set(&[1]), &set(&[])), 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // precision 1.0, recall 0.5 → F1 = 2/3.
        let f = f1(&set(&[1]), &set(&[1, 2]));
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f1(&set(&[]), &set(&[])), 0.0);
    }

    #[test]
    fn perfect_retrieval_scores_one_everywhere() {
        let s = set(&[1, 2, 3]);
        assert_eq!(precision(&s, &s), 1.0);
        assert_eq!(recall(&s, &s), 1.0);
        assert_eq!(f1(&s, &s), 1.0);
    }

    #[test]
    fn thresholding_filters_scores() {
        let scored = vec![(1, 0.9), (2, 0.5), (3, 0.1)];
        let truth = set(&[1]);
        let c = precision_curve(&scored, &truth, &[0.0, 0.4, 0.8]);
        // t=0: {1,2,3} → 1/3; t=0.4: {1,2} → 1/2; t=0.8: {1} → 1.
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 0.5).abs() < 1e-12);
        assert!((c[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_is_strict() {
        let scored = vec![(1, 0.5)];
        let c = precision_curve(&scored, &set(&[1]), &[0.5]);
        assert_eq!(c[0], 0.0, "score == t is excluded, set empty → 0");
    }

    #[test]
    fn aggregation_means_and_medians() {
        let thresholds = [0.0, 0.5];
        let per_query = vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![0.5, 1.0]];
        let c = PrecisionCurves::aggregate(&thresholds, &per_query);
        assert!((c.average[0] - 0.5).abs() < 1e-12);
        assert!((c.median[0] - 0.5).abs() < 1e-12);
        assert!((c.average[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.median[1], 0.0);
        assert_eq!(c.n_queries, 3);
    }

    #[test]
    fn median_resists_empty_result_queries() {
        // The paper's observation: zeros from empty result sets pull the
        // average down but not the median.
        let thresholds = [0.4];
        let per_query = vec![vec![0.9], vec![0.95], vec![1.0], vec![0.0], vec![0.0]];
        let c = PrecisionCurves::aggregate(&thresholds, &per_query);
        assert!(c.median[0] > c.average[0]);
    }
}
