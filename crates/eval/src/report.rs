//! Result-table rendering for the experiment harness: every figure
//! binary prints a markdown table (for EXPERIMENTS.md) and can dump the
//! same data as JSON (for downstream plotting).

use serde::Serialize;

/// A simple column-oriented results table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. "Fig 5.1 — precision, text-based paper set").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
    }

    /// Append a row of numbers formatted to 3 decimals, after a label.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.into());
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.push_row(cells);
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["t", "text", "citation"]);
        t.push_numeric_row("avg", &[0.5, 0.25]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| t | text | citation |"));
        assert!(md.contains("| avg | 0.500 | 0.250 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("J", &["a"]);
        t.push_row(vec!["1".into()]);
        let v: serde_json::Value = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(v["title"], "J");
        assert_eq!(v["rows"][0][0], "1");
    }
}
