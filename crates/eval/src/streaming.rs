//! Incremental variants of the paper's evaluation statistics, for use
//! by live aggregators that see scores one at a time instead of as
//! finished slices.
//!
//! Two invariants drive the design, and the property tests in
//! `tests/streaming_props.rs` pin both:
//!
//! * **Batch equivalence.** After pushing any sequence of values, the
//!   streaming results equal the batch functions
//!   ([`crate::separability_sd`], [`crate::top_k_overlap`],
//!   [`crate::top_k_percent_overlap`]) applied to the same values —
//!   bit-for-bit, not approximately. Separability only depends on bin
//!   counts, so the streaming form keeps counts and re-runs the exact
//!   batch arithmetic; top-k overlap keeps an ordered candidate list
//!   with the same comparator and tie expansion as the batch sort.
//! * **Merge commutativity.** [`StreamingSeparability::merge`] is a
//!   plain count addition, so sharded aggregation (one accumulator per
//!   worker, merged at read time) gives the same answer regardless of
//!   which worker saw which score — the property the rolling-window
//!   recorder already guarantees for latency histograms.

/// Streaming form of [`separability_sd`]: bin counts over `[0, 1]`,
/// fed one score at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingSeparability {
    counts: Vec<u64>,
    total: u64,
}

impl StreamingSeparability {
    /// An empty accumulator with `n_bins` equal ranges over [0, 1].
    pub fn new(n_bins: usize) -> Self {
        assert!(n_bins >= 1, "need at least one bin");
        Self {
            counts: vec![0; n_bins],
            total: 0,
        }
    }

    /// Bin one score. Same binning as the batch function: clamp to
    /// [0, 1], `bin = (s · n) as usize`, score exactly 1.0 falls in the
    /// last range.
    pub fn push(&mut self, score: f64) {
        let n_bins = self.counts.len();
        let s = score.clamp(0.0, 1.0);
        let mut bin = (s * n_bins as f64) as usize;
        if bin == n_bins {
            bin -= 1;
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Bin a whole slice (batch-parity helper for tests and backfill).
    pub fn push_all(&mut self, scores: &[f64]) {
        for &s in scores {
            self.push(s);
        }
    }

    /// Fold another accumulator into this one. Panics if the bin counts
    /// disagree. Count addition is commutative and associative, so
    /// merge order never changes [`Self::sd`].
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging separability accumulators with different bin counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The paper's separability SD over everything pushed so far;
    /// 0.0 while empty, exactly matching `separability_sd(&[], n)`.
    pub fn sd(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n_bins = self.counts.len();
        let total = self.total as f64;
        let expected = 100.0 / n_bins as f64;
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let pct = 100.0 * c as f64 / total;
                (pct - expected) * (pct - expected)
            })
            .sum::<f64>()
            / n_bins as f64;
        var.sqrt()
    }

    /// Raw bin counts (ascending score ranges).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of scores pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Incremental top-k candidate set for one score function, fed
/// `(id, score)` pairs one at a time.
///
/// Two retention modes:
///
/// * [`StreamingTopK::keep_all`] retains every pushed item. Required
///   for percent-overlap, where the effective k grows with the item
///   count, so no eviction is ever safe.
/// * [`StreamingTopK::with_k`] retains only the tie-expanded top-k —
///   bounded memory, valid because a fixed k never re-admits an item
///   that once fell strictly below the kth score.
#[derive(Debug, Clone)]
pub struct StreamingTopK {
    /// `Some(k)` = prune to the tie-expanded top-k; `None` = keep all.
    fixed_k: Option<usize>,
    /// Sorted by the batch comparator: descending score, ascending id.
    items: Vec<(u32, f64)>,
    /// Total items pushed (≥ `items.len()` once pruning kicks in).
    pushed: usize,
}

impl StreamingTopK {
    /// Retain every item; supports any `k` and percent-overlap.
    pub fn keep_all() -> Self {
        Self {
            fixed_k: None,
            items: Vec::new(),
            pushed: 0,
        }
    }

    /// Retain only the tie-expanded top-`k`; overlap queries deeper
    /// than `k` panic (the evicted items are gone).
    pub fn with_k(k: usize) -> Self {
        assert!(k >= 1, "fixed-k retention needs k >= 1");
        Self {
            fixed_k: Some(k),
            items: Vec::new(),
            pushed: 0,
        }
    }

    /// Insert one scored item, keeping the batch sort order.
    pub fn push(&mut self, id: u32, score: f64) {
        self.pushed += 1;
        let pos = self.items.partition_point(|&(other_id, other_score)| {
            // Strictly-before predicate for (desc score, asc id).
            match score.total_cmp(&other_score) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => other_id < id,
            }
        });
        self.items.insert(pos, (id, score));
        if let Some(k) = self.fixed_k {
            if self.items.len() > k {
                // Keep everything tied with the kth score; drop the
                // strictly-worse tail.
                let kth = self.items[k - 1].1;
                let cut = self.items.partition_point(|&(_, s)| s >= kth);
                self.items.truncate(cut);
            }
        }
    }

    /// Feed a whole slice (batch-parity helper).
    pub fn push_all(&mut self, scored: &[(u32, f64)]) {
        for &(id, s) in scored {
            self.push(id, s);
        }
    }

    /// Total items pushed so far (the `n` of the percent formula).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// True if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The tie-expanded top-`k` id set, sorted ascending. Equals the
    /// batch `top_k_set` over the same pushed items.
    pub fn top_set(&self, k: usize) -> Vec<u32> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        if let Some(fixed) = self.fixed_k {
            assert!(
                k <= fixed,
                "top_set({k}) on a StreamingTopK pruned to k={fixed}"
            );
        }
        let k = k.min(self.items.len());
        let kth = self.items[k - 1].1;
        let cut = self.items.partition_point(|&(_, s)| s >= kth);
        let mut ids: Vec<u32> = self.items[..cut].iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids
    }
}

/// Streaming top-k overlapping ratio: batch [`top_k_overlap`] over two
/// incremental candidate sets, with the paper's tie rule (tied sets
/// expand; the denominator becomes the smaller expanded size).
pub fn streaming_top_k_overlap(a: &StreamingTopK, b: &StreamingTopK, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let t1 = a.top_set(k);
    let t2 = b.top_set(k);
    if t1.is_empty() || t2.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(&t1, &t2);
    let denom = if t1.len() > k || t2.len() > k {
        t1.len().min(t2.len())
    } else {
        k
    };
    inter as f64 / denom as f64
}

/// Streaming top-k% overlapping ratio: `k = max(1, round(pct · n))`
/// with `n = max(a.pushed(), b.pushed())`, matching
/// [`crate::top_k_percent_overlap`]. Both sides must be `keep_all` (or
/// pruned at least as deep as the effective k).
pub fn streaming_top_k_percent_overlap(a: &StreamingTopK, b: &StreamingTopK, pct: f64) -> f64 {
    let n = a.pushed().max(b.pushed());
    if n == 0 {
        return 0.0;
    }
    let k = ((pct * n as f64).round() as usize).max(1);
    streaming_top_k_overlap(a, b, k)
}

/// Intersection size of two ascending-sorted id slices.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Convenience: batch overlap of two raw slices routed through the
/// streaming structures — used by tests to pin the equivalence.
pub fn overlap_via_streaming(s1: &[(u32, f64)], s2: &[(u32, f64)], k: usize) -> f64 {
    let mut a = StreamingTopK::keep_all();
    let mut b = StreamingTopK::keep_all();
    a.push_all(s1);
    b.push_all(s2);
    streaming_top_k_overlap(&a, &b, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{separability_sd, top_k_overlap};

    #[test]
    fn separability_matches_batch_on_simple_input() {
        let scores = [0.05, 0.15, 0.15, 0.95, 1.0, 0.0];
        let mut s = StreamingSeparability::new(10);
        s.push_all(&scores);
        assert_eq!(s.sd(), separability_sd(&scores, 10));
        assert_eq!(s.total(), scores.len() as u64);
    }

    #[test]
    fn separability_merge_is_order_independent() {
        let (left, right) = ([0.1, 0.2, 0.9], [0.5, 0.5, 1.0, 0.0]);
        let mut a = StreamingSeparability::new(10);
        a.push_all(&left);
        let mut b = StreamingSeparability::new(10);
        b.push_all(&right);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut all = [left.as_slice(), right.as_slice()].concat();
        all.sort_by(f64::total_cmp);
        assert_eq!(ab.sd(), separability_sd(&all, 10));
    }

    #[test]
    fn top_k_matches_batch_with_ties() {
        let s1 = [(1u32, 0.9), (2, 0.5), (3, 0.5), (4, 0.1)];
        let s2 = [(1u32, 0.9), (2, 0.8), (3, 0.7), (4, 0.1)];
        for k in 1..=4 {
            assert_eq!(
                overlap_via_streaming(&s1, &s2, k),
                top_k_overlap(&s1, &s2, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn fixed_k_pruning_keeps_tie_expanded_set() {
        let mut t = StreamingTopK::with_k(2);
        // Push in an order that forces eviction and tie retention.
        for &(id, s) in &[(4u32, 0.1), (2, 0.5), (1, 0.9), (3, 0.5), (5, 0.05)] {
            t.push(id, s);
        }
        assert_eq!(t.top_set(2), vec![1, 2, 3], "ties at the kth score stay");
        assert_eq!(t.pushed(), 5);
    }

    #[test]
    #[should_panic(expected = "pruned")]
    fn querying_deeper_than_pruned_k_panics() {
        let mut t = StreamingTopK::with_k(1);
        t.push(1, 0.5);
        t.push(2, 0.4);
        t.top_set(2);
    }

    #[test]
    fn empty_sides_are_zero() {
        let empty = StreamingTopK::keep_all();
        let mut one = StreamingTopK::keep_all();
        one.push(1, 0.5);
        assert_eq!(streaming_top_k_overlap(&empty, &one, 3), 0.0);
        assert_eq!(streaming_top_k_percent_overlap(&empty, &empty, 0.1), 0.0);
        assert_eq!(streaming_top_k_overlap(&one, &one, 0), 0.0);
    }
}
