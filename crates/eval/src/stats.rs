//! Small numeric helpers shared by the metrics.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (average of the two central values for even lengths); 0.0 for
/// empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Population standard deviation; 0.0 for empty input.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation of two equal-length series; 0.0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must be equal length");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let (mut vx, mut vy) = (0.0, 0.0);
    for i in 0..n {
        let (dx, dy) = (xs[i] - mx, ys[i] - my);
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation; 0.0 when undefined.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        let mut ranks = vec![0.0f64; v.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for k in i..=j {
                ranks[idx[k]] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    pearson(&rank(xs), &rank(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear: spearman 1, pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 10.0, 100.0, 1000.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0];
        let ys = [1.0, 1.0, 2.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }
}
