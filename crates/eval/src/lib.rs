//! Evaluation methodology of the paper (§2, §5): accuracy and
//! separability of prestige score functions.
//!
//! * [`mod@precision`] — precision of thresholded result sets against a
//!   ground-truth answer set, with average/median curves over queries
//!   and thresholds (Figs 5.1, 5.2),
//! * [`overlap`] — the top-k(%) overlapping ratio between two score
//!   functions, with the paper's tie-handling rule (Fig 5.3),
//! * [`separability`] — the score-distribution standard-deviation
//!   statistic and SD histograms (Figs 5.4–5.7),
//! * [`stats`] — small numeric helpers (mean, median),
//! * [`report`] — table rendering for harness output (markdown + JSON),
//! * [`streaming`] — incremental overlap/separability for live
//!   aggregators, bit-equal to the batch functions.

pub mod overlap;
pub mod precision;
pub mod report;
pub mod separability;
pub mod stats;
pub mod streaming;

pub use overlap::{top_k_overlap, top_k_percent_overlap};
pub use precision::{f1, precision, precision_curve, recall, PrecisionCurves};
pub use separability::{sd_histogram, separability_sd};
pub use stats::{mean, median};
pub use streaming::{
    streaming_top_k_overlap, streaming_top_k_percent_overlap, StreamingSeparability, StreamingTopK,
};
