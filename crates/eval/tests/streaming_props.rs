//! Property tests pinning the streaming evaluation statistics to their
//! batch counterparts: after any push sequence, the incremental
//! implementations must agree with `separability_sd` /
//! `top_k_overlap` / `top_k_percent_overlap` on the same inputs —
//! exactly, not within an epsilon, because the quality gate diffs
//! reports byte-for-byte.

use eval::{
    separability_sd, streaming_top_k_overlap, streaming_top_k_percent_overlap, top_k_overlap,
    top_k_percent_overlap, StreamingSeparability, StreamingTopK,
};
use proptest::prelude::*;
use std::ops::{Range, RangeInclusive};

/// Raw generator for scored lists (the vendored proptest stub has no
/// `prop_map`, so the mapping lives in [`scored`]).
fn raw_scored(
    max_len: usize,
) -> proptest::collection::VecStrategy<(Range<u32>, RangeInclusive<u8>)> {
    proptest::collection::vec((0u32..64, 0u8..=8), 0..max_len)
}

/// Deduplicate ids and quantize scores to 1/8ths — deliberately
/// collision-heavy so the tie-expansion rule is exercised constantly.
fn scored(raw: &[(u32, u8)]) -> Vec<(u32, f64)> {
    let mut seen = std::collections::HashSet::new();
    raw.iter()
        .filter(|&&(id, _)| seen.insert(id))
        .map(|&(id, q)| (id, q as f64 / 8.0))
        .collect()
}

proptest! {
    #[test]
    fn streaming_separability_equals_batch(
        scores in proptest::collection::vec(-0.25f64..=1.25, 0..300),
        n_bins in 1usize..24,
    ) {
        let mut s = StreamingSeparability::new(n_bins);
        s.push_all(&scores);
        // Exact equality: same binning, same summation order over bins.
        prop_assert_eq!(s.sd().to_bits(), separability_sd(&scores, n_bins).to_bits());
        prop_assert_eq!(s.total(), scores.len() as u64);
    }

    #[test]
    fn streaming_separability_prefixes_match_batch(
        scores in proptest::collection::vec(0.0f64..=1.0, 1..80),
    ) {
        // Every prefix agrees, i.e. the accumulator is correct at all
        // times, not only after the full stream.
        let mut s = StreamingSeparability::new(10);
        for (i, &x) in scores.iter().enumerate() {
            s.push(x);
            prop_assert_eq!(
                s.sd().to_bits(),
                separability_sd(&scores[..=i], 10).to_bits()
            );
        }
    }

    #[test]
    fn sharded_merge_equals_single_accumulator(
        scores in proptest::collection::vec(0.0f64..=1.0, 0..200),
        shards in 1usize..8,
    ) {
        // Round-robin the stream over N shards and merge: identical to
        // one accumulator that saw everything (count addition is
        // commutative), independent of shard count and merge order.
        let mut single = StreamingSeparability::new(10);
        single.push_all(&scores);
        let mut parts: Vec<StreamingSeparability> =
            (0..shards).map(|_| StreamingSeparability::new(10)).collect();
        for (i, &x) in scores.iter().enumerate() {
            parts[i % shards].push(x);
        }
        let mut merged = StreamingSeparability::new(10);
        for p in parts.iter().rev() {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.sd().to_bits(), single.sd().to_bits());
    }

    #[test]
    fn streaming_overlap_equals_batch(
        raw1 in raw_scored(48),
        raw2 in raw_scored(48),
        k in 0usize..12,
    ) {
        let (s1, s2) = (scored(&raw1), scored(&raw2));
        let mut a = StreamingTopK::keep_all();
        let mut b = StreamingTopK::keep_all();
        a.push_all(&s1);
        b.push_all(&s2);
        let streamed = streaming_top_k_overlap(&a, &b, k);
        let batch = top_k_overlap(&s1, &s2, k);
        prop_assert_eq!(streamed.to_bits(), batch.to_bits(), "k={}", k);
    }

    #[test]
    fn streaming_percent_overlap_equals_batch(
        raw1 in raw_scored(48),
        raw2 in raw_scored(48),
        pct_times_100 in 1u32..=50,
    ) {
        let (s1, s2) = (scored(&raw1), scored(&raw2));
        let pct = pct_times_100 as f64 / 100.0;
        let mut a = StreamingTopK::keep_all();
        let mut b = StreamingTopK::keep_all();
        a.push_all(&s1);
        b.push_all(&s2);
        let streamed = streaming_top_k_percent_overlap(&a, &b, pct);
        let batch = top_k_percent_overlap(&s1, &s2, pct);
        prop_assert_eq!(streamed.to_bits(), batch.to_bits());
    }

    #[test]
    fn push_order_never_matters(
        raw1 in raw_scored(32),
        k in 1usize..8,
    ) {
        let s1 = scored(&raw1);
        // The candidate list is a set: any permutation of pushes gives
        // the same top set. Compare forward vs reversed insertion.
        let mut fwd = StreamingTopK::keep_all();
        fwd.push_all(&s1);
        let mut rev = StreamingTopK::keep_all();
        for &(id, s) in s1.iter().rev() {
            rev.push(id, s);
        }
        prop_assert_eq!(fwd.top_set(k), rev.top_set(k));
    }

    #[test]
    fn fixed_k_pruning_is_lossless_at_depth_k(
        raw1 in raw_scored(48),
        raw2 in raw_scored(48),
        k in 1usize..8,
    ) {
        let (s1, s2) = (scored(&raw1), scored(&raw2));
        // Bounded-memory mode answers depth-k queries identically to
        // keep-all (eviction only ever drops items strictly below the
        // kth score).
        let mut pruned_a = StreamingTopK::with_k(k);
        let mut pruned_b = StreamingTopK::with_k(k);
        pruned_a.push_all(&s1);
        pruned_b.push_all(&s2);
        let batch = top_k_overlap(&s1, &s2, k);
        prop_assert_eq!(
            streaming_top_k_overlap(&pruned_a, &pruned_b, k).to_bits(),
            batch.to_bits()
        );
    }
}

#[test]
fn empty_windows_are_zero_everywhere() {
    let s = StreamingSeparability::new(10);
    assert_eq!(s.sd(), 0.0);
    assert_eq!(s.sd(), separability_sd(&[], 10));
    let a = StreamingTopK::keep_all();
    let b = StreamingTopK::keep_all();
    assert_eq!(streaming_top_k_overlap(&a, &b, 5), 0.0);
    assert_eq!(streaming_top_k_percent_overlap(&a, &b, 0.1), 0.0);
    assert_eq!(top_k_overlap(&[], &[], 5), 0.0);
}

#[test]
fn single_context_single_score_matches_batch() {
    // One context, one paper: SD collapses to the worst case for the
    // bin the score lands in; overlap of a singleton with itself is 1.
    let mut s = StreamingSeparability::new(10);
    s.push(0.42);
    assert_eq!(s.sd().to_bits(), separability_sd(&[0.42], 10).to_bits());
    let mut a = StreamingTopK::keep_all();
    a.push(7, 0.9);
    assert_eq!(streaming_top_k_overlap(&a, &a, 1), 1.0);
}

#[test]
fn fully_tied_scores_expand_to_everything() {
    // All scores identical: the tie rule expands the top-1 set to the
    // whole list on both sides; denominator = min(|t1|, |t2|).
    let tied: Vec<(u32, f64)> = (0..6).map(|i| (i, 0.5)).collect();
    let mut a = StreamingTopK::keep_all();
    let mut b = StreamingTopK::keep_all();
    a.push_all(&tied);
    b.push_all(&tied[..3]);
    let streamed = streaming_top_k_overlap(&a, &b, 1);
    let batch = top_k_overlap(&tied, &tied[..3], 1);
    assert_eq!(streamed.to_bits(), batch.to_bits());
    assert_eq!(streamed, 1.0);
}
