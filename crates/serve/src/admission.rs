//! Bounded admission queue between the acceptor and the worker pool.
//!
//! A connection is *admitted* when it fits under the configured depth
//! bound and *rejected at the door* (HTTP 503 + `Retry-After`) when it
//! does not: queueing beyond what the workers can drain within a
//! deadline only converts fast failures into slow ones (see
//! DESIGN.md's admission-control notes). Each admitted connection is
//! stamped with the enqueue time from the injectable [`obs::Clock`],
//! so queue wait is measurable and the per-request deadline starts
//! ticking *before* a worker picks the request up.
//!
//! This module intentionally lives off the lint-policed hot path (the
//! handlers never call into it): it uses a `Mutex` + `Condvar`, and
//! its method names (`enqueue_conn`, `dequeue_conn`, …) are chosen not
//! to collide with anything invoked from policed files, keeping the
//! interprocedural call-graph over-approximation clean.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

/// An accepted connection waiting for a worker.
#[derive(Debug)]
pub struct PendingConn {
    /// The accepted socket.
    pub stream: TcpStream,
    /// [`obs::Clock`] timestamp at enqueue; the request deadline and
    /// the `serve.http.queue_wait` series both anchor here.
    pub enqueue_ns: u64,
}

#[derive(Debug, Default)]
struct QueueInner {
    waiting: VecDeque<PendingConn>,
    intake_closed: bool,
}

/// FIFO of accepted-but-unserved connections with a hard depth bound.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    wakeup: Condvar,
    /// Depth bound; `0` means unbounded (the control configuration the
    /// overload comparison runs against — not recommended in service).
    depth_bound: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `depth_bound` waiting connections
    /// (`0` = unbounded).
    pub fn with_depth(depth_bound: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner::default()),
            wakeup: Condvar::new(),
            depth_bound,
        }
    }

    /// Admit a connection. Returns the new depth on success, or the
    /// connection back on overflow so the caller can reject it at the
    /// door instead of letting it rot in line.
    pub fn enqueue_conn(&self, conn: PendingConn) -> Result<usize, PendingConn> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.intake_closed {
            return Err(conn);
        }
        if self.depth_bound > 0 && inner.waiting.len() >= self.depth_bound {
            return Err(conn);
        }
        inner.waiting.push_back(conn);
        let depth = inner.waiting.len();
        drop(inner);
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Block until a connection is available or intake is closed and
    /// the queue has fully drained (`None` = worker should exit).
    pub fn dequeue_conn(&self) -> Option<PendingConn> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(conn) = inner.waiting.pop_front() {
                return Some(conn);
            }
            if inner.intake_closed {
                return None;
            }
            inner = match self.wakeup.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Stop admitting; wake every worker so the pool can drain and
    /// exit. Already-queued connections are still served (the graceful
    /// part of graceful drain).
    pub fn close_intake(&self) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.intake_closed = true;
        drop(inner);
        self.wakeup.notify_all();
    }

    /// Current number of waiting connections.
    pub fn depth_now(&self) -> usize {
        match self.inner.lock() {
            Ok(guard) => guard.waiting.len(),
            Err(poisoned) => poisoned.into_inner().waiting.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn conn_pair(listener: &TcpListener) -> PendingConn {
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        // Accept + drop the server side; the client socket is enough
        // for queue bookkeeping.
        let _ = listener.accept().unwrap();
        PendingConn {
            stream,
            enqueue_ns: 0,
        }
    }

    #[test]
    fn bounded_queue_rejects_overflow_and_drains_fifo() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AdmissionQueue::with_depth(2);
        assert_eq!(queue.enqueue_conn(conn_pair(&listener)).unwrap(), 1);
        assert_eq!(queue.enqueue_conn(conn_pair(&listener)).unwrap(), 2);
        assert!(queue.enqueue_conn(conn_pair(&listener)).is_err());
        assert_eq!(queue.depth_now(), 2);

        queue.close_intake();
        // Queued connections still come out after intake closes…
        assert!(queue.dequeue_conn().is_some());
        assert!(queue.dequeue_conn().is_some());
        // …then workers are told to exit.
        assert!(queue.dequeue_conn().is_none());
        // And nothing new gets in.
        assert!(queue.enqueue_conn(conn_pair(&listener)).is_err());
    }

    #[test]
    fn zero_depth_means_unbounded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AdmissionQueue::with_depth(0);
        for want in 1..=8 {
            assert_eq!(queue.enqueue_conn(conn_pair(&listener)).unwrap(), want);
        }
    }
}
