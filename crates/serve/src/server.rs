//! Acceptor thread, worker pool, deadline shedding, graceful drain.
//!
//! Data flow: one nonblocking acceptor feeds the bounded
//! [`AdmissionQueue`]; `workers` threads each hold the shared
//! lock-free [`Searcher`] (inside [`AppState`]) and pull connections
//! off the queue. Per-request deadlines are stamped at *enqueue* time
//! with the injectable [`obs::Clock`], so time spent waiting in line
//! counts against the budget — the same accounting PR 5's open-loop
//! harness uses to avoid the coordinated-omission trap. A request
//! whose remaining budget is below the EWMA-estimated service cost is
//! answered `429 + Retry-After` immediately instead of executing past
//! its deadline; a connection that does not fit in the queue is
//! answered `503 + Retry-After` straight from the acceptor.
//!
//! Drain ([`ServerHandle::initiate_drain`] → [`ServerHandle::await_drained`]):
//! stop accepting (after sweeping the kernel backlog so nothing
//! already accepted by the OS is orphaned), close the listener, close
//! queue intake, let workers finish every admitted connection, then
//! join. Zero accepted requests are dropped.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use context_search::Searcher;
use obs::{Clock, MonotonicClock, SlowQuery};

use crate::admission::{AdmissionQueue, PendingConn};
use crate::handler::{handle_request, AppState, SearchDefaults};
use crate::http::{self, Parsed, Request, Response};

/// How the server listens, queues, sheds, and times out.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each holds a `Searcher` handle).
    pub workers: usize,
    /// Admission-queue depth bound; `0` = unbounded (control runs).
    pub queue_depth: usize,
    /// Per-request deadline in nanoseconds, anchored at enqueue;
    /// `0` disables deadline accounting entirely.
    pub deadline_ns: u64,
    /// Shed requests whose remaining budget is below the estimated
    /// service cost (`false` = the unbounded-queueing control mode).
    pub shed: bool,
    /// Defaults for omitted `/v1/search` body fields.
    pub defaults: SearchDefaults,
    /// Close keep-alive connections idle longer than this.
    pub keep_alive_idle_ns: u64,
    /// Optional ranking-quality shadow scorer to feed per request.
    pub shadow: Option<Arc<context_search::QualityShadow>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            deadline_ns: 50_000_000,
            shed: true,
            defaults: SearchDefaults::default(),
            keep_alive_idle_ns: 5_000_000_000,
            shadow: None,
        }
    }
}

/// Monotonic counters every thread shares; [`DrainSummary`] snapshots
/// them at shutdown.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted from the kernel.
    pub accepted: AtomicU64,
    /// Connections admitted to the queue.
    pub enqueued: AtomicU64,
    /// Connections rejected 503 at the door (queue full).
    pub shed_queue_full: AtomicU64,
    /// Requests rejected 429 (deadline budget below estimated cost).
    pub shed_deadline: AtomicU64,
    /// Complete requests parsed and dispatched.
    pub requests: AtomicU64,
    /// Responses with status < 400.
    pub responses_ok: AtomicU64,
    /// Responses with status >= 400 (excluding deadline sheds).
    pub http_errors: AtomicU64,
    /// Connections dropped for unparseable input.
    pub parse_errors: AtomicU64,
    /// EWMA of `/v1/search` execution cost (ns); the shedding
    /// estimate. Zero until the first request completes.
    pub est_exec_ns: AtomicU64,
}

/// Final tallies reported after a drain completes.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Connections accepted from the kernel.
    pub accepted: u64,
    /// Complete requests parsed and dispatched.
    pub requests: u64,
    /// Responses with status < 400.
    pub responses_ok: u64,
    /// Responses with status >= 400 (excluding deadline sheds).
    pub http_errors: u64,
    /// Connections dropped for unparseable input.
    pub parse_errors: u64,
    /// 429 deadline sheds.
    pub shed_deadline: u64,
    /// 503 queue-full rejections.
    pub shed_queue_full: u64,
}

impl DrainSummary {
    fn from_stats(stats: &ServerStats) -> Self {
        Self {
            accepted: stats.accepted.load(Ordering::Relaxed),
            requests: stats.requests.load(Ordering::Relaxed),
            responses_ok: stats.responses_ok.load(Ordering::Relaxed),
            http_errors: stats.http_errors.load(Ordering::Relaxed),
            parse_errors: stats.parse_errors.load(Ordering::Relaxed),
            shed_deadline: stats.shed_deadline.load(Ordering::Relaxed),
            shed_queue_full: stats.shed_queue_full.load(Ordering::Relaxed),
        }
    }

    /// One-line human rendering for drain logs.
    pub fn render(&self) -> String {
        format!(
            "accepted={} requests={} ok={} errors={} parse_errors={} shed_deadline={} shed_queue_full={}",
            self.accepted,
            self.requests,
            self.responses_ok,
            self.http_errors,
            self.parse_errors,
            self.shed_deadline,
            self.shed_queue_full,
        )
    }
}

/// Handle to a running server; dropping it does **not** stop the
/// threads — call [`ServerHandle::await_drained`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters (readable while serving).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Begin graceful drain: stop accepting, finish in-flight.
    /// Idempotent; returns immediately.
    pub fn initiate_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Drain and join every thread, then report final tallies.
    pub fn await_drained(mut self) -> DrainSummary {
        self.initiate_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        obs::counter("serve.admission.drained", 1);
        DrainSummary::from_stats(&self.stats)
    }
}

/// Start a server with the default monotonic clock.
pub fn start(searcher: Searcher, config: ServerConfig) -> std::io::Result<ServerHandle> {
    start_with_clock(searcher, config, Arc::new(MonotonicClock::new()))
}

/// Start a server with an injected [`Clock`] (tests use
/// [`obs::ManualClock`] to step deadlines deterministically).
pub fn start_with_clock(
    searcher: Searcher,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let queue = Arc::new(AdmissionQueue::with_depth(config.queue_depth));
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let queue_depth_gauge = Arc::new(AtomicU64::new(0));
    let state = Arc::new(AppState {
        searcher,
        defaults: config.defaults,
        draining: Arc::clone(&shutdown),
        queue_depth: Arc::clone(&queue_depth_gauge),
        served_seq: Arc::new(AtomicU64::new(0)),
        shadow: config.shadow.clone(),
    });

    let acceptor = {
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let clock = Arc::clone(&clock);
        let gauge = Arc::clone(&queue_depth_gauge);
        std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || acceptor_loop(listener, &queue, &shutdown, &stats, &clock, &gauge))?
    };

    let params = Arc::new(WorkerParams {
        deadline_ns: config.deadline_ns,
        shed: config.shed,
        keep_alive_idle_ns: config.keep_alive_idle_ns,
    });
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for index in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let state = Arc::clone(&state);
        let stats = Arc::clone(&stats);
        let clock = Arc::clone(&clock);
        let params = Arc::clone(&params);
        let shutdown = Arc::clone(&shutdown);
        let gauge = Arc::clone(&queue_depth_gauge);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{index}"))
                .spawn(move || {
                    worker_loop(&queue, &state, &params, &stats, &clock, &shutdown, &gauge)
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        stats,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Knobs the per-connection loop needs.
struct WorkerParams {
    deadline_ns: u64,
    shed: bool,
    keep_alive_idle_ns: u64,
}

fn acceptor_loop(
    listener: TcpListener,
    queue: &AdmissionQueue,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    clock: &Arc<dyn Clock>,
    gauge: &AtomicU64,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Sweep the kernel backlog: sockets the OS already
            // accepted on our behalf must be served, not orphaned.
            let mut idle_rounds = 0;
            while idle_rounds < 3 {
                match listener.accept() {
                    Ok((stream, _)) => {
                        idle_rounds = 0;
                        admit_conn(stream, queue, stats, clock, gauge);
                    }
                    Err(err) if err.kind() == ErrorKind::WouldBlock => {
                        idle_rounds += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => admit_conn(stream, queue, stats, clock, gauge),
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Closing the listener before closing intake guarantees no new
    // connection can arrive once workers start their final drain.
    drop(listener);
    queue.close_intake();
}

fn admit_conn(
    stream: TcpStream,
    queue: &AdmissionQueue,
    stats: &ServerStats,
    clock: &Arc<dyn Clock>,
    gauge: &AtomicU64,
) {
    let _accept_span = obs::span("serve.http.accept");
    stats.accepted.fetch_add(1, Ordering::Relaxed);
    obs::counter("serve.admission.accepted", 1);
    let conn = PendingConn {
        stream,
        enqueue_ns: clock.now_ns(),
    };
    match queue.enqueue_conn(conn) {
        Ok(depth) => {
            obs::counter("serve.admission.enqueued", 1);
            gauge.store(depth as u64, Ordering::Relaxed);
        }
        Err(rejected) => {
            stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.admission.shed_queue_full", 1);
            reject_at_door(rejected.stream);
        }
    }
}

/// Best-effort 503 straight from the acceptor; never blocks it long.
fn reject_at_door(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let response =
        Response::json_error(503, "admission queue full; retry shortly").with_retry_after(1);
    let _ = stream.write_all(&response.to_bytes(false));
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    queue: &AdmissionQueue,
    state: &AppState,
    params: &WorkerParams,
    stats: &ServerStats,
    clock: &Arc<dyn Clock>,
    shutdown: &AtomicBool,
    gauge: &AtomicU64,
) {
    while let Some(conn) = queue.dequeue_conn() {
        gauge.store(queue.depth_now() as u64, Ordering::Relaxed);
        serve_connection(conn, state, params, stats, clock, shutdown);
    }
}

fn serve_connection(
    conn: PendingConn,
    state: &AppState,
    params: &WorkerParams,
    stats: &ServerStats,
    clock: &Arc<dyn Clock>,
    shutdown: &AtomicBool,
) {
    let mut stream = conn.stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_nodelay(true);

    let dequeue_ns = clock.now_ns();
    let wait_ns = dequeue_ns.saturating_sub(conn.enqueue_ns);
    obs::observe_ns("serve.http.queue_wait", wait_ns);
    if let Some(rolling) = obs::rolling() {
        rolling.record("serve.http.queue_wait", wait_ns, false);
    }

    // The first request's deadline is anchored at enqueue: queue wait
    // spends budget. Follow-up keep-alive requests re-anchor when the
    // previous response finishes.
    let mut req_start_ns = conn.enqueue_ns;
    let mut idle_since_ns = dequeue_ns;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        let parse_start_ns = clock.now_ns();
        let parsed = http::parse_request(&buf);
        match parsed {
            Parsed::Complete(request, consumed) => {
                record_stage(
                    "serve.http.parse",
                    clock.now_ns().saturating_sub(parse_start_ns),
                );
                buf.drain(..consumed);
                let keep_going = handle_one(
                    &mut stream,
                    &request,
                    req_start_ns,
                    state,
                    params,
                    stats,
                    clock,
                );
                // On drain, finish pipelined followers already in the
                // buffer before closing the connection.
                if !keep_going
                    || !request.keep_alive
                    || (shutdown.load(Ordering::SeqCst) && buf.is_empty())
                {
                    break;
                }
                req_start_ns = clock.now_ns();
                idle_since_ns = req_start_ns;
                // Loop straight back to the parser: a pipelined
                // follower may already be sitting in the buffer.
            }
            Parsed::Invalid(err) => {
                record_stage(
                    "serve.http.parse",
                    clock.now_ns().saturating_sub(parse_start_ns),
                );
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve.http.errors", 1);
                let response = Response::json_error(400, &err.to_string());
                let _ = write_response(&mut stream, &response, false);
                break;
            }
            Parsed::Partial => {
                let now = clock.now_ns();
                let draining = shutdown.load(Ordering::SeqCst);
                if buf.is_empty() {
                    // Nothing in flight: drop the connection after the
                    // keep-alive idle budget. During drain this falls
                    // through to one more read attempt first — a
                    // request the client already sent may be sitting
                    // in the socket buffer, and dropping it unread
                    // would break the zero-dropped-in-flight promise.
                    if !draining && now.saturating_sub(idle_since_ns) > params.keep_alive_idle_ns {
                        break;
                    }
                } else if draining && now.saturating_sub(idle_since_ns) > 2_000_000_000 {
                    // Half-received request during drain: bounded
                    // grace, then 408 so the client knows to resend.
                    let response = Response::json_error(408, "server draining; request incomplete");
                    let _ = write_response(&mut stream, &response, false);
                    break;
                }
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                        idle_since_ns = clock.now_ns();
                    }
                    Err(err)
                        if err.kind() == ErrorKind::WouldBlock
                            || err.kind() == ErrorKind::TimedOut =>
                    {
                        // Idle at drain time (read timed out with an
                        // empty buffer): nothing in flight, close.
                        if draining && buf.is_empty() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// Dispatch one parsed request: shed or execute, then write. Returns
/// whether the connection is still usable.
fn handle_one(
    stream: &mut TcpStream,
    request: &Request,
    req_start_ns: u64,
    state: &AppState,
    params: &WorkerParams,
    stats: &ServerStats,
    clock: &Arc<dyn Clock>,
) -> bool {
    let _request_span = obs::span("serve.http.request");
    stats.requests.fetch_add(1, Ordering::Relaxed);

    if params.deadline_ns > 0 && params.shed && request.target == "/v1/search" {
        let elapsed_ns = clock.now_ns().saturating_sub(req_start_ns);
        let remaining_ns = params.deadline_ns.saturating_sub(elapsed_ns);
        let est_ns = stats.est_exec_ns.load(Ordering::Relaxed);
        if remaining_ns == 0 || remaining_ns < est_ns {
            stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.admission.shed_deadline", 1);
            if let Some(rolling) = obs::rolling() {
                rolling.record("serve.http.shed", elapsed_ns, false);
            }
            let response = Response::json_error(
                429,
                "deadline budget exhausted before execution; retry with backoff",
            )
            .with_retry_after(1);
            return write_response(stream, &response, request.keep_alive);
        }
    }

    let exec_start_ns = clock.now_ns();
    let response = {
        let _exec_span = obs::span("serve.http.exec");
        handle_request(state, request)
    };
    let exec_ns = clock.now_ns().saturating_sub(exec_start_ns);
    if request.target == "/v1/search" && response.status == 200 {
        update_cost_estimate(stats, exec_ns);
    }

    if response.status >= 400 {
        stats.http_errors.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.http.errors", 1);
    } else {
        stats.responses_ok.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.http.responses", 1);
    }

    let write_start_ns = clock.now_ns();
    let ok = write_response(stream, &response, request.keep_alive);
    record_stage(
        "serve.http.write",
        clock.now_ns().saturating_sub(write_start_ns),
    );

    // End-to-end wall time (queue wait + shed check + exec + write)
    // feeds the slow-request leaderboard when one is attached.
    let total_ns = clock.now_ns().saturating_sub(req_start_ns);
    if let Some(log) = obs::slow_log() {
        if log.is_slow(total_ns) {
            log.push(SlowQuery {
                query: format!("{} {}", request.method, request.target),
                duration_ns: total_ns,
                ts_ns: clock.now_ns(),
                stats: vec![("exec_ns".to_string(), exec_ns)],
                trace: None,
            });
        }
    }
    ok
}

/// Record a pipeline-stage duration into the histogram and, when one
/// is attached, the rolling window (spans do the same on drop; these
/// stages are timed manually because they repeat within one span).
fn record_stage(name: &'static str, duration_ns: u64) {
    obs::observe_ns(name, duration_ns);
    if let Some(rolling) = obs::rolling() {
        rolling.record(name, duration_ns, false);
    }
}

/// EWMA with alpha 1/8, seeded by the first observation.
fn update_cost_estimate(stats: &ServerStats, exec_ns: u64) {
    let prev = stats.est_exec_ns.load(Ordering::Relaxed);
    let next = if prev == 0 {
        exec_ns
    } else {
        (prev.saturating_mul(7).saturating_add(exec_ns)) / 8
    };
    stats.est_exec_ns.store(next, Ordering::Relaxed);
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    stream.write_all(&response.to_bytes(keep_alive)).is_ok()
}
