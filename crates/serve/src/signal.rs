//! Minimal async-signal-safe shutdown flag.
//!
//! The workspace is offline-vendored (no `libc`/`signal-hook` crates),
//! so this binds the C library's `signal(2)` directly — it is linked
//! into every Rust binary on the platforms we run on. The handler does
//! the only async-signal-safe thing possible: set an atomic flag the
//! serve loop polls to initiate graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn note_term(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Route SIGTERM and SIGINT to the drain flag. Call once at startup.
pub fn install_term_handler() {
    unsafe {
        signal(SIGTERM, note_term);
        signal(SIGINT, note_term);
    }
}

/// Whether a termination signal has arrived since
/// [`install_term_handler`].
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}
