//! Pure request handlers: parsed [`Request`] in, [`Response`] out.
//!
//! These functions are the network edge of the serving stack and are
//! registered as entrypoint roots for the `panic-reachable-serving` and
//! `lock-reachable-hot-path` interprocedural lint rules (see
//! `crates/analysis/src/reach.rs`): everything reachable from here must
//! be panic-free and lock-free, same as the in-process
//! [`Searcher`](context_search::Searcher) path. The handlers do no
//! socket IO — the worker loop in [`crate::server`] owns reads, writes,
//! and deadline bookkeeping — so they stay trivially testable and keep
//! blocking calls off the policed path.

use context_search::{ContextSetKind, ScoreFunction, SearchResult, Searcher};
use serde::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::http::{Request, Response};

/// Upper bound on a client-supplied `limit` (0 means "all results",
/// which is allowed; this only caps explicit positive limits).
pub const MAX_RESULT_LIMIT: usize = 10_000;

/// Server-side defaults for fields a `/v1/search` body may omit.
#[derive(Debug, Clone, Copy)]
pub struct SearchDefaults {
    /// §4 context set ranked against when the body has no `"kind"`.
    pub kind: ContextSetKind,
    /// §3 prestige function when the body has no `"function"`.
    pub function: ScoreFunction,
    /// Result depth when the body has no `"limit"`.
    pub limit: usize,
}

impl Default for SearchDefaults {
    fn default() -> Self {
        Self {
            kind: ContextSetKind::PatternBased,
            function: ScoreFunction::Pattern,
            limit: 10,
        }
    }
}

/// Shared state each worker hands to the handlers: the lock-free
/// [`Searcher`] plus atomics the drain path and `/healthz` read.
pub struct AppState {
    /// Clone-able lock-free handle over the engine snapshot.
    pub searcher: Searcher,
    /// Defaults for omitted `/v1/search` body fields.
    pub defaults: SearchDefaults,
    /// Set once at drain start; flips `/healthz` to `"draining"`.
    pub draining: Arc<AtomicBool>,
    /// Admission-queue depth gauge maintained by the server threads
    /// (handlers must not touch the queue itself — it locks).
    pub queue_depth: Arc<AtomicU64>,
    /// Monotonic sequence of served search requests (also the shadow
    /// sampling sequence, so sampling is deterministic per request).
    pub served_seq: Arc<AtomicU64>,
    /// Optional ranking-quality shadow scorer (PR 6). `QualityShadow`
    /// lives in a lint-boundary file, so submitting from here is fine.
    pub shadow: Option<Arc<context_search::QualityShadow>>,
}

/// Dispatch a parsed request to its endpoint handler.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/search") => handle_search(state, req),
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/metrics") => handle_metrics(),
        ("GET", "/quality") => handle_quality(),
        (_, "/v1/search") | (_, "/healthz") | (_, "/metrics") | (_, "/quality") => {
            Response::json_error(405, "method not allowed for this endpoint")
        }
        _ => Response::json_error(404, "no such endpoint"),
    }
}

/// `POST /v1/search`: JSON body → the exact bytes
/// [`encode_results`] produces for the equivalent in-process
/// [`Searcher::query`] call (the wire byte-identity contract).
pub fn handle_search(state: &AppState, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return Response::json_error(400, "body must be UTF-8 JSON"),
    };
    let value: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(err) => return Response::json_error(400, &format!("bad JSON body: {err}")),
    };
    let query = match value.get("query").and_then(Value::as_str) {
        Some(q) => q,
        None => return Response::json_error(400, "missing string field \"query\""),
    };
    let kind = match value.get("kind").and_then(Value::as_str) {
        None => state.defaults.kind,
        Some("text") => ContextSetKind::TextBased,
        Some("pattern") => ContextSetKind::PatternBased,
        Some(other) => {
            return Response::json_error(400, &format!("unknown kind {other:?} (text|pattern)"))
        }
    };
    let function = match value.get("function").and_then(Value::as_str) {
        None => state.defaults.function,
        Some("citation") => ScoreFunction::Citation,
        Some("text") => ScoreFunction::Text,
        Some("pattern") => ScoreFunction::Pattern,
        Some(other) => {
            return Response::json_error(
                400,
                &format!("unknown function {other:?} (citation|text|pattern)"),
            )
        }
    };
    let limit = match value.get("limit") {
        None => state.defaults.limit,
        Some(raw) => match raw.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= MAX_RESULT_LIMIT as f64 => n as usize,
            _ => {
                return Response::json_error(
                    400,
                    &format!("\"limit\" must be an integer in 0..={MAX_RESULT_LIMIT}"),
                )
            }
        },
    };

    match state
        .searcher
        .query_with_stats(query, kind, function, limit)
    {
        Ok((results, _stats)) => {
            let seq = state.served_seq.fetch_add(1, Ordering::Relaxed);
            if let Some(shadow) = &state.shadow {
                let rolling = shadow.aggregator().rolling();
                let shard = (seq as usize) % rolling.n_shards();
                let ts_ns = rolling.clock().now_ns();
                shadow.observe_seq(seq, query, shard, ts_ns);
            }
            Response::json(200, encode_results(&results))
        }
        Err(err) => Response::json_error(422, &format!("{err}")),
    }
}

/// `GET /healthz`: liveness plus drain state and queue depth.
pub fn handle_healthz(state: &AppState) -> Response {
    let draining = state.draining.load(Ordering::Relaxed);
    let doc = Value::Map(vec![
        (
            "status".to_string(),
            Value::Str(if draining { "draining" } else { "ok" }.to_string()),
        ),
        (
            "queue_depth".to_string(),
            Value::UInt(state.queue_depth.load(Ordering::Relaxed)),
        ),
    ]);
    Response::json(200, serde_json::to_string(&doc).unwrap_or_default())
}

/// `GET /metrics`: the global obs snapshot as JSON.
pub fn handle_metrics() -> Response {
    Response::json(200, obs::snapshot_json())
}

/// `GET /quality`: the PR 6 ranking-quality summary, when a shadow
/// aggregator is attached (404 otherwise — sampling is off).
pub fn handle_quality() -> Response {
    match obs::quality_summary_json() {
        Some(body) => Response::json(200, body),
        None => Response::json_error(404, "quality shadow sampling is not enabled"),
    }
}

/// Canonical JSON encoding of a result list: the single source of the
/// `/v1/search` response bytes, shared by the wire byte-identity test.
pub fn encode_results(results: &[SearchResult]) -> String {
    let items: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::Map(vec![
                ("paper".to_string(), Value::UInt(u64::from(r.paper.0))),
                ("relevancy".to_string(), Value::Float(r.relevancy)),
                ("matching".to_string(), Value::Float(r.matching)),
                ("prestige".to_string(), Value::Float(r.prestige)),
                ("context".to_string(), Value::UInt(u64::from(r.context.0))),
            ])
        })
        .collect();
    let doc = Value::Map(vec![
        ("count".to_string(), Value::UInt(results.len() as u64)),
        ("results".to_string(), Value::Seq(items)),
    ]);
    serde_json::to_string(&doc).unwrap_or_default()
}
