//! Hand-rolled HTTP/1.1 request parser and response writer.
//!
//! Dependency-free in the spirit of the analysis crate's tokenizer: the
//! workspace is offline-vendored, so there is no tokio/hyper — just a
//! byte-slice state machine over whatever a `TcpStream` has delivered
//! so far. The parser is **incremental**: callers accumulate bytes in a
//! buffer and re-invoke [`parse_request`] until it returns something
//! other than [`Parsed::Partial`].
//!
//! This file is on the serving hot path and is policed by the
//! `no-panic-serving` and `no-locks-on-hot-path` lint rules: no
//! `unwrap`/`expect`, no panicking indexing (all slice access goes
//! through `get`), no locks. Malformed, oversized, or truncated input
//! must come back as [`Parsed::Invalid`] or [`Parsed::Partial`] —
//! never a panic (the proptest suite in `tests/http_parser.rs` drives
//! arbitrary bytes through here to enforce exactly that).

use std::fmt;

/// Request-line cap (method + target + version + CRLF).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum number of header lines accepted.
pub const MAX_HEADER_COUNT: usize = 64;
/// Cap on the whole head (request line + headers + terminator).
pub const MAX_HEAD_BYTES: usize = 24 * 1024;
/// Cap on a declared `Content-Length` body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request was rejected as unparseable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Head exceeded [`MAX_HEAD_BYTES`] without a `\r\n\r\n` terminator.
    HeadTooLarge,
    /// Request line exceeded [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// Head bytes were not valid UTF-8.
    HeadNotUtf8,
    /// Request line did not split into `METHOD TARGET VERSION`.
    BadRequestLine,
    /// Method token was empty or not ASCII-uppercase.
    BadMethod,
    /// Target did not start with `/`.
    BadTarget,
    /// Version was neither `HTTP/1.1` nor `HTTP/1.0`.
    BadVersion,
    /// More than [`MAX_HEADER_COUNT`] header lines.
    TooManyHeaders,
    /// A header line had no `:` separator or an empty/spaced name.
    BadHeader,
    /// `Content-Length` was not a base-10 integer.
    BadContentLength,
    /// Declared body larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `Transfer-Encoding` present — chunked bodies are unsupported.
    UnsupportedTransferEncoding,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Self::HeadTooLarge => "request head too large",
            Self::RequestLineTooLong => "request line too long",
            Self::HeadNotUtf8 => "request head is not valid UTF-8",
            Self::BadRequestLine => "malformed request line",
            Self::BadMethod => "malformed method token",
            Self::BadTarget => "request target must start with '/'",
            Self::BadVersion => "unsupported HTTP version",
            Self::TooManyHeaders => "too many header lines",
            Self::BadHeader => "malformed header line",
            Self::BadContentLength => "malformed Content-Length",
            Self::BodyTooLarge => "declared body too large",
            Self::UnsupportedTransferEncoding => "transfer encodings are not supported",
        };
        f.write_str(text)
    }
}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query string), as sent.
    pub target: String,
    /// Header pairs; names lowercased, values whitespace-trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridable with a `Connection` header).
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of one incremental parse attempt.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request plus the number of buffer bytes it consumed
    /// (pipelined followers start at that offset).
    Complete(Request, usize),
    /// Not enough bytes yet — read more and retry.
    Partial,
    /// The bytes can never become a valid request.
    Invalid(ParseError),
}

/// Parse the longest complete request at the start of `buf`.
pub fn parse_request(buf: &[u8]) -> Parsed {
    let head_end = match find_head_end(buf) {
        Some(pos) => pos,
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Parsed::Invalid(ParseError::HeadTooLarge);
            }
            return Parsed::Partial;
        }
    };
    if head_end > MAX_HEAD_BYTES {
        return Parsed::Invalid(ParseError::HeadTooLarge);
    }
    let head_bytes = buf.get(..head_end).unwrap_or_default();
    let head = match std::str::from_utf8(head_bytes) {
        Ok(text) => text,
        Err(_) => return Parsed::Invalid(ParseError::HeadNotUtf8),
    };

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    if request_line.len() > MAX_REQUEST_LINE {
        return Parsed::Invalid(ParseError::RequestLineTooLong);
    }
    let (method, target, http11) = match parse_request_line(request_line) {
        Ok(parts) => parts,
        Err(err) => return Parsed::Invalid(err),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADER_COUNT {
            return Parsed::Invalid(ParseError::TooManyHeaders);
        }
        let (name, value) = match line.split_once(':') {
            Some(pair) => pair,
            None => return Parsed::Invalid(ParseError::BadHeader),
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Parsed::Invalid(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if header_value(&headers, "transfer-encoding").is_some() {
        return Parsed::Invalid(ParseError::UnsupportedTransferEncoding);
    }
    let content_length = match header_value(&headers, "content-length") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parsed::Invalid(ParseError::BadContentLength),
        },
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Parsed::Invalid(ParseError::BodyTooLarge);
    }

    let body_start = head_end.saturating_add(4);
    let total = body_start.saturating_add(content_length);
    if buf.len() < total {
        return Parsed::Partial;
    }
    let body = buf.get(body_start..total).unwrap_or_default().to_vec();

    let keep_alive = match header_value(&headers, "connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    };

    Parsed::Complete(
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body,
            keep_alive,
        },
        total,
    )
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    // Only scan up to the cap (+3 so a terminator straddling the cap
    // still resolves to HeadTooLarge rather than Partial forever).
    let scan = buf.get(..buf.len().min(MAX_HEAD_BYTES + 4)).unwrap_or(buf);
    scan.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Split `METHOD TARGET VERSION` and validate each token.
fn parse_request_line(line: &str) -> Result<(&str, &str, bool), ParseError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() || method.is_empty() || target.is_empty() || version.is_empty() {
        return Err(ParseError::BadRequestLine);
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::BadMethod);
    }
    if !target.starts_with('/') {
        return Err(ParseError::BadTarget);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::BadVersion),
    };
    Ok((method, target, http11))
}

fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// An outgoing response: status + JSON body, serialized by
/// [`Response::to_bytes`] with explicit framing headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always `application/json` in this server).
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (load-shed responses).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A `{"error": …}` JSON response (message is JSON-escaped).
    pub fn json_error(status: u16, message: &str) -> Self {
        let doc = serde::Value::Map(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]);
        Self::json(status, serde_json::to_string(&doc).unwrap_or_default())
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Canonical reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serialize status line + headers + body into wire bytes.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = String::with_capacity(128);
        head.push_str("HTTP/1.1 ");
        head.push_str(&self.status.to_string());
        head.push(' ');
        head.push_str(Self::reason(self.status));
        head.push_str("\r\ncontent-type: application/json\r\ncontent-length: ");
        head.push_str(&self.body.len().to_string());
        if let Some(seconds) = self.retry_after {
            head.push_str("\r\nretry-after: ");
            head.push_str(&seconds.to_string());
        }
        head.push_str("\r\nconnection: ");
        head.push_str(if keep_alive { "keep-alive" } else { "close" });
        head.push_str("\r\n\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parsed::Complete(req, used) => (req, used),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, used) = complete(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
        assert_eq!(used, b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumed_bytes() {
        let raw = b"POST /v1/search HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let (req, used) = complete(raw);
        assert_eq!(req.body, b"hello");
        assert_eq!(used, raw.len());
        // Header names come back lowercased.
        assert_eq!(req.header("content-length"), Some("5"));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab";
        assert!(matches!(parse_request(raw), Parsed::Partial));
    }

    #[test]
    fn rejects_bad_inputs_cleanly() {
        let cases: &[(&[u8], ParseError)] = &[
            (b"GET\r\n\r\n", ParseError::BadRequestLine),
            (b"get / HTTP/1.1\r\n\r\n", ParseError::BadMethod),
            (b"GET x HTTP/1.1\r\n\r\n", ParseError::BadTarget),
            (b"GET / HTTP/2\r\n\r\n", ParseError::BadVersion),
            (b"GET / HTTP/1.1\r\nnocolon\r\n\r\n", ParseError::BadHeader),
            (
                b"GET / HTTP/1.1\r\ncontent-length: x\r\n\r\n",
                ParseError::BadContentLength,
            ),
            (
                b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                ParseError::UnsupportedTransferEncoding,
            ),
        ];
        for (raw, want) in cases {
            match parse_request(raw) {
                Parsed::Invalid(err) => assert_eq!(err, *want, "input {raw:?}"),
                other => panic!("expected Invalid({want:?}), got {other:?}"),
            }
        }
    }

    #[test]
    fn declared_oversized_body_is_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request(raw.as_bytes()),
            Parsed::Invalid(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn response_bytes_carry_framing_headers() {
        let resp = Response::json(200, "{}".to_string());
        let bytes = resp.to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let shed = Response::json_error(429, "busy").with_retry_after(1);
        let text = String::from_utf8(shed.to_bytes(false)).unwrap();
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
