//! Network serving frontend for context-based literature search.
//!
//! A dependency-free HTTP/1.1 server over `std::net` that puts the
//! lock-free [`Searcher`](context_search::Searcher) behind a real
//! network edge with production overload behavior:
//!
//! - [`http`] — incremental, panic-free request parser and response
//!   writer (lint-policed: never panics on malformed input);
//! - [`admission`] — bounded FIFO between the acceptor and the worker
//!   pool, stamping enqueue time from the injectable [`obs::Clock`];
//! - [`handler`] — pure request→response endpoint handlers, registered
//!   as interprocedural lint roots like the in-process serve path;
//! - [`server`] — acceptor thread, worker pool, EWMA deadline
//!   shedding (429 + `Retry-After`), door rejection (503) on queue
//!   overflow, and graceful drain (zero dropped in-flight requests);
//! - [`signal`] — SIGTERM/SIGINT → drain flag, no external crates.
//!
//! Endpoints: `POST /v1/search` (byte-identical to in-process
//! [`Searcher::query`](context_search::Searcher::query) output),
//! `GET /healthz`, `GET /metrics`, `GET /quality`. See the README's
//! "Network serving" section for flags and overload semantics.

pub mod admission;
pub mod handler;
pub mod http;
pub mod server;
pub mod signal;

pub use admission::{AdmissionQueue, PendingConn};
pub use handler::{encode_results, AppState, SearchDefaults};
pub use http::{parse_request, ParseError, Parsed, Request, Response};
pub use server::{start, start_with_clock, DrainSummary, ServerConfig, ServerHandle, ServerStats};
