//! Property tests for the hand-rolled HTTP/1.1 parser.
//!
//! The contract `server.rs` relies on: [`parse_request`] never panics,
//! whatever bytes the network delivers — arbitrary garbage, truncated
//! requests, oversized heads, pipelined bursts. Truncation must come
//! back as `Partial` (so the read loop keeps accumulating), garbage as
//! `Invalid` (so the connection gets a 400 and closes), and a valid
//! request must round-trip every field with an exact consumed-byte
//! count (so pipelined followers start at the right offset).

use proptest::prelude::*;
use serve::{parse_request, ParseError, Parsed};

/// Assemble a syntactically valid request from generated parts.
fn build_request(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut raw = format!("{method} /{path} HTTP/1.1\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("x-{name}: {value}\r\n"));
    }
    raw.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes must classify — never panic — and a `Complete`
    /// must not claim more bytes than the buffer holds.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..600),
    ) {
        match parse_request(&bytes) {
            Parsed::Complete(req, used) => {
                prop_assert!(used <= bytes.len());
                prop_assert!(!req.method.is_empty());
                prop_assert!(req.target.starts_with('/'));
            }
            Parsed::Partial | Parsed::Invalid(_) => {}
        }
    }

    /// A well-formed request round-trips every field and consumes
    /// exactly its own bytes.
    #[test]
    fn valid_request_roundtrips(
        method in "[A-Z]{1,6}",
        path in "[a-z0-9/]{0,24}",
        headers in proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9 ]{0,12}"), 0..6),
        body in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let raw = build_request(&method, &path, &headers, &body);
        match parse_request(&raw) {
            Parsed::Complete(req, used) => {
                prop_assert_eq!(used, raw.len());
                prop_assert_eq!(&req.method, &method);
                prop_assert_eq!(&req.target, &format!("/{path}"));
                prop_assert_eq!(&req.body, &body);
                prop_assert!(req.keep_alive);
                for (name, value) in &headers {
                    let got = req.header(&format!("x-{name}"));
                    // Values come back whitespace-trimmed.
                    prop_assert_eq!(got, Some(value.trim()), "header x-{} -> {:?}", name, got);
                }
            }
            other => prop_assert!(false, "expected Complete, got {:?} for {:?}", other, raw),
        }
    }

    /// Two pipelined requests parse back-to-back: the consumed count of
    /// the first is exactly where the second begins.
    #[test]
    fn pipelined_pairs_parse_sequentially(
        path_a in "[a-z]{1,12}",
        path_b in "[a-z]{1,12}",
        body_a in proptest::collection::vec(0u8..=255, 0..32),
        body_b in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let first = build_request("POST", &path_a, &[], &body_a);
        let second = build_request("POST", &path_b, &[], &body_b);
        let mut buf = first.clone();
        buf.extend_from_slice(&second);

        let used_a = match parse_request(&buf) {
            Parsed::Complete(req, used) => {
                prop_assert_eq!(&req.target, &format!("/{path_a}"));
                prop_assert_eq!(&req.body, &body_a);
                used
            }
            other => return Err(format!("first request: {other:?}")),
        };
        prop_assert_eq!(used_a, first.len());
        match parse_request(&buf[used_a..]) {
            Parsed::Complete(req, used) => {
                prop_assert_eq!(&req.target, &format!("/{path_b}"));
                prop_assert_eq!(&req.body, &body_b);
                prop_assert_eq!(used, second.len());
            }
            other => return Err(format!("second request: {other:?}")),
        }
    }

    /// Every strict prefix of a valid request is `Partial` — a read
    /// loop that stops mid-request must keep waiting, never 400 a
    /// client whose bytes are still in flight.
    #[test]
    fn strict_prefixes_are_partial(
        path in "[a-z]{1,16}",
        headers in proptest::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,8}"), 0..4),
        body in proptest::collection::vec(0u8..=255, 0..48),
    ) {
        let raw = build_request("POST", &path, &headers, &body);
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut]) {
                Parsed::Partial => {}
                other => {
                    return Err(format!("prefix of {cut}/{} bytes gave {other:?}", raw.len()));
                }
            }
        }
    }

    /// A head that keeps growing without a terminator is rejected once
    /// it passes the cap instead of buffering forever.
    #[test]
    fn unterminated_oversized_head_is_rejected(extra in 1usize..2048) {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        let filler = serve::http::MAX_HEAD_BYTES + extra - raw.len();
        raw.extend(std::iter::repeat_n(b'a', filler));
        match parse_request(&raw) {
            Parsed::Invalid(ParseError::HeadTooLarge) => {}
            other => return Err(format!("expected HeadTooLarge, got {other:?}")),
        }
    }
}

#[test]
fn header_count_cap_is_enforced() {
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..=serve::http::MAX_HEADER_COUNT {
        raw.push_str(&format!("x-h{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    assert!(matches!(
        parse_request(raw.as_bytes()),
        Parsed::Invalid(ParseError::TooManyHeaders)
    ));
}
